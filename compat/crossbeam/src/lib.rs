//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides [`channel::bounded`] — a blocking, multi-producer
//! multi-consumer bounded channel with cloneable senders *and*
//! receivers, the part of crossbeam's API that CrowdWeb's server worker
//! pool and execution engine rely on. Built on `Mutex` + `Condvar`;
//! correctness over raw throughput, which is ample for connection
//! hand-off and task fan-out.

#![forbid(unsafe_code)]

/// MPMC channels in the `crossbeam::channel` API shape.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        inner: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: usize,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half; cloneable.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned when all receivers are gone; carries the value.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`]; carries the value back.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recovers the value that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
            }
        }
    }

    /// Error returned when the channel is empty and all senders dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel has no queued values right now.
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Creates a bounded channel with the given capacity (minimum 1).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Blocks until there is room, then enqueues `value`. Fails only
        /// when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.0.inner.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if state.queue.len() < self.0.capacity {
                    state.queue.push_back(value);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                state = self.0.not_full.wait(state).unwrap();
            }
        }

        /// Enqueues `value` without blocking: fails with
        /// [`TrySendError::Full`] when the channel is at capacity and
        /// [`TrySendError::Disconnected`] when every receiver is gone,
        /// handing the value back either way.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.0.inner.lock().unwrap();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if state.queue.len() >= self.0.capacity {
                return Err(TrySendError::Full(value));
            }
            state.queue.push_back(value);
            self.0.not_empty.notify_one();
            Ok(())
        }

        /// How many values are queued right now.
        pub fn len(&self) -> usize {
            self.0.inner.lock().unwrap().queue.len()
        }

        /// Whether the queue is empty right now.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives. Fails once the channel is empty
        /// and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.inner.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.0.not_empty.wait(state).unwrap();
            }
        }

        /// Dequeues a value without blocking: fails with
        /// [`TryRecvError::Empty`] when nothing is queued and
        /// [`TryRecvError::Disconnected`] once the channel is drained
        /// and every sender is gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.0.inner.lock().unwrap();
            if let Some(value) = state.queue.pop_front() {
                self.0.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// How many values are queued right now.
        pub fn len(&self) -> usize {
            self.0.inner.lock().unwrap().queue.len()
        }

        /// Whether the queue is empty right now.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.0.inner.lock().unwrap().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.0.inner.lock().unwrap().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.inner.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.0.inner.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                self.0.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvError, TryRecvError, TrySendError};

    #[test]
    fn try_send_and_try_recv_never_block() {
        let (tx, rx) = bounded(1);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(tx.try_send(2).unwrap_err().into_inner(), 2);
        assert_eq!(rx.len(), 1);
        assert!(!rx.is_empty());
        assert_eq!(rx.try_recv(), Ok(1));
        assert!(rx.is_empty());
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn try_send_reports_disconnect() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.try_send(9), Err(TrySendError::Disconnected(9)));
    }

    #[test]
    fn values_flow_in_order_per_sender() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = bounded::<u8>(1);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = bounded(4);
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = 0u32;
                    while let Ok(v) = rx.recv() {
                        got += v;
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for v in 1..=100u32 {
            tx.send(v).unwrap();
        }
        drop(tx);
        let total: u32 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 5050);
    }
}
