//! Offline stand-in for `proptest`.
//!
//! Implements the subset CrowdWeb's suites use: range strategies over
//! integers and floats, `any::<T>()`, tuple strategies,
//! `collection::vec`, and the `proptest!`/`prop_assert*` macros. Each
//! property runs a fixed number of deterministic cases (seeded from the
//! test body's source position), so failures reproduce exactly across
//! runs. No shrinking: the failing inputs are printed instead.

#![forbid(unsafe_code)]

/// Deterministic case generator handed to strategies.
///
/// SplitMix64: tiny, full-period, and plenty for fuzzing inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds a generator for one test run.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, span: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

/// A source of values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range strategy");
                let span = (b as i128 - a as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (a as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        // Hit the endpoints occasionally; properties often depend on them.
        match rng.below(16) {
            0 => a,
            1 => b,
            _ => a + rng.unit_f64() * (b - a),
        }
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        let v = (f64::from(self.start)..f64::from(self.end)).sample(rng) as f32;
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

macro_rules! impl_tuple_strategies {
    ($(($($s:ident : $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Marker returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()`: the full domain of `T`.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any {
    ($($t:ty => $f:expr),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            #[allow(clippy::redundant_closure_call)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                ($f)(rng)
            }
        }
    )*};
}

impl_any! {
    u8 => |r: &mut TestRng| r.next_u64() as u8,
    u16 => |r: &mut TestRng| r.next_u64() as u16,
    u32 => |r: &mut TestRng| r.next_u64() as u32,
    u64 => |r: &mut TestRng| r.next_u64(),
    usize => |r: &mut TestRng| r.next_u64() as usize,
    i8 => |r: &mut TestRng| r.next_u64() as i8,
    i16 => |r: &mut TestRng| r.next_u64() as i16,
    i32 => |r: &mut TestRng| r.next_u64() as i32,
    i64 => |r: &mut TestRng| r.next_u64() as i64,
    isize => |r: &mut TestRng| r.next_u64() as isize,
    bool => |r: &mut TestRng| r.next_u64() & 1 == 1
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length bound for [`vec`]; built from a range or a fixed size.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Number of cases each `proptest!` property runs.
pub const CASES: u64 = 64;

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy,
    };
}

/// Declares deterministic property tests.
///
/// Accepts the standard `proptest!` block form with `arg in strategy`
/// parameters; each test runs [`CASES`] cases seeded from the source
/// location, printing the failing inputs on panic.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                // Per-test deterministic seed: source position of the body.
                let seed = (line!() as u64) << 32 | column!() as u64;
                for case in 0..$crate::CASES {
                    let mut rng = $crate::TestRng::seed_from_u64(
                        seed ^ case.wrapping_mul(0x2545_F491_4F6C_DD1D),
                    );
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    $body
                }
            }
        )+
    };
}

/// `assert!` that reports the property-test case on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` that reports the property-test case on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` that reports the property-test case on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u8..17, y in -4i64..=4, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(v in collection::vec(0u8..4, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn tuples_compose(pair in (0u32..8, 0.0f64..1.0), seed in any::<u64>()) {
            prop_assert!(pair.0 < 8);
            prop_assert!((0.0..1.0).contains(&pair.1));
            let _ = seed;
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let draw = |seed| {
            let mut rng = crate::TestRng::seed_from_u64(seed);
            (0..4).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }
}
