//! Offline stand-in for `criterion`.
//!
//! Keeps the API shape the benches compile against (`Criterion`,
//! `BenchmarkGroup`, `Bencher`, `BenchmarkId`, the `criterion_group!` /
//! `criterion_main!` macros) and actually measures: each benchmark is
//! warmed up, run for a fixed number of timed iterations, and reported
//! as mean wall-clock time per iteration on stdout. There is no
//! statistical analysis or HTML report — numbers land on the terminal
//! and in whatever the caller writes to `out/`.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Top-level benchmark driver, one per binary.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("default");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        let mean = if bencher.iters == 0 {
            Duration::ZERO
        } else {
            bencher.total / bencher.iters
        };
        println!(
            "  {group}/{id}: mean {mean:?} over {iters} iterations",
            group = self.name,
            iters = bencher.iters,
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<String>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API parity; reporting is incremental).
    pub fn finish(&mut self) {}
}

/// Times the closure handed to `iter`.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u32,
}

impl Bencher {
    /// Measures `routine`, keeping its output alive so the work is not
    /// optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up pass.
        std::hint::black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Identifier for a parameterized benchmark, printed as `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<BenchmarkId> for String {
    fn from(id: BenchmarkId) -> String {
        id.text
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Collects benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running every group (harness = false entry point).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }
}
