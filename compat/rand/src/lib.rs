//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset CrowdWeb uses: the [`Rng`] trait with
//! `gen_range` (half-open and inclusive integer/float ranges) and
//! `gen_bool`, the [`SeedableRng`] constructor, and
//! [`rngs::StdRng`] — here a xoshiro256++ generator seeded through
//! SplitMix64, a combination with excellent statistical quality and a
//! guaranteed-stable stream (the synthetic datasets and every figure in
//! `out/` are functions of this stream, so it must never change).

#![forbid(unsafe_code)]

/// Uniform sampling from range types; the bound of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// A random-number generator.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, matching `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed into the full state; the
            // all-zero state (impossible here) would be degenerate.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Rejection-free bounded sample in `[0, span)` for `span >= 1`.
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Lemire's multiply-shift; a single widening multiply gives a
    // negligibly biased uniform, more than enough for simulation.
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range in gen_range");
                let span = (b as i128 - a as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (a as i128 + bounded_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Floating rounding can land exactly on `end`; stay half-open.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        let wide = (f64::from(self.start)..f64::from(self.end)).sample_from(rng) as f32;
        if wide < self.end {
            wide
        } else {
            self.start
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_seed_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_the_support() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u8 {
            rng.gen_range(0u8..10)
        }
        let mut r = StdRng::seed_from_u64(4);
        assert!(draw(&mut r) < 10);
    }
}
