//! Offline `#[derive(Serialize, Deserialize)]` for the compat serde
//! subset.
//!
//! A hand-rolled token parser (no `syn`/`quote` — the build environment
//! is offline) that supports the shapes this workspace actually uses:
//!
//! - named-field structs, tuple structs, unit structs, with optional
//!   plain type parameters (`struct Pattern<T> { .. }`);
//! - enums with unit and tuple variants (externally tagged by default);
//! - container attributes `#[serde(untagged)]` and
//!   `#[serde(tag = "..", content = "..")]`;
//! - field attributes `#[serde(skip)]`, `#[serde(default)]`, and
//!   `#[serde(rename = "..")]`.
//!
//! Anything outside that subset panics with a clear message at compile
//! time, which is the correct failure mode for a vendored shim.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------
// Model.
// ---------------------------------------------------------------------

#[derive(Default, Debug, Clone)]
struct SerdeAttrs {
    skip: bool,
    default: bool,
    rename: Option<String>,
    untagged: bool,
    tag: Option<String>,
    content: Option<String>,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: SerdeAttrs,
}

#[derive(Debug)]
struct Variant {
    name: String,
    arity: usize, // 0 = unit, n = tuple variant with n fields
}

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    name: String,
    generics: Vec<String>,
    attrs: SerdeAttrs,
    kind: Kind,
}

// ---------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Cursor {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn at_ident(&self, name: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == name)
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected identifier, found {other:?}"),
        }
    }

    /// Consumes leading attributes, folding any `#[serde(..)]` contents
    /// into the returned attrs.
    fn parse_attrs(&mut self) -> SerdeAttrs {
        let mut attrs = SerdeAttrs::default();
        while self.at_punct('#') {
            self.next(); // '#'
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => panic!("serde_derive: malformed attribute, found {other:?}"),
            };
            let inner: Vec<TokenTree> = group.stream().into_iter().collect();
            let is_serde =
                matches!(inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde");
            if !is_serde {
                continue; // docs, #[default], derive helpers, ...
            }
            let args = match inner.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
                other => panic!("serde_derive: malformed #[serde(..)]: {other:?}"),
            };
            parse_serde_args(args, &mut attrs);
        }
        attrs
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ..)` visibility markers.
    fn skip_visibility(&mut self) {
        if self.at_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }
}

fn parse_serde_args(args: TokenStream, attrs: &mut SerdeAttrs) {
    let mut cur = Cursor::new(args);
    loop {
        let Some(tok) = cur.next() else { break };
        let key = match tok {
            TokenTree::Ident(i) => i.to_string(),
            TokenTree::Punct(p) if p.as_char() == ',' => continue,
            other => panic!("serde_derive: unexpected token in #[serde(..)]: {other:?}"),
        };
        let value = if cur.at_punct('=') {
            cur.next();
            match cur.next() {
                Some(TokenTree::Literal(l)) => Some(unquote(&l.to_string())),
                other => panic!("serde_derive: expected literal after '=', found {other:?}"),
            }
        } else {
            None
        };
        match (key.as_str(), value) {
            ("skip", None) | ("skip_serializing", None) => attrs.skip = true,
            ("default", None) => attrs.default = true,
            ("rename", Some(v)) => attrs.rename = Some(v),
            ("untagged", None) => attrs.untagged = true,
            ("tag", Some(v)) => attrs.tag = Some(v),
            ("content", Some(v)) => attrs.content = Some(v),
            (k, _) => panic!("serde_derive: unsupported serde attribute `{k}`"),
        }
    }
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_owned()
}

fn parse_input(stream: TokenStream) -> Input {
    let mut cur = Cursor::new(stream);
    let attrs = cur.parse_attrs();
    cur.skip_visibility();
    let keyword = cur.expect_ident();
    let name = cur.expect_ident();
    let generics = parse_generics(&mut cur);
    let kind = match keyword.as_str() {
        "struct" => parse_struct_body(&mut cur),
        "enum" => parse_enum_body(&mut cur),
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Input {
        name,
        generics,
        attrs,
        kind,
    }
}

fn parse_generics(cur: &mut Cursor) -> Vec<String> {
    let mut params = Vec::new();
    if !cur.at_punct('<') {
        return params;
    }
    cur.next(); // '<'
    let mut depth = 1usize;
    while depth > 0 {
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                panic!("serde_derive: lifetime parameters are not supported")
            }
            Some(TokenTree::Ident(i)) if depth == 1 => params.push(i.to_string()),
            Some(_) => {}
            None => panic!("serde_derive: unterminated generics"),
        }
    }
    params
}

fn parse_struct_body(cur: &mut Cursor) -> Kind {
    match cur.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Kind::NamedStruct(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Kind::TupleStruct(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
        other => panic!("serde_derive: malformed struct body: {other:?}"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while cur.peek().is_some() {
        let attrs = cur.parse_attrs();
        cur.skip_visibility();
        let name = cur.expect_ident();
        if !cur.at_punct(':') {
            panic!("serde_derive: expected ':' after field `{name}`");
        }
        cur.next(); // ':'
        skip_type(&mut cur);
        fields.push(Field { name, attrs });
        if cur.at_punct(',') {
            cur.next();
        }
    }
    fields
}

/// Skips one type expression: tokens up to a top-level `,` (angle
/// brackets tracked so `HashMap<K, V>` counts as one type).
fn skip_type(cur: &mut Cursor) {
    let mut angle = 0i32;
    while let Some(tok) = cur.peek() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
            _ => {}
        }
        cur.next();
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    let mut count = 0usize;
    while cur.peek().is_some() {
        let _attrs = cur.parse_attrs();
        cur.skip_visibility();
        if cur.peek().is_none() {
            break; // trailing comma
        }
        skip_type(&mut cur);
        count += 1;
        if cur.at_punct(',') {
            cur.next();
        }
    }
    count
}

fn parse_enum_body(cur: &mut Cursor) -> Kind {
    let group = match cur.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!("serde_derive: malformed enum body: {other:?}"),
    };
    let mut cur = Cursor::new(group.stream());
    let mut variants = Vec::new();
    while cur.peek().is_some() {
        let _attrs = cur.parse_attrs(); // #[default], docs
        let name = cur.expect_ident();
        let arity = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                cur.next();
                n
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("serde_derive: struct-style enum variants are not supported ({name})")
            }
            _ => 0,
        };
        // Skip an explicit discriminant (`= expr`).
        if cur.at_punct('=') {
            cur.next();
            while let Some(tok) = cur.peek() {
                if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                cur.next();
            }
        }
        variants.push(Variant { name, arity });
        if cur.at_punct(',') {
            cur.next();
        }
    }
    Kind::Enum(variants)
}

// ---------------------------------------------------------------------
// Codegen helpers.
// ---------------------------------------------------------------------

fn impl_header(trait_name: &str, input: &Input) -> String {
    if input.generics.is_empty() {
        format!("impl serde::{} for {}", trait_name, input.name)
    } else {
        let bounds: Vec<String> = input
            .generics
            .iter()
            .map(|g| format!("{g}: serde::{trait_name}"))
            .collect();
        format!(
            "impl<{}> serde::{} for {}<{}>",
            bounds.join(", "),
            trait_name,
            input.name,
            input.generics.join(", ")
        )
    }
}

fn field_key(field: &Field) -> String {
    field
        .attrs
        .rename
        .clone()
        .unwrap_or_else(|| field.name.clone())
}

// ---------------------------------------------------------------------
// Serialize.
// ---------------------------------------------------------------------

/// Derives the compat `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.attrs.skip) {
                pushes.push_str(&format!(
                    "entries.push((serde::Content::Str({key:?}.to_string()), \
                     serde::Serialize::to_content(&self.{name})));\n",
                    key = field_key(f),
                    name = f.name,
                ));
            }
            format!(
                "let mut entries: Vec<(serde::Content, serde::Content)> = Vec::new();\n\
                 {pushes}serde::Content::Map(entries)"
            )
        }
        Kind::TupleStruct(1) => "serde::Serialize::to_content(&self.0)".to_owned(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "serde::Content::Null".to_owned(),
        Kind::Enum(variants) => serialize_enum(&input, variants),
    };
    let out = format!(
        "{header} {{\n fn to_content(&self) -> serde::Content {{\n {body}\n }}\n}}\n",
        header = impl_header("Serialize", &input),
    );
    out.parse()
        .expect("serde_derive: generated invalid Rust (Serialize)")
}

fn serialize_enum(input: &Input, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let binders: Vec<String> = (0..v.arity).map(|i| format!("v{i}")).collect();
        let pattern = if v.arity == 0 {
            format!("Self::{}", v.name)
        } else {
            format!("Self::{}({})", v.name, binders.join(", "))
        };
        let inner = match v.arity {
            0 => None,
            1 => Some("serde::Serialize::to_content(v0)".to_owned()),
            _ => {
                let items: Vec<String> = binders
                    .iter()
                    .map(|b| format!("serde::Serialize::to_content({b})"))
                    .collect();
                Some(format!("serde::Content::Seq(vec![{}])", items.join(", ")))
            }
        };
        let value = if input.attrs.untagged {
            inner.unwrap_or_else(|| "serde::Content::Null".to_owned())
        } else if let (Some(tag), content) = (&input.attrs.tag, &input.attrs.content) {
            let mut entries = format!(
                "(serde::Content::Str({tag:?}.to_string()), \
                 serde::Content::Str({name:?}.to_string()))",
                name = v.name
            );
            if let (Some(content_key), Some(inner)) = (content, &inner) {
                entries.push_str(&format!(
                    ", (serde::Content::Str({content_key:?}.to_string()), {inner})"
                ));
            }
            format!("serde::Content::Map(vec![{entries}])")
        } else {
            match &inner {
                None => format!("serde::Content::Str({:?}.to_string())", v.name),
                Some(inner) => format!(
                    "serde::Content::Map(vec![(serde::Content::Str({name:?}.to_string()), {inner})])",
                    name = v.name
                ),
            }
        };
        arms.push_str(&format!("{pattern} => {value},\n"));
    }
    format!("match self {{\n{arms}}}")
}

// ---------------------------------------------------------------------
// Deserialize.
// ---------------------------------------------------------------------

/// Derives the compat `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                let fallback = if f.attrs.skip || f.attrs.default {
                    "Default::default()".to_owned()
                } else {
                    format!(
                        "return Err(serde::Error::msg(concat!(\"missing field `\", {key:?}, \"`\")))",
                        key = field_key(f)
                    )
                };
                let init = if f.attrs.skip {
                    "Default::default()".to_owned()
                } else {
                    format!(
                        "match c.get_field({key:?}) {{\n\
                         Some(v) => serde::Deserialize::from_content(v)?,\n\
                         None => {fallback},\n}}",
                        key = field_key(f)
                    )
                };
                inits.push_str(&format!("{name}: {init},\n", name = f.name));
            }
            format!(
                "match c {{\n\
                 serde::Content::Map(_) => Ok(Self {{\n{inits}}}),\n\
                 _ => Err(serde::Error::expected(\"object\", c)),\n}}"
            )
        }
        Kind::TupleStruct(1) => "Ok(Self(serde::Deserialize::from_content(c)?))".to_owned(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_content(&items[{i}])?"))
                .collect();
            format!(
                "match c {{\n\
                 serde::Content::Seq(items) if items.len() == {n} => \
                 Ok(Self({items})),\n\
                 _ => Err(serde::Error::expected(\"array of length {n}\", c)),\n}}",
                items = items.join(", ")
            )
        }
        Kind::UnitStruct => "Ok(Self)".to_owned(),
        Kind::Enum(variants) => deserialize_enum(&input, variants),
    };
    let out = format!(
        "{header} {{\n fn from_content(c: &serde::Content) -> Result<Self, serde::Error> {{\n \
         {body}\n }}\n}}\n",
        header = impl_header("Deserialize", &input),
    );
    out.parse()
        .expect("serde_derive: generated invalid Rust (Deserialize)")
}

fn variant_from_inner(variant: &Variant, source: &str) -> String {
    match variant.arity {
        0 => format!("Ok(Self::{})", variant.name),
        1 => format!(
            "Ok(Self::{}(serde::Deserialize::from_content({source})?))",
            variant.name
        ),
        n => {
            let items: Vec<String> = (0..n)
                .map(|i| format!("serde::Deserialize::from_content(&items[{i}])?"))
                .collect();
            format!(
                "match {source} {{\n\
                 serde::Content::Seq(items) if items.len() == {n} => \
                 Ok(Self::{name}({items})),\n\
                 _ => Err(serde::Error::expected(\"array of length {n}\", {source})),\n}}",
                name = variant.name,
                items = items.join(", ")
            )
        }
    }
}

fn deserialize_enum(input: &Input, variants: &[Variant]) -> String {
    if input.attrs.untagged {
        let mut tries = String::new();
        for v in variants {
            match v.arity {
                0 => tries.push_str(&format!(
                    "if matches!(c, serde::Content::Null) {{ return Ok(Self::{}); }}\n",
                    v.name
                )),
                1 => tries.push_str(&format!(
                    "if let Ok(v) = serde::Deserialize::from_content(c) {{ \
                     return Ok(Self::{}(v)); }}\n",
                    v.name
                )),
                n => panic!(
                    "serde_derive: untagged variant {} with {n} fields is not supported",
                    v.name
                ),
            }
        }
        return format!(
            "{tries}Err(serde::Error::expected(\"a value matching one of the \
             untagged variants\", c))"
        );
    }
    if let Some(tag) = &input.attrs.tag {
        let content_lookup = match &input.attrs.content {
            Some(content_key) => format!(
                "let content = c.get_field({content_key:?})\
                 .ok_or_else(|| serde::Error::msg(concat!(\"missing field `\", {content_key:?}, \"`\")))?;"
            ),
            None => String::new(),
        };
        let mut arms = String::new();
        for v in variants {
            let body = if v.arity == 0 {
                format!("Ok(Self::{})", v.name)
            } else {
                variant_from_inner(v, "content")
            };
            arms.push_str(&format!("{:?} => {{ {body} }},\n", v.name));
        }
        return format!(
            "let tag = match c.get_field({tag:?}) {{\n\
             Some(serde::Content::Str(s)) => s.clone(),\n\
             _ => return Err(serde::Error::msg(concat!(\"missing tag `\", {tag:?}, \"`\"))),\n}};\n\
             {content_lookup}\n\
             match tag.as_str() {{\n{arms}\
             other => Err(serde::Error::msg(format!(\"unknown variant `{{other}}`\"))),\n}}"
        );
    }
    // Externally tagged (serde default).
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for v in variants {
        if v.arity == 0 {
            unit_arms.push_str(&format!("{:?} => Ok(Self::{}),\n", v.name, v.name));
        } else {
            let body = variant_from_inner(v, "value");
            data_arms.push_str(&format!("{:?} => {{ {body} }},\n", v.name));
        }
    }
    format!(
        "match c {{\n\
         serde::Content::Str(s) => match s.as_str() {{\n{unit_arms}\
         other => Err(serde::Error::msg(format!(\"unknown variant `{{other}}`\"))),\n}},\n\
         serde::Content::Map(entries) if entries.len() == 1 => {{\n\
         let (key, value) = &entries[0];\n\
         let serde::Content::Str(key) = key else {{\n\
         return Err(serde::Error::expected(\"string variant key\", key));\n}};\n\
         match key.as_str() {{\n{data_arms}\
         other => Err(serde::Error::msg(format!(\"unknown variant `{{other}}`\"))),\n}}\n}},\n\
         _ => Err(serde::Error::expected(\"string or single-key object\", c)),\n}}"
    )
}
