//! Offline stand-in for the `serde` crate.
//!
//! The real serde is a zero-copy visitor framework; this subset keeps
//! the *surface* CrowdWeb uses — `#[derive(Serialize, Deserialize)]`,
//! the `Serialize`/`Deserialize` traits, and the container attributes
//! `skip`, `default`, `rename`, `untagged`, and `tag`/`content` — but
//! routes everything through one concrete self-describing tree,
//! [`Content`]. `serde_json` (the sibling compat crate) prints and
//! parses that tree as JSON.
//!
//! Design notes:
//!
//! - Serialization is total: `to_content` cannot fail. Map keys are
//!   converted to strings at print time (numbers allowed, like
//!   `serde_json`).
//! - Deserialization is checked: wrong shapes produce [`Error`] values
//!   with a short path-free message (enough for tests and the HTTP
//!   400 path).
//! - `HashMap` serialization sorts entries by key so every serialized
//!   byte stream is deterministic — a repo-wide invariant the
//!   determinism tests rely on.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{BuildHasher, Hash};

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing serialized form: a JSON-shaped tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative (or any signed) integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object; keys are stringified at print time.
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// The content's JSON type name, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }

    /// Looks up a map entry by string key.
    pub fn get_field(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find_map(|(k, v)| match k {
                Content::Str(s) if s == key => Some(v),
                _ => None,
            }),
            _ => None,
        }
    }
}

/// Deserialization error: a message, `std::error::Error`-compatible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(message: impl Into<String>) -> Error {
        Error(message.into())
    }

    /// Shorthand for "expected X, found Y" shape errors.
    pub fn expected(what: &str, found: &Content) -> Error {
        Error(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types serializable into a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into its serialized form.
    fn to_content(&self) -> Content;
}

/// Types reconstructible from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value, validating the tree's shape.
    fn from_content(content: &Content) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(u64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v = match c {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    // JSON object keys arrive as strings; accept digits.
                    Content::Str(s) => s.parse::<u64>()
                        .map_err(|_| Error::expected("unsigned integer", c))?,
                    _ => return Err(Error::expected("unsigned integer", c)),
                };
                <$t>::try_from(v).map_err(|_| Error::msg(
                    format!("integer {v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32);

impl Serialize for u64 {
    fn to_content(&self) -> Content {
        Content::U64(*self)
    }
}
impl Deserialize for u64 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::U64(v) => Ok(*v),
            Content::I64(v) if *v >= 0 => Ok(*v as u64),
            Content::Str(s) => s
                .parse::<u64>()
                .map_err(|_| Error::expected("unsigned integer", c)),
            _ => Err(Error::expected("unsigned integer", c)),
        }
    }
}

impl Serialize for usize {
    fn to_content(&self) -> Content {
        Content::U64(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_content(c: &Content) -> Result<Self, Error> {
        u64::from_content(c).and_then(|v| {
            usize::try_from(v).map_err(|_| Error::msg("integer out of range for usize"))
        })
    }
}

impl Serialize for u128 {
    fn to_content(&self) -> Content {
        // Timings (`Duration::as_micros`) fit u64 in practice; huge
        // values fall back to a digit string to stay lossless.
        match u64::try_from(*self) {
            Ok(v) => Content::U64(v),
            Err(_) => Content::Str(self.to_string()),
        }
    }
}
impl Deserialize for u128 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::U64(v) => Ok(u128::from(*v)),
            Content::I64(v) if *v >= 0 => Ok(*v as u128),
            Content::Str(s) => s
                .parse::<u128>()
                .map_err(|_| Error::expected("unsigned integer", c)),
            _ => Err(Error::expected("unsigned integer", c)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = i64::from(*self);
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v = match c {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| Error::msg("integer too large"))?,
                    Content::Str(s) => s.parse::<i64>()
                        .map_err(|_| Error::expected("integer", c))?,
                    _ => return Err(Error::expected("integer", c)),
                };
                <$t>::try_from(v).map_err(|_| Error::msg(
                    format!("integer {v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32);

impl Serialize for i64 {
    fn to_content(&self) -> Content {
        if *self >= 0 {
            Content::U64(*self as u64)
        } else {
            Content::I64(*self)
        }
    }
}
impl Deserialize for i64 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::I64(v) => Ok(*v),
            Content::U64(v) => i64::try_from(*v).map_err(|_| Error::msg("integer too large")),
            Content::Str(s) => s.parse::<i64>().map_err(|_| Error::expected("integer", c)),
            _ => Err(Error::expected("integer", c)),
        }
    }
}

impl Serialize for isize {
    fn to_content(&self) -> Content {
        (*self as i64).to_content()
    }
}
impl Deserialize for isize {
    fn from_content(c: &Content) -> Result<Self, Error> {
        i64::from_content(c).and_then(|v| {
            isize::try_from(v).map_err(|_| Error::msg("integer out of range for isize"))
        })
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            _ => Err(Error::expected("number", c)),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", c)),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::expected("single-character string", c)),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", c)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}
impl Deserialize for () {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(()),
            _ => Err(Error::expected("null", c)),
        }
    }
}

// ---------------------------------------------------------------------
// Composite impls.
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            _ => Err(Error::expected("array", c)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}
impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, Error> {
        let v = Vec::<T>::from_content(c)?;
        let n = v.len();
        <[T; N]>::try_from(v)
            .map_err(|_| Error::msg(format!("expected array of length {N}, found {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match c {
                    Content::Seq(items) if items.len() == LEN => {
                        Ok(($($t::from_content(&items[$idx])?,)+))
                    }
                    _ => Err(Error::expected("fixed-length array", c)),
                }
            }
        }
    )+};
}

impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
                .collect(),
            _ => Err(Error::expected("object", c)),
        }
    }
}

impl<K: Serialize, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(Content, Content)> = self
            .iter()
            .map(|(k, v)| (k.to_content(), v.to_content()))
            .collect();
        // Hash iteration order is arbitrary; sort on the printed key so
        // serialized output is deterministic.
        entries.sort_by_key(|entry| key_string(&entry.0));
        Content::Map(entries)
    }
}
impl<K: Deserialize + Eq + Hash, V: Deserialize, S: BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
                .collect(),
            _ => Err(Error::expected("object", c)),
        }
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}
impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, Error> {
        Ok(c.clone())
    }
}

/// Stringifies a map key the way the JSON printer will (used for
/// deterministic `HashMap` ordering).
pub fn key_string(key: &Content) -> String {
    match key {
        Content::Str(s) => s.clone(),
        Content::U64(v) => v.to_string(),
        Content::I64(v) => v.to_string(),
        Content::F64(v) => v.to_string(),
        Content::Bool(b) => b.to_string(),
        Content::Null => "null".to_owned(),
        _ => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Serialize + Deserialize + PartialEq + fmt::Debug>(v: T) {
        let c = v.to_content();
        assert_eq!(T::from_content(&c).unwrap(), v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(42u32);
        round_trip(-17i64);
        round_trip(2.5f64);
        round_trip(true);
        round_trip('x');
        round_trip("hello".to_owned());
        round_trip(Some(3u8));
        round_trip(Option::<u8>::None);
    }

    #[test]
    fn composites_round_trip() {
        round_trip(vec![1u64, 2, 3]);
        round_trip([1.5f64, -2.5]);
        round_trip((1u8, "a".to_owned()));
        let mut m = BTreeMap::new();
        m.insert("k".to_owned(), 9usize);
        round_trip(m);
    }

    #[test]
    fn hashmap_serializes_sorted() {
        let mut m = HashMap::new();
        m.insert(10u32, 1u8);
        m.insert(2u32, 2u8);
        m.insert(7u32, 3u8);
        let Content::Map(entries) = m.to_content() else {
            panic!("expected map");
        };
        let keys: Vec<String> = entries.iter().map(|(k, _)| key_string(k)).collect();
        assert_eq!(keys, vec!["10", "2", "7"]); // lexicographic, stable
        round_trip(m);
    }

    #[test]
    fn signed_integers_use_compact_form() {
        assert_eq!(5i64.to_content(), Content::U64(5));
        assert_eq!((-5i64).to_content(), Content::I64(-5));
        assert_eq!(i64::from_content(&Content::U64(5)).unwrap(), 5);
    }

    #[test]
    fn errors_describe_the_mismatch() {
        let err = u32::from_content(&Content::Str("zz".into())).unwrap_err();
        assert!(err.to_string().contains("unsigned integer"));
        let err = u8::from_content(&Content::U64(999)).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }
}
