//! Offline stand-in for the `parking_lot` crate.
//!
//! Implements the subset CrowdWeb uses — [`Mutex`], [`RwLock`], and
//! [`Condvar`]-free guards with the *non-poisoning* API shape of the
//! real crate — on top of `std::sync`. A poisoned std lock (a panic
//! while held) is recovered by taking the inner value, matching
//! parking_lot's "panics don't poison" semantics closely enough for
//! this codebase.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex with the `parking_lot::Mutex` API subset.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Locks the mutex, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Non-poisoning reader-writer lock with the `parking_lot::RwLock` API
/// subset.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
