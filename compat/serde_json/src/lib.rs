//! Offline stand-in for `serde_json`, backed by the compat `serde`
//! content tree.
//!
//! Provides the subset CrowdWeb uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], and a self-describing [`Value`]
//! with `Index` sugar and the `as_*` accessors. Maps serialize with
//! keys in sorted order (inherited from the serde compat layer), so
//! output bytes are a pure function of the value — a property the
//! determinism suite relies on.

#![forbid(unsafe_code)]

use serde::{Content, Deserialize, Serialize};
use std::fmt;

// ---------------------------------------------------------------------
// Error.
// ---------------------------------------------------------------------

/// JSON serialization/deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.to_string())
    }
}

/// Convenience alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------
// Value.
// ---------------------------------------------------------------------

/// A parsed JSON document.
///
/// Objects keep their textual order; equality is structural.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

/// Shared sentinel so `value["missing"]` can return a reference.
static NULL: Value = Value::Null;

impl Value {
    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(v) => i64::try_from(v).ok(),
            Value::I64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `f64` if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The elements if the value is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The entries if the value is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Whether the value is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Member lookup that tolerates absence, like `serde_json`'s `get`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn from_content(c: &Content) -> Value {
        match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::U64(v) => Value::U64(*v),
            Content::I64(v) => Value::I64(*v),
            Content::F64(v) => Value::F64(*v),
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(items) => Value::Array(items.iter().map(Value::from_content).collect()),
            Content::Map(entries) => Value::Object(
                entries
                    .iter()
                    .map(|(k, v)| (key_text(k), Value::from_content(v)))
                    .collect(),
            ),
        }
    }

    fn to_content_tree(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::U64(v) => Content::U64(*v),
            Value::I64(v) => Content::I64(*v),
            Value::F64(v) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(Value::to_content_tree).collect()),
            Value::Object(entries) => Content::Map(
                entries
                    .iter()
                    .map(|(k, v)| (Content::Str(k.clone()), v.to_content_tree()))
                    .collect(),
            ),
        }
    }
}

fn key_text(key: &Content) -> String {
    match key {
        Content::Str(s) => s.clone(),
        other => write_compact_content(other),
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        self.to_content_tree()
    }
}

impl Deserialize for Value {
    fn from_content(c: &Content) -> std::result::Result<Value, serde::Error> {
        Ok(Value::from_content(c))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&write_compact_content(&self.to_content_tree()))
    }
}

// ---------------------------------------------------------------------
// Writing.
// ---------------------------------------------------------------------

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(write_compact_content(&value.to_content()))
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_content(), 0, &mut out);
    Ok(out)
}

fn write_compact_content(c: &Content) -> String {
    let mut out = String::new();
    write_compact(c, &mut out);
    out
}

fn write_compact(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(&key_text(k), out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(c: &Content, depth: usize, out: &mut String) {
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(depth + 1, out);
                write_pretty(item, depth + 1, out);
            }
            out.push('\n');
            indent(depth, out);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(depth + 1, out);
                write_escaped(&key_text(k), out);
                out.push_str(": ");
                write_pretty(v, depth + 1, out);
            }
            out.push('\n');
            indent(depth, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        // JSON has no NaN/Inf; serde_json writes null.
        out.push_str("null");
        return;
    }
    let text = v.to_string();
    out.push_str(&text);
    // Keep floats self-describing on re-parse: `2.0` not `2`.
    if !text.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------

/// Deserializes any `T: Deserialize` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_content(&content)?)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<()> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                expected as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> Result<()> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Ok(())
        } else {
            Err(Error(format!("expected `{word}` at offset {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Content::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Content::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Content::Bool(false))
            }
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((Content::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".into()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error(format!("invalid \\u{code:04x}")))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode the UTF-8 run starting here.
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let ch = text.chars().next().unwrap();
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        let text = std::str::from_utf8(slice).map_err(|_| Error("bad \\u escape".into()))?;
        let value =
            u32::from_str_radix(text, 16).map_err(|_| Error(format!("bad \\u escape `{text}`")))?;
        self.pos = end;
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip_and_accessors() {
        let text = r#"{"name":"café","count":3,"score":-73.98,"tags":["a","b"],"none":null}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["name"], "café");
        assert_eq!(v["count"].as_u64(), Some(3));
        assert_eq!(v["score"].as_f64(), Some(-73.98));
        assert!(v["tags"].is_array());
        assert_eq!(v["tags"][1].as_str(), Some("b"));
        assert!(v["none"].is_null());
        assert!(v["absent"].is_null());

        let round: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(round, v);
    }

    #[test]
    fn floats_stay_floats() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        let back: Value = from_str(&text).unwrap();
        assert!(matches!(back, Value::F64(_)));
    }

    #[test]
    fn pretty_printing_indents() {
        let v: Value = from_str(r#"{"a":[1,2]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("{} junk").is_err());
        assert!(from_str::<Value>("{").is_err());
    }
}
