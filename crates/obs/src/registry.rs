//! The metric handles and the family registry.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Default latency buckets (seconds): 250 µs up to 10 s, roughly
/// ×2.5 apart — wide enough for both a cache-hit JSON read and a full
/// pipeline rebuild.
pub const DEFAULT_LATENCY_BUCKETS: [f64; 12] = [
    0.000_25, 0.001, 0.002_5, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 10.0,
];

/// HTTP request-latency buckets (seconds), tuned from the serving-path
/// benches instead of picked blind: snapshot-backed JSON reads resolve
/// in tens to hundreds of microseconds, SVG renders and uploads in the
/// low milliseconds, and the figure endpoints (which re-mine a support
/// sweep per request) in tens of milliseconds. The old
/// [`DEFAULT_LATENCY_BUCKETS`] put its lowest bound at 250 µs and so
/// collapsed the entire fast path into two buckets; this ladder spends
/// its resolution where requests actually land (50 µs–50 ms) and keeps
/// two coarse overflow buckets for pathological requests.
pub const HTTP_LATENCY_BUCKETS: [f64; 12] = [
    0.000_05, 0.000_1, 0.000_25, 0.000_5, 0.001, 0.002_5, 0.005, 0.01, 0.05, 0.25, 1.0, 10.0,
];

/// Epoch-latency buckets (seconds), tuned from
/// `out/ingest_throughput.tsv`: incremental epochs measure 2.7–5.7 ms
/// at bench scale (batches of 16–256) and a cold rebuild ~5 ms, so the
/// 1–12 ms band gets fine resolution; full paper-scale rebuilds and
/// WAL-heavy epochs stretch to seconds, covered by the coarse tail.
/// The old blind defaults spent their three finest buckets below the
/// first observed epoch and crossed the whole observed 2.7–5.7 ms band
/// with a single bound at 5 ms.
pub const EPOCH_LATENCY_BUCKETS: [f64; 12] = [
    0.001, 0.002, 0.003, 0.004, 0.006, 0.008, 0.012, 0.025, 0.1, 0.5, 2.5, 10.0,
];

/// Family name used by [`MetricsRegistry::observe_stage`].
pub const STAGE_SECONDS: &str = "crowdweb_pipeline_stage_seconds";

/// Family name for the sharded ingest engine's per-shard epoch re-mine
/// wall-time, labelled `{shard}`. The label is bounded: the engine
/// caps its shard count and pre-registers one series per shard at
/// startup, so cardinality never grows with traffic.
pub const SHARD_FANOUT_SECONDS: &str = "crowdweb_ingest_shard_fanout_seconds";

/// Gauge: epochs currently retained by the ingest engine's history
/// store (bounded by `IngestConfig::history_depth`).
pub const HISTORY_RETAINED_EPOCHS: &str = "crowdweb_ingest_history_retained_epochs";

/// Gauge family: approximate resident bytes of the retained epoch
/// history, labelled `{kind="full"|"delta"}` — full checkpoints vs.
/// delta splices. The label set is fixed at two series.
pub const HISTORY_RESIDENT_BYTES: &str = "crowdweb_ingest_history_resident_bytes";

/// Histogram: wall-clock seconds to materialize a historical epoch
/// from its nearest full checkpoint plus the delta chain.
pub const HISTORY_RECONSTRUCTION_SECONDS: &str = "crowdweb_ingest_history_reconstruction_seconds";

/// A monotonic counter. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A signed point-in-time value. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Ascending upper bounds; an implicit `+Inf` bucket follows.
    bounds: Box<[f64]>,
    /// Per-bucket (non-cumulative) counts, one per bound plus `+Inf`.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    /// Sum in micro-units (`value * 1e6`), so it fits an atomic.
    sum_micros: AtomicU64,
}

/// A fixed-bucket histogram. Observing performs two or three relaxed
/// atomic adds; no lock, no allocation. Cloning shares the cells.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds: bounds.into(),
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum_micros: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation (negative values clamp to zero).
    pub fn observe(&self, value: f64) {
        let v = value.max(0.0);
        let idx = self
            .inner
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.inner.bounds.len());
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner
            .sum_micros
            .fetch_add((v * 1e6).round() as u64, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.inner.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
    }
}

#[derive(Debug, Clone)]
enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: &'static str,
    /// Keyed by the rendered label set (`{a="x",b="y"}` or empty), so
    /// iteration order — and therefore exposition order — is stable.
    series: BTreeMap<String, Series>,
}

/// The registry: a table of metric families shared via `Arc`. Cloning
/// is cheap; all clones observe the same metrics.
///
/// Handing out a metric (`counter`/`gauge`/`histogram`) takes a write
/// lock once per *new* series; recording through a handle never locks.
/// [`MetricsRegistry::render`] produces Prometheus text exposition with
/// families and series in deterministic (sorted) order.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    families: Arc<RwLock<BTreeMap<String, Family>>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("families", &self.families.read().len())
            .finish()
    }
}

impl PartialEq for MetricsRegistry {
    /// Identity comparison: two registries are equal when they share
    /// the same family table. Lets containing configs keep `PartialEq`.
    fn eq(&self, other: &MetricsRegistry) -> bool {
        Arc::ptr_eq(&self.families, &other.families)
    }
}

/// Renders a sorted, escaped `{k="v",…}` label block ("" when empty).
fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_unstable();
    let body: Vec<String> = sorted
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b':')
        && !name.as_bytes()[0].is_ascii_digit()
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn get_or_insert(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Series,
        kind: &'static str,
    ) -> Series {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let key = label_key(labels);
        // Fast path: the series already exists.
        {
            let families = self.families.read();
            if let Some(family) = families.get(name) {
                assert_eq!(
                    family.kind, kind,
                    "metric {name} already registered as a {}",
                    family.kind
                );
                if let Some(series) = family.series.get(&key) {
                    return series.clone();
                }
            }
        }
        let mut families = self.families.write();
        let family = families.entry(name.to_owned()).or_insert_with(|| Family {
            help: help.to_owned(),
            kind,
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind, kind,
            "metric {name} already registered as a {}",
            family.kind
        );
        family.series.entry(key).or_insert_with(make).clone()
    }

    /// The counter for `name` + `labels`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind, or
    /// is not a valid metric name.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(
            name,
            help,
            labels,
            || Series::Counter(Counter::default()),
            "counter",
        ) {
            Series::Counter(c) => c,
            _ => unreachable!("kind checked by get_or_insert"),
        }
    }

    /// The gauge for `name` + `labels`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Same as [`Self::counter`].
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(
            name,
            help,
            labels,
            || Series::Gauge(Gauge::default()),
            "gauge",
        ) {
            Series::Gauge(g) => g,
            _ => unreachable!("kind checked by get_or_insert"),
        }
    }

    /// The histogram for `name` + `labels`, registering it with the
    /// given bucket bounds on first use (later calls reuse the existing
    /// buckets regardless of `bounds`).
    ///
    /// # Panics
    ///
    /// Same as [`Self::counter`]; also panics on empty or unsorted
    /// `bounds` when the series is first created.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        match self.get_or_insert(
            name,
            help,
            labels,
            || Series::Histogram(Histogram::new(bounds)),
            "histogram",
        ) {
            Series::Histogram(h) => h,
            _ => unreachable!("kind checked by get_or_insert"),
        }
    }

    /// Records one pipeline-stage wall-time observation into the shared
    /// [`STAGE_SECONDS`] histogram, keyed by stage and parallelism
    /// policy.
    pub fn observe_stage(&self, stage: &str, policy: &str, seconds: f64) {
        self.histogram(
            STAGE_SECONDS,
            "Wall-clock seconds per pipeline stage run, by parallelism policy.",
            &[("stage", stage), ("policy", policy)],
            &DEFAULT_LATENCY_BUCKETS,
        )
        .observe(seconds);
    }

    /// The value of a registered counter, if any.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.lookup(name, labels)? {
            Series::Counter(c) => Some(c.get()),
            _ => None,
        }
    }

    /// The value of a registered gauge, if any.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        match self.lookup(name, labels)? {
            Series::Gauge(g) => Some(g.get()),
            _ => None,
        }
    }

    /// `(count, sum)` of a registered histogram, if any.
    pub fn histogram_stats(&self, name: &str, labels: &[(&str, &str)]) -> Option<(u64, f64)> {
        match self.lookup(name, labels)? {
            Series::Histogram(h) => Some((h.count(), h.sum())),
            _ => None,
        }
    }

    fn lookup(&self, name: &str, labels: &[(&str, &str)]) -> Option<Series> {
        let key = label_key(labels);
        self.families.read().get(name)?.series.get(&key).cloned()
    }

    /// Renders the whole registry as Prometheus text exposition
    /// (version 0.0.4). Families sort by name and series by label set,
    /// so two renders of the same state are byte-identical.
    pub fn render(&self) -> String {
        let families = self.families.read();
        let mut out = String::new();
        for (name, family) in families.iter() {
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind));
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(c) => {
                        out.push_str(&format!("{name}{labels} {}\n", c.get()));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&format!("{name}{labels} {}\n", g.get()));
                    }
                    Series::Histogram(h) => {
                        render_histogram(&mut out, name, labels, h);
                    }
                }
            }
        }
        out
    }
}

/// Emits `_bucket` (cumulative), `_sum`, and `_count` series for one
/// histogram, splicing `le` after any existing labels.
fn render_histogram(out: &mut String, name: &str, labels: &str, h: &Histogram) {
    let with_le = |le: &str| -> String {
        if labels.is_empty() {
            format!("{{le=\"{le}\"}}")
        } else {
            let inner = &labels[1..labels.len() - 1];
            format!("{{{inner},le=\"{le}\"}}")
        }
    };
    let mut cumulative = 0u64;
    for (i, bound) in h.inner.bounds.iter().enumerate() {
        cumulative += h.inner.buckets[i].load(Ordering::Relaxed);
        out.push_str(&format!(
            "{name}_bucket{} {cumulative}\n",
            with_le(&format!("{bound}"))
        ));
    }
    out.push_str(&format!("{name}_bucket{} {}\n", with_le("+Inf"), h.count()));
    out.push_str(&format!("{name}_sum{labels} {}\n", h.sum()));
    out.push_str(&format!("{name}_count{labels} {}\n", h.count()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let m = MetricsRegistry::new();
        let a = m.counter("requests_total", "Requests.", &[]);
        let b = m.counter("requests_total", "Requests.", &[]);
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5, "handles to the same series share the cell");
        assert_eq!(m.counter_value("requests_total", &[]), Some(5));
        assert_eq!(m.counter_value("missing", &[]), None);
    }

    #[test]
    fn gauges_set_and_add() {
        let m = MetricsRegistry::new();
        let g = m.gauge("queue_depth", "Depth.", &[("queue", "ingest")]);
        g.set(7);
        g.add(-3);
        assert_eq!(
            m.gauge_value("queue_depth", &[("queue", "ingest")]),
            Some(4)
        );
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let m = MetricsRegistry::new();
        let h = m.histogram("lat", "Latency.", &[], &[0.01, 0.1, 1.0]);
        h.observe(0.005);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0); // +Inf bucket
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 5.555).abs() < 1e-6);
        let text = m.render();
        assert!(text.contains("lat_bucket{le=\"0.01\"} 1"));
        assert!(text.contains("lat_bucket{le=\"0.1\"} 2"));
        assert!(text.contains("lat_bucket{le=\"1\"} 3"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("lat_count 4"));
    }

    #[test]
    fn histogram_le_splices_after_labels() {
        let m = MetricsRegistry::new();
        m.histogram("lat", "Latency.", &[("route", "/api/x")], &[1.0])
            .observe(0.5);
        let text = m.render();
        assert!(
            text.contains("lat_bucket{route=\"/api/x\",le=\"1\"} 1"),
            "{text}"
        );
        assert!(text.contains("lat_sum{route=\"/api/x\"} 0.5"));
    }

    #[test]
    fn labels_are_sorted_and_escaped() {
        let m = MetricsRegistry::new();
        m.counter("c", "C.", &[("z", "1"), ("a", "he said \"hi\"\n")])
            .inc();
        let text = m.render();
        assert!(
            text.contains("c{a=\"he said \\\"hi\\\"\\n\",z=\"1\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn render_is_deterministic_and_sorted() {
        let m = MetricsRegistry::new();
        m.counter("zzz_total", "Z.", &[]).inc();
        m.counter("aaa_total", "A.", &[("b", "2")]).inc();
        m.counter("aaa_total", "A.", &[("b", "1")]).inc();
        m.gauge("mmm", "M.", &[]).set(3);
        let first = m.render();
        let second = m.render();
        assert_eq!(first, second, "same state must render byte-identically");
        let a1 = first.find("aaa_total{b=\"1\"}").unwrap();
        let a2 = first.find("aaa_total{b=\"2\"}").unwrap();
        let z = first.find("zzz_total").unwrap();
        assert!(a1 < a2 && a2 < z, "families and series must sort");
    }

    #[test]
    fn observe_stage_records_policy_keyed_series() {
        let m = MetricsRegistry::new();
        m.observe_stage("mine", "threads_4", 0.02);
        m.observe_stage("mine", "threads_4", 0.04);
        let (count, sum) = m
            .histogram_stats(STAGE_SECONDS, &[("stage", "mine"), ("policy", "threads_4")])
            .unwrap();
        assert_eq!(count, 2);
        assert!((sum - 0.06).abs() < 1e-6);
    }

    #[test]
    fn clones_share_state() {
        let m = MetricsRegistry::new();
        let clone = m.clone();
        clone.counter("shared_total", "S.", &[]).inc();
        assert_eq!(m.counter_value("shared_total", &[]), Some(1));
        assert_eq!(m, clone);
        assert_ne!(m, MetricsRegistry::new());
    }

    #[test]
    fn concurrent_writers_never_block_render() {
        let m = MetricsRegistry::new();
        let c = m.counter("spins_total", "S.", &[]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
            for _ in 0..50 {
                let _ = m.render();
            }
        });
        assert_eq!(m.counter_value("spins_total", &[]), Some(40_000));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let m = MetricsRegistry::new();
        m.counter("x_total", "X.", &[]);
        m.gauge("x_total", "X.", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_panics() {
        MetricsRegistry::new().counter("9bad name", "B.", &[]);
    }

    #[test]
    fn tuned_bucket_ladders_are_valid_and_resolve_their_bands() {
        for bounds in [
            &DEFAULT_LATENCY_BUCKETS,
            &HTTP_LATENCY_BUCKETS,
            &EPOCH_LATENCY_BUCKETS,
        ] {
            assert!(
                bounds.windows(2).all(|w| w[0] < w[1]),
                "bounds must be strictly ascending: {bounds:?}"
            );
            // Histogram construction enforces the same invariant.
            let _ = MetricsRegistry::new().histogram("h", "H.", &[], bounds);
        }
        // The HTTP ladder separates a 100 µs JSON read from a 1 ms SVG
        // render — the bench-observed fast path.
        assert!(HTTP_LATENCY_BUCKETS.iter().filter(|b| **b < 0.001).count() >= 4);
        // The epoch ladder puts multiple bounds inside the observed
        // 2.7–5.7 ms incremental-epoch band (out/ingest_throughput.tsv).
        let in_band = EPOCH_LATENCY_BUCKETS
            .iter()
            .filter(|b| (0.0027..=0.0057).contains(*b))
            .count();
        assert!(in_band >= 2, "epoch band needs resolution, got {in_band}");
    }
}
