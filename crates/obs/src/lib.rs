//! Observability layer for the CrowdWeb platform.
//!
//! A small, dependency-free metrics registry built for a serving stack:
//!
//! - [`Counter`] — monotonic `u64`, one atomic add per event.
//! - [`Gauge`] — signed point-in-time value (queue depths, dirty-user
//!   counts).
//! - [`Histogram`] — fixed-bucket latency/size distribution; observing
//!   is two atomic adds, no allocation, no lock.
//! - [`MetricsRegistry`] — a cheaply clonable (`Arc`-shared) family
//!   table handing out the above, renderable as Prometheus text
//!   exposition with deterministic ordering
//!   ([`MetricsRegistry::render`]).
//!
//! # Design constraints
//!
//! *Snapshot-able without stopping writers.* Every metric is a handle
//! around atomics; [`MetricsRegistry::render`] takes a read lock on the
//! family table only (writers registering **new** series block it,
//! recording into existing series never does).
//!
//! *Injectable, never load-bearing.* Pipeline stages accept an
//! `Option<MetricsRegistry>` and default to `None`; instrumentation
//! records wall-clock observations but never participates in the data
//! path, so pipeline output is byte-identical with metrics on or off
//! (the determinism suites assert this).
//!
//! # Examples
//!
//! ```
//! use crowdweb_obs::MetricsRegistry;
//!
//! let metrics = MetricsRegistry::new();
//! let hits = metrics.counter("cache_hits_total", "Cache hits.", &[("tier", "l1")]);
//! hits.inc();
//! hits.add(2);
//! assert_eq!(metrics.counter_value("cache_hits_total", &[("tier", "l1")]), Some(3));
//! let text = metrics.render();
//! assert!(text.contains("cache_hits_total{tier=\"l1\"} 3"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod registry;

pub use registry::{
    Counter, Gauge, Histogram, MetricsRegistry, DEFAULT_LATENCY_BUCKETS, EPOCH_LATENCY_BUCKETS,
    HISTORY_RECONSTRUCTION_SECONDS, HISTORY_RESIDENT_BYTES, HISTORY_RETAINED_EPOCHS,
    HTTP_LATENCY_BUCKETS, SHARD_FANOUT_SECONDS, STAGE_SECONDS,
};
