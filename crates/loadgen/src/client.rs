//! A minimal HTTP/1.1 client with keep-alive connection reuse.
//!
//! [`Client`] holds one persistent connection and frames responses by
//! status line + `Content-Length` — never by EOF, which silently breaks
//! (hangs until the server's idle reap, or truncates) against a
//! keep-alive server. When the server closes the connection (stated
//! `Connection: close`, exhausted request budget, idle reap between
//! requests), the client reconnects transparently: a send or first read
//! that fails on a *reused* connection is retried once on a fresh one.
//! Deliberately dependency-free and blocking — each sender thread owns
//! its own `Client`.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response, reduced to what the harness records.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// Parsed `Retry-After` header (seconds), when present.
    pub retry_after: Option<u64>,
    /// Response body bytes, UTF-8-decoded lossily.
    pub body: String,
    /// Whether the server announced `Connection: close` — the client
    /// drops the connection and dials fresh for the next request.
    pub connection_close: bool,
}

impl HttpResponse {
    /// Whether the status is 2xx.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// A persistent-connection HTTP client bound to one server address.
///
/// Requests reuse a single kept-alive connection; the server closing it
/// (budget exhaustion, idle reap, negotiated close) costs one
/// transparent reconnect, not an error.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    conn: Option<BufReader<TcpStream>>,
}

impl Client {
    /// A client for `addr`; connections are dialed lazily. Socket
    /// connect/read/write all inherit `timeout`.
    pub fn new(addr: SocketAddr, timeout: Duration) -> Client {
        Client {
            addr,
            timeout,
            conn: None,
        }
    }

    /// Sends one request and reads one `Content-Length`-framed
    /// response, reusing the held connection when there is one.
    ///
    /// `body` of `Some` makes it a POST with a JSON content type;
    /// `None` makes it a GET.
    ///
    /// # Errors
    ///
    /// Propagates connect/read/write failures and malformed response
    /// frames as `io::Error` — the harness counts these as transport
    /// errors, distinct from HTTP-level error statuses. A failure on a
    /// reused connection is retried once on a fresh connection first
    /// (the server is allowed to have reaped the idle socket between
    /// requests).
    pub fn request(&mut self, path: &str, body: Option<&str>) -> io::Result<HttpResponse> {
        let reused = self.conn.is_some();
        match self.attempt(path, body) {
            Ok(response) => Ok(response),
            Err(e) => {
                self.conn = None;
                if reused {
                    // The stale-connection race: the server may close a
                    // kept-alive socket at any moment between requests.
                    // One fresh dial disambiguates a reaped connection
                    // from a down server.
                    self.attempt(path, body).inspect_err(|_| self.conn = None)
                } else {
                    Err(e)
                }
            }
        }
    }

    /// One send + one framed read on the current connection, dialing if
    /// none is held. Leaves the connection in place unless the server
    /// said close.
    fn attempt(&mut self, path: &str, body: Option<&str>) -> io::Result<HttpResponse> {
        if self.conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            // Nagle + delayed ACK costs ~40ms per request on a reused
            // connection if the request goes out in more than one
            // segment; a latency-measuring client can never afford it.
            stream.set_nodelay(true)?;
            self.conn = Some(BufReader::new(stream));
        }
        let conn = self.conn.as_mut().expect("connection just ensured");
        {
            // One buffer, one write: a request split across small
            // writes stalls on Nagle waiting for the previous
            // segment's (delayed) ACK.
            let request = match body {
                Some(json) => format!(
                    "POST {path} HTTP/1.1\r\nHost: loadgen\r\nContent-Type: application/json\r\n\
                     Content-Length: {}\r\n\r\n{json}",
                    json.len()
                ),
                None => format!("GET {path} HTTP/1.1\r\nHost: loadgen\r\n\r\n"),
            };
            let stream = conn.get_mut();
            stream.write_all(request.as_bytes())?;
            stream.flush()?;
        }
        let response = read_framed_response(conn)?;
        if response.connection_close {
            self.conn = None;
        }
        Ok(response)
    }
}

/// Sends one request on a throwaway `Connection: close` connection.
///
/// For one-shot probes (health checks) where holding a connection is
/// not worth it; sustained traffic should use [`Client`].
///
/// # Errors
///
/// As [`Client::request`], minus the reused-connection retry.
pub fn request(
    addr: SocketAddr,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> io::Result<HttpResponse> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut stream = stream;
    let request = match body {
        Some(json) => format!(
            "POST {path} HTTP/1.1\r\nHost: loadgen\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{json}",
            json.len()
        ),
        None => format!("GET {path} HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n"),
    };
    stream.write_all(request.as_bytes())?;
    stream.flush()?;
    read_framed_response(&mut BufReader::new(stream))
}

/// Reads exactly one response — status line, headers, then the body as
/// framed by the head: exactly `Content-Length` bytes, or a
/// `Transfer-Encoding: chunked` sequence through its terminal
/// zero-size chunk — leaving any pipelined bytes behind it unread. EOF
/// is never the frame boundary; a chunked stream that ends without the
/// terminal chunk is a transport error (that is how the server
/// signals a mid-stream producer failure).
fn read_framed_response<R: BufRead>(reader: &mut R) -> io::Result<HttpResponse> {
    let malformed = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
    let status_line = read_crlf_line(reader)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| malformed("unparseable status line"))?;
    let mut retry_after = None;
    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    let mut connection_close = false;
    loop {
        let line = read_crlf_line(reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim();
        let value = value.trim();
        if name.eq_ignore_ascii_case("retry-after") {
            retry_after = value.parse::<u64>().ok();
        } else if name.eq_ignore_ascii_case("content-length") {
            content_length = Some(
                value
                    .parse::<usize>()
                    .map_err(|_| malformed("unparseable content-length"))?,
            );
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            chunked = value
                .split(',')
                .any(|token| token.trim().eq_ignore_ascii_case("chunked"));
        } else if name.eq_ignore_ascii_case("connection") {
            connection_close = value
                .split(',')
                .any(|token| token.trim().eq_ignore_ascii_case("close"));
        }
    }
    let body = if chunked {
        read_chunked_body(reader)?
    } else {
        let content_length = content_length
            .ok_or_else(|| malformed("response declared neither content-length nor chunked"))?;
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;
        body
    };
    Ok(HttpResponse {
        status,
        retry_after,
        body: String::from_utf8_lossy(&body).into_owned(),
        connection_close,
    })
}

/// Decodes one chunked body: hex-size line, that many data bytes, a
/// CRLF, repeated through the terminal `0\r\n\r\n`. EOF anywhere before
/// the terminal chunk is an `UnexpectedEof` transport error — a
/// truncated stream must never pass for a complete body.
fn read_chunked_body<R: BufRead>(reader: &mut R) -> io::Result<Vec<u8>> {
    let malformed = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
    let mut body = Vec::new();
    loop {
        let size_line = read_crlf_line(reader)?;
        // Ignore any chunk extension (";" onward) per RFC 9112 §7.1.1.
        let size_hex = size_line.split(';').next().unwrap_or("").trim();
        let size =
            usize::from_str_radix(size_hex, 16).map_err(|_| malformed("unparseable chunk size"))?;
        if size == 0 {
            break;
        }
        let at = body.len();
        body.resize(at + size, 0);
        reader.read_exact(&mut body[at..])?;
        let mut crlf = [0u8; 2];
        reader.read_exact(&mut crlf)?;
        if &crlf != b"\r\n" {
            return Err(malformed("chunk data not CRLF-terminated"));
        }
    }
    // Trailer section: consume through the blank line ending the frame
    // (the server sends none, so this is normally one empty read).
    loop {
        if read_crlf_line(reader)?.is_empty() {
            break;
        }
    }
    Ok(body)
}

/// Reads one `\r\n`-terminated line, returned without the terminator.
/// EOF before the terminator is an error — a framed response never
/// relies on EOF.
fn read_crlf_line<R: BufRead>(reader: &mut R) -> io::Result<String> {
    let mut raw = Vec::new();
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-response-head",
            ));
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                raw.extend_from_slice(&available[..pos]);
                reader.consume(pos + 1);
                break;
            }
            None => {
                let n = available.len();
                raw.extend_from_slice(available);
                reader.consume(n);
            }
        }
    }
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 response head"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn framed(body: &str, close: bool) -> String {
        format!(
            "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{body}",
            body.len(),
            if close { "close" } else { "keep-alive" }
        )
    }

    /// A scripted server: accepts connections, answers `per_conn`
    /// requests on each with framed keep-alive responses, then closes.
    /// Counts accepts so tests can assert connection reuse.
    fn scripted_server(per_conn: usize, total: usize) -> (SocketAddr, Arc<AtomicUsize>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accepts = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&accepts);
        std::thread::spawn(move || {
            let mut answered = 0;
            while answered < total {
                let Ok((stream, _)) = listener.accept() else {
                    return;
                };
                counter.fetch_add(1, Ordering::SeqCst);
                let mut reader = BufReader::new(stream);
                for i in 0..per_conn {
                    // Swallow one request head (loadgen requests are
                    // bodyless GETs in these tests).
                    loop {
                        let mut line = String::new();
                        if reader.read_line(&mut line).unwrap_or(0) == 0 {
                            return;
                        }
                        if line == "\r\n" {
                            break;
                        }
                    }
                    let body = format!("resp-{answered}");
                    let reply = framed(&body, i + 1 == per_conn);
                    if reader.get_mut().write_all(reply.as_bytes()).is_err() {
                        break;
                    }
                    answered += 1;
                    if answered == total {
                        break;
                    }
                }
                // Connection dropped here: per_conn budget exhausted.
            }
        });
        (addr, accepts)
    }

    #[test]
    fn frames_by_content_length_on_a_connection_that_stays_open() {
        // Regression: the old client read to EOF, which against a
        // keep-alive server hangs until the idle reap. A framed reader
        // must return as soon as Content-Length bytes arrive, while the
        // connection stays open.
        let (addr, _accepts) = scripted_server(2, 2);
        let mut client = Client::new(addr, Duration::from_secs(5));
        let r = client.request("/one", None).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "resp-0");
        assert!(!r.connection_close);
        assert!(client.conn.is_some(), "keep-alive connection is retained");
    }

    #[test]
    fn sequential_requests_reuse_one_connection() {
        let (addr, accepts) = scripted_server(3, 3);
        let mut client = Client::new(addr, Duration::from_secs(5));
        for i in 0..3 {
            let r = client.request("/seq", None).unwrap();
            assert_eq!(r.body, format!("resp-{i}"));
        }
        assert_eq!(
            accepts.load(Ordering::SeqCst),
            1,
            "three requests must share one connection"
        );
    }

    #[test]
    fn connection_close_response_causes_a_fresh_dial_next_time() {
        let (addr, accepts) = scripted_server(1, 2);
        let mut client = Client::new(addr, Duration::from_secs(5));
        let r = client.request("/a", None).unwrap();
        assert!(r.connection_close);
        let r = client.request("/b", None).unwrap();
        assert_eq!(r.body, "resp-1");
        assert_eq!(accepts.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn reaped_idle_connection_retries_once_on_a_fresh_one() {
        // The server closes the socket after one response *without*
        // announcing it (an idle reap): the client's next send/read
        // fails, and must transparently redial instead of erroring.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            // First connection: one keep-alive response, then a silent
            // close.
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            while reader.read_line(&mut line).unwrap() > 0 && line != "\r\n" {
                line.clear();
            }
            reader
                .get_mut()
                .write_all(framed("first", false).as_bytes())
                .unwrap();
            drop(reader); // silent reap
                          // Second connection: serve the retried request.
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            while reader.read_line(&mut line).unwrap() > 0 && line != "\r\n" {
                line.clear();
            }
            reader
                .get_mut()
                .write_all(framed("second", false).as_bytes())
                .unwrap();
            // Hold the socket so the client's framed read completes.
            std::thread::sleep(Duration::from_millis(200));
        });
        let mut client = Client::new(addr, Duration::from_secs(5));
        assert_eq!(client.request("/a", None).unwrap().body, "first");
        // Give the close time to land so the failure is on the send or
        // first read, exercising the retry path deterministically.
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(
            client.request("/b", None).unwrap().body,
            "second",
            "a silently reaped connection must cost a redial, not an error"
        );
    }

    #[test]
    fn parses_status_headers_and_body() {
        let raw = b"HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\n\
                    Retry-After: 2\r\nConnection: close\r\nContent-Length: 2\r\n\r\n{}";
        let r = read_framed_response(&mut BufReader::new(&raw[..])).unwrap();
        assert_eq!(r.status, 503);
        assert_eq!(r.retry_after, Some(2));
        assert_eq!(r.body, "{}");
        assert!(r.connection_close);
        assert!(!r.is_success());
    }

    #[test]
    fn missing_retry_after_is_none() {
        let raw = b"HTTP/1.1 200 OK\r\nConnection: keep-alive\r\nContent-Length: 4\r\n\r\nbody";
        let r = read_framed_response(&mut BufReader::new(&raw[..])).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.retry_after, None);
        assert!(!r.connection_close);
        assert!(r.is_success());
    }

    #[test]
    fn truncated_responses_are_transport_errors() {
        // Head cut mid-line.
        let raw = b"HTTP/1.1 200 OK\r\nContent-";
        assert!(read_framed_response(&mut BufReader::new(&raw[..])).is_err());
        // Neither content-length nor chunked: the frame boundary is
        // unknowable.
        let raw = b"HTTP/1.1 200 OK\r\n\r\nbody";
        assert!(read_framed_response(&mut BufReader::new(&raw[..])).is_err());
        // Body shorter than declared.
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort";
        assert!(read_framed_response(&mut BufReader::new(&raw[..])).is_err());
        // Garbage status line.
        let raw = b"garbage\r\n\r\n";
        assert!(read_framed_response(&mut BufReader::new(&raw[..])).is_err());
    }

    #[test]
    fn decodes_a_chunked_body_through_the_terminal_chunk() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\
                    Connection: keep-alive\r\n\r\n\
                    5\r\nhello\r\n7\r\n, world\r\n0\r\n\r\nHTTP/1.1 404 NF\r\nContent-Length: 0\r\n\r\n";
        let mut reader = BufReader::new(&raw[..]);
        let r = read_framed_response(&mut reader).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "hello, world");
        assert!(!r.connection_close);
        // The frame ended exactly at the terminal chunk: a pipelined
        // follow-up response is left unread and parses next.
        let r = read_framed_response(&mut reader).unwrap();
        assert_eq!(r.status, 404);
    }

    #[test]
    fn chunked_body_without_terminal_chunk_is_a_transport_error() {
        // The server aborts a failed stream by closing without the
        // terminal chunk; the client must surface that as an error,
        // never as a short-but-successful body.
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n";
        let err = read_framed_response(&mut BufReader::new(&raw[..])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Data cut mid-chunk is equally fatal.
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nff\r\nshort";
        assert!(read_framed_response(&mut BufReader::new(&raw[..])).is_err());
        // A garbage size line is malformed, not EOF.
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n";
        let err = read_framed_response(&mut BufReader::new(&raw[..])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn chunk_extensions_are_ignored() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
                    4;ext=1\r\ndata\r\n0\r\n\r\n";
        let r = read_framed_response(&mut BufReader::new(&raw[..])).unwrap();
        assert_eq!(r.body, "data");
    }

    #[test]
    fn pipelined_second_response_is_left_unread() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\noneHTTP/1.1 404 NF\r\nContent-Length: 3\r\n\r\ntwo";
        let mut reader = BufReader::new(&raw[..]);
        let r = read_framed_response(&mut reader).unwrap();
        assert_eq!(r.body, "one");
        let r = read_framed_response(&mut reader).unwrap();
        assert_eq!(r.status, 404);
        assert_eq!(r.body, "two");
    }
}
