//! A minimal one-shot HTTP/1.1 client.
//!
//! The server speaks `Connection: close` (one request per connection),
//! so the client does too: connect, write the request, read to EOF,
//! parse the status line and the handful of headers the harness cares
//! about. Deliberately dependency-free and blocking — each sender
//! thread owns its own connections.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response, reduced to what the harness records.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// Parsed `Retry-After` header (seconds), when present.
    pub retry_after: Option<u64>,
    /// Response body bytes, UTF-8-decoded lossily.
    pub body: String,
}

impl HttpResponse {
    /// Whether the status is 2xx.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// Sends one request and reads the full response.
///
/// `body` of `Some` makes it a POST with a JSON content type; `None`
/// makes it a GET. Both socket read and write inherit `timeout`.
///
/// # Errors
///
/// Propagates connect/read/write failures and malformed status lines as
/// `io::Error` — the harness counts these as transport errors, distinct
/// from HTTP-level error statuses.
pub fn request(
    addr: SocketAddr,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> std::io::Result<HttpResponse> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut stream = stream;
    match body {
        Some(json) => write!(
            stream,
            "POST {path} HTTP/1.1\r\nHost: loadgen\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{json}",
            json.len()
        )?,
        None => write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n"
        )?,
    }
    stream.flush()?;

    let mut raw = Vec::with_capacity(4096);
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> std::io::Result<HttpResponse> {
    let malformed =
        |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_owned());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| malformed("response head never terminated"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| malformed("non-utf8 head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| malformed("empty response"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| malformed("unparseable status line"))?;
    let mut retry_after = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("retry-after") {
                retry_after = value.trim().parse::<u64>().ok();
            }
        }
    }
    Ok(HttpResponse {
        status,
        retry_after,
        body: String::from_utf8_lossy(&raw[head_end + 4..]).into_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_headers_and_body() {
        let raw = b"HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\n\
                    Retry-After: 2\r\nContent-Length: 2\r\n\r\n{}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 503);
        assert_eq!(r.retry_after, Some(2));
        assert_eq!(r.body, "{}");
        assert!(!r.is_success());
    }

    #[test]
    fn missing_retry_after_is_none() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nbody";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.retry_after, None);
        assert!(r.is_success());
    }

    #[test]
    fn truncated_head_is_a_transport_error() {
        assert!(parse_response(b"HTTP/1.1 200 OK\r\nContent-").is_err());
        assert!(parse_response(b"garbage\r\n\r\n").is_err());
    }
}
