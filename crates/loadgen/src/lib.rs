//! City-scale workload simulator for the CrowdWeb platform.
//!
//! The serving stack (sharded ingest, evented reactor, epoch history)
//! exists to survive city traffic: millions of residents checking in
//! while dashboards read crowd views. This crate makes that workload
//! reproducible. A declarative *scenario* (see [`scenario::Scenario`])
//! describes a user population and a sequence of phases — commute
//! surges, stadium events, weekend lulls — as requests-per-second ramps
//! over virtual city time; the generator synthesizes the entire request
//! trace up front from `crowdweb-synth` agent behaviour, then replays it
//! against a real server over TCP.
//!
//! # Open-loop scheduling
//!
//! The replay is *open-loop*: every request's send time is computed from
//! the scenario's rate curve before the run starts, and senders fire at
//! those times regardless of how the server is doing. Latency is
//! measured from the **scheduled** send time, so a stalled server
//! accrues queueing delay in the recorded numbers instead of silently
//! slowing the generator down — the classic *coordinated omission* trap
//! that closed-loop harnesses fall into.
//!
//! # Pieces
//!
//! - [`scenario`] — the declarative config and its TOML-subset parser.
//! - [`trace`] — deterministic trace synthesis (same seed + scenario →
//!   byte-identical request sequence and timestamps).
//! - [`client`] — a minimal one-shot HTTP/1.1 client.
//! - [`harness`] — the open-loop replay engine and metrics scraper.
//! - [`report`] — per-endpoint latency CDFs, error rates, and epoch lag,
//!   written as `out/loadgen_<scenario>.tsv`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod harness;
pub mod report;
pub mod scenario;
pub mod trace;

pub use harness::{run, RunOptions};
pub use report::RunReport;
pub use scenario::{Phase, ReadMix, Scenario};
pub use trace::{Trace, TraceEvent};

use std::fmt;

/// Errors from scenario parsing, trace synthesis, or a harness run.
#[derive(Debug)]
pub enum LoadgenError {
    /// The scenario file is malformed or semantically invalid.
    Scenario(String),
    /// An I/O failure (scenario file, output TSV, or the control
    /// connection used for metrics scrapes).
    Io(std::io::Error),
    /// The run could not proceed (server unreachable, malformed
    /// control-plane response).
    Run(String),
}

impl fmt::Display for LoadgenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadgenError::Scenario(msg) => write!(f, "scenario error: {msg}"),
            LoadgenError::Io(e) => write!(f, "i/o error: {e}"),
            LoadgenError::Run(msg) => write!(f, "run error: {msg}"),
        }
    }
}

impl std::error::Error for LoadgenError {}

impl From<std::io::Error> for LoadgenError {
    fn from(e: std::io::Error) -> LoadgenError {
        LoadgenError::Io(e)
    }
}
