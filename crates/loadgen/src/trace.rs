//! Deterministic trace synthesis.
//!
//! A [`Trace`] is the complete request schedule for one scenario run:
//! every event carries a wall-clock send offset (computed from the
//! phase rate curves, not from server behaviour — see the crate docs on
//! open-loop scheduling), a target endpoint, and for writes a fully
//! rendered check-in JSON body.
//!
//! # Determinism
//!
//! Synthesis is single-threaded, seeded entirely from the scenario, and
//! never consults the clock: the same scenario produces a byte-identical
//! trace every time ([`Trace::to_tsv`] is the canonical fingerprint the
//! determinism tests compare). Send times come from inverting the rate
//! integral, so timestamps are exact functions of the phase definitions.
//!
//! # Population model
//!
//! Generating a full `crowdweb-synth` agent per user would take minutes
//! for a million-user city. Instead the scenario's `archetypes` count
//! bounds how many full [`AgentProfile`]s are generated; each simulated
//! user id maps onto one archetype (`user % archetypes`) and borrows its
//! home/work/habit structure while keeping its own identity. Spatial
//! plausibility comes from the archetype (venues near its home/work
//! cluster); population scale comes from the id space.

use crate::scenario::{Phase, Scenario};
use crate::LoadgenError;
use crowdweb_dataset::category::CategoryKind;
use crowdweb_dataset::{Timestamp, UserId, VenueId};
use crowdweb_geo::TileCoord;
use crowdweb_synth::agent::{AgentProfile, Habit};
use crowdweb_synth::{rngx, SynthConfig, VenueUniverse};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Placeholder in `?epoch=` read paths, substituted at send time with
/// the most recently published epoch. Epoch numbers only exist once the
/// server starts publishing, so the trace cannot bake them in without
/// giving up open-loop determinism.
pub const EPOCH_PLACEHOLDER: &str = "{EPOCH}";

/// The endpoint class of one trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EndpointKind {
    /// `POST /api/v1/checkins` — a check-in write.
    Checkins,
    /// `GET /api/v1/crowd`.
    Crowd,
    /// `GET /api/v1/crowd/map`.
    CrowdMap,
    /// `GET /api/v1/crowd/flows`.
    Flows,
    /// `GET /api/v1/tiles/{z}/{x}/{y}`.
    Tiles,
    /// `GET /api/v1/export/checkins` — the chunked NDJSON bulk export.
    Export,
    /// `GET /api/v1/crowd?epoch=N` — a time-travel read.
    EpochRead,
}

impl EndpointKind {
    /// Stable label used in TSV rows and report tables.
    pub fn label(self) -> &'static str {
        match self {
            EndpointKind::Checkins => "checkins",
            EndpointKind::Crowd => "crowd",
            EndpointKind::CrowdMap => "crowd_map",
            EndpointKind::Flows => "flows",
            EndpointKind::Tiles => "tiles",
            EndpointKind::Export => "export",
            EndpointKind::EpochRead => "epoch_read",
        }
    }

    /// All kinds, in stable label order.
    pub const ALL: [EndpointKind; 7] = [
        EndpointKind::Checkins,
        EndpointKind::Crowd,
        EndpointKind::CrowdMap,
        EndpointKind::Flows,
        EndpointKind::Tiles,
        EndpointKind::Export,
        EndpointKind::EpochRead,
    ];

    /// Whether the event is an HTTP POST.
    pub fn is_post(self) -> bool {
        matches!(self, EndpointKind::Checkins)
    }
}

/// One scheduled request.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Microseconds after run start at which this request must be sent.
    pub schedule_us: u64,
    /// Index into the scenario's phase list.
    pub phase: u16,
    /// Endpoint class.
    pub kind: EndpointKind,
    /// Request path + query (may contain [`EPOCH_PLACEHOLDER`]).
    pub path: String,
    /// JSON body for writes, `None` for reads.
    pub body: Option<String>,
}

/// The synthesized request schedule for one scenario.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Events in send order (monotonic `schedule_us`).
    pub events: Vec<TraceEvent>,
    /// Phase names, indexed by [`TraceEvent::phase`].
    pub phase_names: Vec<String>,
    /// Wall-clock duration of each phase in microseconds.
    pub phase_wall_us: Vec<u64>,
}

impl Trace {
    /// Total wall-clock duration of the trace in microseconds.
    pub fn total_wall_us(&self) -> u64 {
        self.phase_wall_us.iter().sum()
    }

    /// Renders the trace as TSV — the canonical determinism
    /// fingerprint: two traces are the same iff their TSVs are
    /// byte-identical.
    pub fn to_tsv(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96 + 64);
        out.push_str("schedule_us\tphase\tkind\tpath\tbody\n");
        for e in &self.events {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\n",
                e.schedule_us,
                self.phase_names[e.phase as usize],
                e.kind.label(),
                e.path,
                e.body.as_deref().unwrap_or("-"),
            ));
        }
        out
    }

    /// Synthesizes the trace for a validated scenario.
    ///
    /// # Errors
    ///
    /// Returns [`LoadgenError::Scenario`] if the scenario fails
    /// validation (callers normally hold an already-validated scenario,
    /// so this is defensive).
    pub fn synthesize(scenario: &Scenario) -> Result<Trace, LoadgenError> {
        scenario.validate()?;
        let city = City::generate(scenario);
        let mut rng = StdRng::seed_from_u64(
            scenario
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(0xC0DE),
        );

        let mut events = Vec::new();
        let mut phase_names = Vec::with_capacity(scenario.phases.len());
        let mut phase_wall_us = Vec::with_capacity(scenario.phases.len());
        let mut phase_start_us: u64 = 0;
        let mut virtual_start_secs: f64 = f64::from(scenario.start_hour) * 3600.0
            + f64::from(scenario.start_day_offset) * 86_400.0;

        for (pi, phase) in scenario.phases.iter().enumerate() {
            let wall_secs = scenario.wall_secs(phase);
            let wall_us = (wall_secs * 1e6).round() as u64;
            phase_names.push(phase.name.clone());
            phase_wall_us.push(wall_us);

            // A surge phase funnels part of the write traffic at one
            // deterministic venue of the configured kind.
            let surge_venue = phase
                .surge
                .as_deref()
                .and_then(surge_kind)
                .and_then(|kind| {
                    let pool = city.universe.of_kind(kind);
                    if pool.is_empty() {
                        None
                    } else {
                        Some(pool[rng.gen_range(0..pool.len())])
                    }
                });

            let n = request_count(phase, wall_secs);
            for k in 0..n {
                let t = send_offset_secs(phase, wall_secs, k);
                let schedule_us = phase_start_us + (t * 1e6).round() as u64;
                let virtual_secs = virtual_start_secs + t * scenario.time_compression;
                let local = city.epoch_local.plus_seconds(virtual_secs as i64);
                let civil = local.to_civil_utc();
                let hour = civil.hour;
                let weekend = civil.date.weekday().is_weekend();

                let event = if rng.gen_bool(phase.write_fraction) {
                    let user = rng.gen_range(0..scenario.users);
                    let venue = match surge_venue {
                        Some(v) if phase.surge_weight > 0.0 && rng.gen_bool(phase.surge_weight) => {
                            v
                        }
                        _ => {
                            let profile =
                                &city.archetypes[(user % city.archetypes.len() as u64) as usize];
                            choose_venue(&mut rng, profile, hour, weekend)
                        }
                    };
                    TraceEvent {
                        schedule_us,
                        phase: pi as u16,
                        kind: EndpointKind::Checkins,
                        path: format!("{}/checkins", scenario.api_base()),
                        body: Some(city.checkin_body(user, venue, local)),
                    }
                } else {
                    city.read_event(&mut rng, scenario, schedule_us, pi as u16, hour)
                };
                events.push(event);
            }
            phase_start_us += wall_us;
            virtual_start_secs += phase.virtual_secs;
        }

        Ok(Trace {
            events,
            phase_names,
            phase_wall_us,
        })
    }
}

/// Number of requests a phase schedules: the rate integral over its
/// wall duration, floored, but at least one so no phase is silent.
fn request_count(phase: &Phase, wall_secs: f64) -> u64 {
    (((phase.start_rps + phase.end_rps) / 2.0) * wall_secs)
        .floor()
        .max(1.0) as u64
}

/// Send time of request `k` within a phase: the smallest `t` with
/// `∫₀ᵗ rate = k`, for the linear ramp `rate(t) = r0 + (r1-r0)·t/D`.
/// Inverting the integral `r0·t + (r1-r0)·t²/(2D) = k` keeps inter-send
/// gaps tight where the rate is high and loose where it is low — a
/// fixed-rate schedule, not response-paced.
fn send_offset_secs(phase: &Phase, wall_secs: f64, k: u64) -> f64 {
    let k = k as f64;
    let r0 = phase.start_rps;
    let a = (phase.end_rps - r0) / (2.0 * wall_secs);
    let t = if a.abs() < 1e-12 {
        // Constant rate (validation guarantees r0 > 0 here).
        k / r0
    } else {
        let disc = (r0 * r0 + 4.0 * a * k).max(0.0);
        (-r0 + disc.sqrt()) / (2.0 * a)
    };
    t.clamp(0.0, wall_secs)
}

/// Maps a scenario surge slug to a venue category kind. `None` for
/// unknown slugs (rejected at validation time).
pub(crate) fn surge_kind(slug: &str) -> Option<CategoryKind> {
    Some(match slug {
        "stadium" | "arts" => CategoryKind::ArtsEntertainment,
        "college" => CategoryKind::CollegeUniversity,
        "eatery" => CategoryKind::Eatery,
        "nightlife" => CategoryKind::NightlifeSpot,
        "outdoors" | "park" => CategoryKind::OutdoorsRecreation,
        "professional" | "office" => CategoryKind::Professional,
        "residence" => CategoryKind::Residence,
        "shops" => CategoryKind::Shops,
        "transport" | "transit" => CategoryKind::TravelTransport,
        _ => return None,
    })
}

/// Fixed-offset local timezone of the synthetic city (New York EDT),
/// matching `crowdweb-synth`'s convention.
const TZ_OFFSET_MINUTES: i32 = -240;

/// The synthetic city backing a trace: the venue universe plus the
/// archetype agent pool.
struct City {
    universe: VenueUniverse,
    archetypes: Vec<AgentProfile>,
    /// Local wall-clock instant of the replay origin (midnight on the
    /// synthetic study's first day), stored as a UTC-interpreted
    /// timestamp so virtual offsets are plain additions.
    epoch_local: Timestamp,
}

impl City {
    fn generate(scenario: &Scenario) -> City {
        let config = SynthConfig::small(scenario.seed)
            .venues(scenario.venues)
            .hotspots(scenario.hotspots);
        let universe = VenueUniverse::generate(&config);
        let archetypes: Vec<AgentProfile> = (0..scenario.archetypes)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(
                    scenario
                        .seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(i as u64),
                );
                AgentProfile::generate(&mut rng, &universe, UserId::new(i as u32))
            })
            .collect();
        let start = config.start_date();
        let epoch_local = Timestamp::from_civil(start.year(), start.month(), start.day(), 0, 0, 0)
            .expect("synth start date is valid");
        City {
            universe,
            archetypes,
            epoch_local,
        }
    }

    /// Renders the check-in JSON body the `/api/v1/checkins` endpoint
    /// accepts. `local` is the city wall-clock instant; the `time`
    /// field carries UTC per the Foursquare TSV convention.
    fn checkin_body(&self, user: u64, venue: VenueId, local: Timestamp) -> String {
        let v = self.universe.venue(venue);
        let category = self
            .universe
            .taxonomy()
            .name_of(v.category())
            .unwrap_or("Unknown");
        let utc = local.plus_seconds(-i64::from(TZ_OFFSET_MINUTES) * 60);
        format!(
            "{{\"user\":{},\"venue\":{},\"category\":{},\"lat\":{:.6},\"lon\":{:.6},\
             \"tz_offset_minutes\":{},\"time\":{}}}",
            user % u64::from(u32::MAX),
            serde_json::to_string(v.name()).expect("venue names serialize"),
            serde_json::to_string(category).expect("category names serialize"),
            v.location().lat(),
            v.location().lon(),
            TZ_OFFSET_MINUTES,
            serde_json::to_string(&crowdweb_dataset::tsv::format_time(utc))
                .expect("timestamps serialize"),
        )
    }

    /// Draws one read event from the scenario's read mix.
    fn read_event(
        &self,
        rng: &mut StdRng,
        scenario: &Scenario,
        schedule_us: u64,
        phase: u16,
        hour: u8,
    ) -> TraceEvent {
        let weights = scenario.read_mix.weights();
        let pick = rngx::weighted_index(rng, &weights)
            .expect("validation guarantees a positive read-mix weight");
        let base = scenario.api_base();
        let (kind, path) = match pick {
            0 => (EndpointKind::Crowd, format!("{base}/crowd?hour={hour}")),
            1 => (
                EndpointKind::CrowdMap,
                format!("{base}/crowd/map?hour={hour}"),
            ),
            2 => (
                EndpointKind::Flows,
                format!("{base}/crowd/flows?from={hour}&to={}", (hour + 1) % 24),
            ),
            3 => {
                // A tile over a random venue: dashboards pan where the
                // city is, not over empty water.
                let venues = self.universe.venues();
                let at = venues[rng.gen_range(0..venues.len())].location();
                let zoom = rng.gen_range(10..=12);
                let tile = TileCoord::from_latlon(at, zoom)
                    .expect("synthetic venues sit inside Web-Mercator bounds");
                (
                    EndpointKind::Tiles,
                    format!(
                        "{base}/tiles/{}/{}/{}?hour={hour}",
                        tile.zoom(),
                        tile.x(),
                        tile.y()
                    ),
                )
            }
            4 => (EndpointKind::Export, format!("{base}/export/checkins")),
            _ => (
                EndpointKind::EpochRead,
                format!("{base}/crowd?hour={hour}&epoch={EPOCH_PLACEHOLDER}"),
            ),
        };
        TraceEvent {
            schedule_us,
            phase,
            kind,
            path,
            body: None,
        }
    }
}

/// Picks a venue for an archetype at a local hour: anchors (home, work,
/// transit) by time of day plus any habits within an hour of `hour`
/// that match the day type, uniformly over the assembled candidates.
fn choose_venue(rng: &mut StdRng, profile: &AgentProfile, hour: u8, weekend: bool) -> VenueId {
    enum Choice<'a> {
        Fixed(VenueId),
        Pool(&'a Habit),
    }
    let mut candidates: Vec<Choice<'_>> = Vec::with_capacity(8);
    if hour <= 6 || hour >= 21 {
        candidates.push(Choice::Fixed(profile.home));
        candidates.push(Choice::Fixed(profile.home));
    }
    if (7..=9).contains(&hour) || (17..=19).contains(&hour) {
        candidates.push(Choice::Fixed(profile.transit));
    }
    if (9..=17).contains(&hour) && !weekend {
        candidates.push(Choice::Fixed(profile.work));
        candidates.push(Choice::Fixed(profile.work));
    }
    for habit in &profile.habits {
        let day_ok = if weekend {
            habit.on_weekends
        } else {
            habit.on_weekdays
        };
        if day_ok && (i16::from(habit.hour) - i16::from(hour)).abs() <= 1 && !habit.pool.is_empty()
        {
            candidates.push(Choice::Pool(habit));
        }
    }
    if candidates.is_empty() {
        return profile.home;
    }
    match candidates[rng.gen_range(0..candidates.len())] {
        Choice::Fixed(v) => v,
        Choice::Pool(habit) => AgentProfile::choose_from_pool(rng, habit),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(toml: &str) -> Scenario {
        Scenario::from_toml_str(toml).unwrap()
    }

    const RAMP: &str = r#"
        name = "ramp"
        seed = 11
        users = 50000
        venues = 300
        hotspots = 6
        archetypes = 16
        time_compression = 600

        [[phase]]
        name = "up"
        virtual_secs = 1200
        start_rps = 2
        end_rps = 50
        write_fraction = 0.5

        [[phase]]
        name = "down"
        virtual_secs = 1200
        start_rps = 50
        end_rps = 2
        write_fraction = 0.5
    "#;

    #[test]
    fn schedule_is_monotonic_and_respects_phase_bounds() {
        let s = scenario(RAMP);
        let t = Trace::synthesize(&s).unwrap();
        assert_eq!(t.phase_wall_us, vec![2_000_000, 2_000_000]);
        let mut prev = 0;
        for e in &t.events {
            assert!(e.schedule_us >= prev, "schedule must be monotonic");
            prev = e.schedule_us;
            assert!(e.schedule_us <= t.total_wall_us());
        }
        // The integral says ~(2+50)/2 * 2s per phase = 52 either side.
        assert_eq!(t.events.len() as u64, 104);
        // Accelerating phase sends its median request late; the
        // decelerating phase mirrors it early.
        let mid_up = t.events[26].schedule_us as f64 / 1e6;
        assert!(mid_up > 1.0, "ramp-up median fired at {mid_up}s");
        let mid_down = (t.events[78].schedule_us - 2_000_000) as f64 / 1e6;
        assert!(mid_down < 1.0, "ramp-down median fired at {mid_down}s");
    }

    #[test]
    fn writes_carry_parseable_checkin_bodies() {
        let s = scenario(RAMP);
        let t = Trace::synthesize(&s).unwrap();
        let mut writes = 0;
        for e in &t.events {
            match e.kind {
                EndpointKind::Checkins => {
                    writes += 1;
                    let body = e.body.as_ref().expect("writes carry bodies");
                    let v: serde_json::Value = serde_json::from_str(body).unwrap();
                    assert!(v["user"].as_u64().unwrap() < 50_000);
                    assert!(v["venue"].as_str().is_some());
                    // The time field must survive the server's parser.
                    crowdweb_dataset::tsv::parse_time(v["time"].as_str().unwrap()).unwrap();
                }
                _ => assert!(e.body.is_none(), "reads carry no body"),
            }
        }
        assert!(writes > 20, "half the mix should be writes, got {writes}");
    }

    #[test]
    fn surge_concentrates_writes_on_one_venue() {
        let toml = r#"
            name = "surge"
            seed = 3
            users = 1000
            venues = 300
            hotspots = 6
            archetypes = 8
            time_compression = 600

            [[phase]]
            name = "match-day"
            virtual_secs = 1800
            start_rps = 40
            end_rps = 40
            write_fraction = 1.0
            surge = "stadium"
            surge_weight = 0.9
        "#;
        let s = scenario(toml);
        let t = Trace::synthesize(&s).unwrap();
        let mut by_venue: std::collections::HashMap<String, usize> =
            std::collections::HashMap::new();
        for e in &t.events {
            let body = e.body.as_ref().unwrap();
            let v: serde_json::Value = serde_json::from_str(body).unwrap();
            *by_venue
                .entry(v["venue"].as_str().unwrap().to_owned())
                .or_default() += 1;
        }
        let max = by_venue.values().max().copied().unwrap();
        assert!(
            max as f64 > t.events.len() as f64 * 0.8,
            "surge venue got {max} of {} writes",
            t.events.len()
        );
    }

    #[test]
    fn epoch_reads_carry_the_placeholder() {
        let toml = r#"
            name = "epochy"
            seed = 5
            users = 100
            venues = 300
            hotspots = 6
            archetypes = 8
            time_compression = 60

            [read_mix]
            crowd = 0
            map = 0
            flows = 0
            tiles = 0
            epoch = 1

            [[phase]]
            name = "reads"
            virtual_secs = 120
            start_rps = 20
            end_rps = 20
            write_fraction = 0.0
        "#;
        let s = scenario(toml);
        let t = Trace::synthesize(&s).unwrap();
        assert!(!t.events.is_empty());
        for e in &t.events {
            assert_eq!(e.kind, EndpointKind::EpochRead);
            assert!(e.path.contains(EPOCH_PLACEHOLDER), "{}", e.path);
        }
    }

    #[test]
    fn virtual_hours_steer_read_targets() {
        // One virtual day compressed into 24 wall seconds: the hour
        // parameter in read paths must sweep 0..24.
        let toml = r#"
            name = "sweep"
            seed = 9
            users = 100
            venues = 300
            hotspots = 6
            archetypes = 8
            time_compression = 3600

            [read_mix]
            crowd = 1
            map = 0
            flows = 0
            tiles = 0
            epoch = 0

            [[phase]]
            name = "day"
            virtual_secs = 86400
            start_rps = 10
            end_rps = 10
            write_fraction = 0.0
        "#;
        let s = scenario(toml);
        let t = Trace::synthesize(&s).unwrap();
        let hours: std::collections::HashSet<&str> = t
            .events
            .iter()
            .map(|e| e.path.rsplit("hour=").next().unwrap())
            .collect();
        assert!(hours.len() >= 20, "saw only hours {hours:?}");
    }
}
