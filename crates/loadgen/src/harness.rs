//! The open-loop replay engine.
//!
//! [`run`] synthesizes the trace for a scenario, then replays it against
//! a live server: sender threads take interleaved slices of the event
//! list (`i`, `i + K`, `i + 2K`, …) and fire each request at its
//! precomputed offset from run start. Latency is measured from the
//! *scheduled* send time, so server stalls — and generator lateness —
//! surface as recorded latency rather than silently stretching the run
//! (no coordinated omission).
//!
//! Alongside the senders:
//!
//! - an **epoch trigger** thread POSTs `/api/v1/ingest/epoch` on a fixed
//!   wall-clock cadence (`epoch_every_secs`), records the
//!   server-reported epoch wall time (epoch lag under load), and keeps
//!   the shared latest-epoch counter fresh for `?epoch=N` reads;
//! - a **scraper** reads `/api/v1/metrics` at each phase boundary so
//!   server-side gauges (queue depth, open connections) line up with the
//!   client-side CDFs in the output TSV.

use crate::client::{self, HttpResponse};
use crate::report::{EpochSample, GaugeSample, RunReport, Sample};
use crate::scenario::Scenario;
use crate::trace::{Trace, EPOCH_PLACEHOLDER};
use crate::LoadgenError;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Tunables for a harness run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Concurrent sender threads. Bounds in-flight requests; scheduled
    /// sends that find every sender busy are fired late, and the
    /// lateness is charged to the recorded latency (open-loop
    /// accounting). Default 8.
    pub senders: usize,
    /// Per-request socket timeout. Default 10 s.
    pub request_timeout: Duration,
    /// Suppress progress output on stderr. Default false.
    pub quiet: bool,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            senders: 8,
            request_timeout: Duration::from_secs(10),
            quiet: false,
        }
    }
}

/// Server-side gauges scraped at phase boundaries.
const SCRAPED_GAUGES: [&str; 2] = [
    "crowdweb_ingest_queue_depth",
    "crowdweb_server_open_connections",
];

/// Replays `scenario` against the server at `addr` and aggregates the
/// results.
///
/// # Errors
///
/// Returns [`LoadgenError::Run`] when the server fails the pre-run
/// health probe, and [`LoadgenError::Scenario`] when the scenario fails
/// validation.
pub fn run(
    scenario: &Scenario,
    addr: SocketAddr,
    opts: &RunOptions,
) -> Result<RunReport, LoadgenError> {
    let trace = Trace::synthesize(scenario)?;
    // Fail fast on an unreachable or unhealthy server: a run that
    // records 100% transport errors is a wasted scenario.
    match client::request(addr, "/api/v1/healthz", None, opts.request_timeout) {
        Ok(r) if r.is_success() => {}
        Ok(r) => {
            return Err(LoadgenError::Run(format!(
                "health probe returned {} — refusing to start",
                r.status
            )))
        }
        Err(e) => {
            return Err(LoadgenError::Run(format!(
                "server at {addr} unreachable: {e}"
            )))
        }
    }
    if !opts.quiet {
        eprintln!(
            "loadgen: {} events over {:.1}s wall ({} phases, {} senders)",
            trace.events.len(),
            trace.total_wall_us() as f64 / 1e6,
            trace.phase_names.len(),
            opts.senders,
        );
    }

    let latest_epoch = AtomicU64::new(0);
    let timeout = opts.request_timeout;
    let total_us = trace.total_wall_us();
    // Epoch publishes target the scenario's city, like the writes they
    // drain.
    let epoch_path = format!("{}/ingest/epoch", scenario.api_base());
    let start = Instant::now();

    let (samples, epochs, gauges) = std::thread::scope(|scope| {
        let senders: Vec<_> = (0..opts.senders.max(1))
            .map(|w| {
                let trace = &trace;
                let latest_epoch = &latest_epoch;
                scope.spawn(move || {
                    // One kept-alive connection per sender thread: the
                    // server's reuse/budget/reap behaviour is part of
                    // what the harness measures.
                    let mut http = client::Client::new(addr, timeout);
                    let mut out: Vec<Sample> = Vec::new();
                    let mut i = w;
                    while i < trace.events.len() {
                        let event = &trace.events[i];
                        sleep_until(start, event.schedule_us);
                        let path = if event.kind == crate::trace::EndpointKind::EpochRead {
                            event.path.replace(
                                EPOCH_PLACEHOLDER,
                                &latest_epoch.load(Ordering::Acquire).to_string(),
                            )
                        } else {
                            event.path.clone()
                        };
                        let result = http.request(&path, event.body.as_deref());
                        let done_us = start.elapsed().as_micros() as u64;
                        out.push(Sample {
                            phase: event.phase,
                            kind: event.kind,
                            latency_us: done_us.saturating_sub(event.schedule_us),
                            status: result.map(|r| r.status).unwrap_or(0),
                        });
                        i += opts.senders.max(1);
                    }
                    out
                })
            })
            .collect();

        // Epoch trigger: fixed cadence, independent of the senders.
        let epoch_path = &epoch_path;
        let latest_epoch = &latest_epoch;
        let epoch_thread = scope.spawn(move || {
            let mut out: Vec<EpochSample> = Vec::new();
            if scenario.epoch_every_secs <= 0.0 {
                return out;
            }
            let mut http = client::Client::new(addr, timeout);
            let step_us = (scenario.epoch_every_secs * 1e6) as u64;
            let mut at = step_us;
            while at < total_us + step_us {
                sleep_until(start, at.min(total_us));
                let sent = at.min(total_us);
                match http.request(epoch_path, Some("")) {
                    Ok(resp) => out.push(parse_epoch_response(sent, &resp, latest_epoch)),
                    Err(_) => out.push(EpochSample {
                        at_us: sent,
                        epoch: latest_epoch.load(Ordering::Acquire),
                        applied: 0,
                        duration_micros: 0,
                        status: 0,
                    }),
                }
                if at >= total_us {
                    break;
                }
                at += step_us;
            }
            out
        });

        // Scraper: one /api/v1/metrics read at each phase boundary.
        let scrape_thread = scope.spawn(|| {
            let mut http = client::Client::new(addr, timeout);
            let mut out: Vec<GaugeSample> = Vec::new();
            let mut end = 0u64;
            for (pi, wall) in trace.phase_wall_us.iter().enumerate() {
                end += wall;
                sleep_until(start, end);
                if let Ok(resp) = http.request("/api/v1/metrics", None) {
                    if resp.is_success() {
                        for name in SCRAPED_GAUGES {
                            if let Some(value) = exposition_value(&resp.body, name) {
                                out.push(GaugeSample {
                                    phase: pi as u16,
                                    name: name.to_owned(),
                                    value,
                                });
                            }
                        }
                    }
                }
            }
            out
        });

        let mut samples = Vec::with_capacity(trace.events.len());
        for s in senders {
            samples.extend(s.join().expect("sender threads do not panic"));
        }
        (
            samples,
            epoch_thread.join().expect("epoch thread does not panic"),
            scrape_thread.join().expect("scraper does not panic"),
        )
    });

    if !opts.quiet {
        eprintln!(
            "loadgen: done in {:.1}s wall ({} responses, {} epochs published)",
            start.elapsed().as_secs_f64(),
            samples.len(),
            epochs.len(),
        );
    }
    Ok(RunReport::build(
        &trace.phase_names,
        &trace.phase_wall_us,
        &samples,
        &epochs,
        &gauges,
    ))
}

fn sleep_until(start: Instant, offset_us: u64) {
    let target = start + Duration::from_micros(offset_us);
    let now = Instant::now();
    if target > now {
        std::thread::sleep(target - now);
    }
}

fn parse_epoch_response(at_us: u64, resp: &HttpResponse, latest: &AtomicU64) -> EpochSample {
    let mut epoch = latest.load(Ordering::Acquire);
    let mut applied = 0;
    let mut duration_micros = 0;
    if resp.is_success() {
        if let Ok(v) = serde_json::from_str::<serde_json::Value>(&resp.body) {
            if let Some(e) = v["epoch"].as_u64() {
                epoch = e;
                // Only a *published* epoch number is safe to hand to
                // `?epoch=N` readers.
                latest.store(e, Ordering::Release);
            }
            duration_micros = v["duration_micros"].as_u64().unwrap_or(0);
            applied = v["report"]["applied"].as_u64().unwrap_or(0);
        }
    }
    EpochSample {
        at_us,
        epoch,
        applied,
        duration_micros,
        status: resp.status,
    }
}

/// Extracts an unlabeled metric's value from Prometheus text
/// exposition.
fn exposition_value(exposition: &str, name: &str) -> Option<f64> {
    exposition.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse::<f64>().ok()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_parsing_ignores_labels_and_prefix_collisions() {
        let text = "# HELP x y\ncrowdweb_ingest_queue_depth 12\n\
                    crowdweb_ingest_queue_depth_total 99\n\
                    crowdweb_server_open_connections{shard=\"0\"} 5\n";
        assert_eq!(
            exposition_value(text, "crowdweb_ingest_queue_depth"),
            Some(12.0)
        );
        assert_eq!(
            exposition_value(text, "crowdweb_server_open_connections"),
            None
        );
        assert_eq!(exposition_value(text, "missing_metric"), None);
    }

    #[test]
    fn epoch_response_parsing_updates_the_shared_counter() {
        let latest = AtomicU64::new(0);
        let resp = HttpResponse {
            status: 200,
            retry_after: None,
            body: "{\"ran\":true,\"epoch\":3,\"duration_micros\":4200,\
                   \"report\":{\"applied\":17}}"
                .to_owned(),
            connection_close: false,
        };
        let s = parse_epoch_response(10, &resp, &latest);
        assert_eq!(s.epoch, 3);
        assert_eq!(s.applied, 17);
        assert_eq!(s.duration_micros, 4200);
        assert_eq!(latest.load(Ordering::Acquire), 3);
        // A no-op epoch (`report: null`) still reports wall time.
        let resp = HttpResponse {
            status: 200,
            retry_after: None,
            body: "{\"ran\":false,\"epoch\":3,\"duration_micros\":80,\"report\":null}".to_owned(),
            connection_close: false,
        };
        let s = parse_epoch_response(20, &resp, &latest);
        assert_eq!(s.applied, 0);
        assert_eq!(s.duration_micros, 80);
    }
}
