//! Aggregation of run samples into latency CDFs, error rates, and epoch
//! lag, plus the `out/loadgen_<scenario>.tsv` serialization.
//!
//! TSV schema (12 columns, tab-separated, one header line):
//!
//! ```text
//! kind  phase  label  count  non2xx  http503  value  p50_us  p90_us  p99_us  p999_us  max_us
//! ```
//!
//! - `kind = latency`: one row per (phase × endpoint); `value` is the
//!   achieved requests/second; percentiles are request latency measured
//!   from the *scheduled* send time (coordinated-omission-free).
//! - `kind = epoch`: one row per phase; `count` epochs published,
//!   `value` the mean check-ins applied per epoch, percentiles over the
//!   server-reported epoch wall time (epoch lag under load).
//! - `kind = gauge`: server-side gauges scraped from `/api/metrics` at
//!   each phase boundary; `value` is the gauge reading.
//! - `kind = total`: one whole-run summary row per endpoint plus an
//!   `all` row.

use crate::trace::EndpointKind;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

/// One completed request, as recorded by a sender thread.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Index into the scenario's phase list.
    pub phase: u16,
    /// Endpoint class.
    pub kind: EndpointKind,
    /// Latency from the scheduled send time to response completion.
    pub latency_us: u64,
    /// HTTP status, or 0 for a transport error (connect/read failure).
    pub status: u16,
}

/// One epoch publish observed by the epoch-trigger thread.
#[derive(Debug, Clone, Copy)]
pub struct EpochSample {
    /// Run-relative send time of the trigger, microseconds.
    pub at_us: u64,
    /// Epoch number after the trigger.
    pub epoch: u64,
    /// Check-ins applied by the epoch (0 for a no-op probe).
    pub applied: u64,
    /// Server-reported wall time of the epoch run, microseconds
    /// (the `duration_micros` field of `POST /api/v1/ingest/epoch`).
    pub duration_micros: u64,
    /// HTTP status of the trigger request (0 = transport error).
    pub status: u16,
}

/// A server-side gauge scraped from `/api/metrics` at a phase boundary.
#[derive(Debug, Clone)]
pub struct GaugeSample {
    /// Index of the phase that just ended.
    pub phase: u16,
    /// Prometheus metric name.
    pub name: String,
    /// Gauge reading.
    pub value: f64,
}

/// One aggregated output row (see the module docs for the schema).
#[derive(Debug, Clone)]
pub struct ReportRow {
    /// Row kind: `latency`, `epoch`, `gauge`, or `total`.
    pub kind: &'static str,
    /// Phase name, or `all` for whole-run rows.
    pub phase: String,
    /// Endpoint label, gauge name, or `all`.
    pub label: String,
    /// Requests (or epochs) in the row.
    pub count: u64,
    /// Responses that were neither 2xx nor 503, including transport
    /// errors. 503s are expected load-shedding and counted separately.
    pub non2xx: u64,
    /// 503 responses (backpressure / worker-queue shedding).
    pub http503: u64,
    /// Kind-dependent value: achieved RPS (latency/total), mean applied
    /// (epoch), or the gauge reading.
    pub value: f64,
    /// Latency percentiles in microseconds (0 when count is 0).
    pub p50_us: u64,
    /// 90th percentile.
    pub p90_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// 99.9th percentile.
    pub p999_us: u64,
    /// Maximum observed.
    pub max_us: u64,
}

/// The aggregated outcome of one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    rows: Vec<ReportRow>,
    total_requests: u64,
    unexpected_non2xx: u64,
    total_503: u64,
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn stat_row(
    kind: &'static str,
    phase: String,
    label: String,
    latencies: &mut [u64],
    non2xx: u64,
    http503: u64,
    value: f64,
) -> ReportRow {
    latencies.sort_unstable();
    ReportRow {
        kind,
        phase,
        label,
        count: latencies.len() as u64,
        non2xx,
        http503,
        value,
        p50_us: percentile(latencies, 50.0),
        p90_us: percentile(latencies, 90.0),
        p99_us: percentile(latencies, 99.0),
        p999_us: percentile(latencies, 99.9),
        max_us: latencies.last().copied().unwrap_or(0),
    }
}

impl RunReport {
    /// Aggregates raw samples into report rows.
    pub fn build(
        phase_names: &[String],
        phase_wall_us: &[u64],
        samples: &[Sample],
        epochs: &[EpochSample],
        gauges: &[GaugeSample],
    ) -> RunReport {
        let mut rows = Vec::new();

        // (phase, endpoint) latency rows, in phase-then-label order.
        let mut buckets: BTreeMap<(u16, &'static str), (Vec<u64>, u64, u64)> = BTreeMap::new();
        for s in samples {
            let entry = buckets
                .entry((s.phase, s.kind.label()))
                .or_insert_with(|| (Vec::new(), 0, 0));
            entry.0.push(s.latency_us);
            if s.status == 503 {
                entry.2 += 1;
            } else if !(200..300).contains(&s.status) {
                entry.1 += 1;
            }
        }
        for ((phase, label), (mut lat, non2xx, h503)) in buckets {
            let wall_secs = (phase_wall_us.get(phase as usize).copied().unwrap_or(0) as f64) / 1e6;
            let rps = if wall_secs > 0.0 {
                lat.len() as f64 / wall_secs
            } else {
                0.0
            };
            rows.push(stat_row(
                "latency",
                phase_names
                    .get(phase as usize)
                    .cloned()
                    .unwrap_or_else(|| format!("phase-{phase}")),
                label.to_owned(),
                &mut lat,
                non2xx,
                h503,
                rps,
            ));
        }

        // Epoch rows: one per phase the triggers landed in.
        let mut phase_ends = Vec::with_capacity(phase_wall_us.len());
        let mut acc = 0u64;
        for w in phase_wall_us {
            acc += w;
            phase_ends.push(acc);
        }
        let mut epoch_buckets: BTreeMap<u16, (Vec<u64>, u64, u64, u64)> = BTreeMap::new();
        for e in epochs {
            let phase = phase_ends
                .iter()
                .position(|end| e.at_us < *end)
                .unwrap_or(phase_ends.len().saturating_sub(1)) as u16;
            let entry = epoch_buckets
                .entry(phase)
                .or_insert_with(|| (Vec::new(), 0, 0, 0));
            entry.0.push(e.duration_micros);
            entry.3 += e.applied;
            if e.status == 503 {
                entry.2 += 1;
            } else if !(200..300).contains(&e.status) {
                entry.1 += 1;
            }
        }
        for (phase, (mut durs, non2xx, h503, applied)) in epoch_buckets {
            let mean_applied = if durs.is_empty() {
                0.0
            } else {
                applied as f64 / durs.len() as f64
            };
            rows.push(stat_row(
                "epoch",
                phase_names
                    .get(phase as usize)
                    .cloned()
                    .unwrap_or_else(|| format!("phase-{phase}")),
                "ingest_epoch".to_owned(),
                &mut durs,
                non2xx,
                h503,
                mean_applied,
            ));
        }

        // Gauge rows, as scraped.
        for g in gauges {
            rows.push(ReportRow {
                kind: "gauge",
                phase: phase_names
                    .get(g.phase as usize)
                    .cloned()
                    .unwrap_or_else(|| format!("phase-{}", g.phase)),
                label: g.name.clone(),
                count: 1,
                non2xx: 0,
                http503: 0,
                value: g.value,
                p50_us: 0,
                p90_us: 0,
                p99_us: 0,
                p999_us: 0,
                max_us: 0,
            });
        }

        // Whole-run totals per endpoint + one `all` row.
        let total_wall_secs = (phase_wall_us.iter().sum::<u64>() as f64) / 1e6;
        let mut totals: BTreeMap<&'static str, (Vec<u64>, u64, u64)> = BTreeMap::new();
        let mut all: (Vec<u64>, u64, u64) = (Vec::new(), 0, 0);
        for s in samples {
            for entry in [
                totals
                    .entry(s.kind.label())
                    .or_insert_with(|| (Vec::new(), 0, 0)),
                &mut all,
            ] {
                entry.0.push(s.latency_us);
                if s.status == 503 {
                    entry.2 += 1;
                } else if !(200..300).contains(&s.status) {
                    entry.1 += 1;
                }
            }
        }
        for (label, (mut lat, non2xx, h503)) in totals {
            let rps = if total_wall_secs > 0.0 {
                lat.len() as f64 / total_wall_secs
            } else {
                0.0
            };
            rows.push(stat_row(
                "total",
                "all".to_owned(),
                label.to_owned(),
                &mut lat,
                non2xx,
                h503,
                rps,
            ));
        }
        let total_requests = all.0.len() as u64;
        let unexpected_non2xx = all.1;
        let total_503 = all.2;
        let rps = if total_wall_secs > 0.0 {
            total_requests as f64 / total_wall_secs
        } else {
            0.0
        };
        rows.push(stat_row(
            "total",
            "all".to_owned(),
            "all".to_owned(),
            &mut all.0,
            all.1,
            all.2,
            rps,
        ));

        RunReport {
            rows,
            total_requests,
            unexpected_non2xx,
            total_503,
        }
    }

    /// All aggregated rows.
    pub fn rows(&self) -> &[ReportRow] {
        &self.rows
    }

    /// Total requests completed (any status).
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// Responses that were neither 2xx nor 503 (includes transport
    /// errors) — the smoke gate requires this to be zero.
    pub fn unexpected_non2xx(&self) -> u64 {
        self.unexpected_non2xx
    }

    /// 503 load-shedding responses — allowed under overload, counted.
    pub fn total_503(&self) -> u64 {
        self.total_503
    }

    /// The TSV serialization (see the module docs for the schema).
    pub fn to_tsv(&self) -> String {
        let mut out = String::with_capacity(self.rows.len() * 96 + 96);
        out.push_str(
            "kind\tphase\tlabel\tcount\tnon2xx\thttp503\tvalue\t\
             p50_us\tp90_us\tp99_us\tp999_us\tmax_us\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{:.3}\t{}\t{}\t{}\t{}\t{}\n",
                r.kind,
                r.phase,
                r.label,
                r.count,
                r.non2xx,
                r.http503,
                r.value,
                r.p50_us,
                r.p90_us,
                r.p99_us,
                r.p999_us,
                r.max_us
            ));
        }
        out
    }

    /// Writes the TSV to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_tsv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_tsv().as_bytes())?;
        f.flush()
    }

    /// A human-readable summary of the whole-run rows.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>8} {:>7} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
            "endpoint", "count", "non2xx", "503", "rps", "p50_ms", "p90_ms", "p99_ms", "max_ms"
        ));
        for r in self.rows.iter().filter(|r| r.kind == "total") {
            out.push_str(&format!(
                "{:<12} {:>8} {:>7} {:>7} {:>9.1} {:>9.2} {:>9.2} {:>9.2} {:>9.2}\n",
                r.label,
                r.count,
                r.non2xx,
                r.http503,
                r.value,
                r.p50_us as f64 / 1e3,
                r.p90_us as f64 / 1e3,
                r.p99_us as f64 / 1e3,
                r.max_us as f64 / 1e3,
            ));
        }
        for r in self.rows.iter().filter(|r| r.kind == "epoch") {
            out.push_str(&format!(
                "epoch lag [{}]: {} epochs, mean applied {:.1}, p50 {:.2} ms, max {:.2} ms\n",
                r.phase,
                r.count,
                r.value,
                r.p50_us as f64 / 1e3,
                r.max_us as f64 / 1e3,
            ));
        }
        out
    }
}

/// Validates that TSV text matches the report schema: the exact header
/// and 12 columns per row with numeric statistics. Returns the data-row
/// count.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn validate_tsv(text: &str) -> Result<usize, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty TSV")?;
    let expected =
        "kind\tphase\tlabel\tcount\tnon2xx\thttp503\tvalue\tp50_us\tp90_us\tp99_us\tp999_us\tmax_us";
    if header != expected {
        return Err(format!("bad header: {header:?}"));
    }
    let mut rows = 0;
    for (i, line) in lines.enumerate() {
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() != 12 {
            return Err(format!("row {}: {} columns, want 12", i + 2, cols.len()));
        }
        if !matches!(cols[0], "latency" | "epoch" | "gauge" | "total") {
            return Err(format!("row {}: unknown kind {:?}", i + 2, cols[0]));
        }
        for (ci, col) in cols.iter().enumerate().skip(3) {
            if ci == 6 {
                col.parse::<f64>()
                    .map_err(|_| format!("row {}: bad value {col:?}", i + 2))?;
            } else {
                col.parse::<u64>()
                    .map_err(|_| format!("row {}: bad count {col:?}", i + 2))?;
            }
        }
        rows += 1;
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 99.9), 100);
        assert_eq!(percentile(&[42], 50.0), 42);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn build_and_tsv_round_trip() {
        let names = vec!["warm".to_owned(), "hot".to_owned()];
        let walls = vec![1_000_000u64, 2_000_000];
        let samples = vec![
            Sample {
                phase: 0,
                kind: EndpointKind::Crowd,
                latency_us: 500,
                status: 200,
            },
            Sample {
                phase: 0,
                kind: EndpointKind::Checkins,
                latency_us: 900,
                status: 503,
            },
            Sample {
                phase: 1,
                kind: EndpointKind::Checkins,
                latency_us: 1_500,
                status: 200,
            },
            Sample {
                phase: 1,
                kind: EndpointKind::Tiles,
                latency_us: 2_500,
                status: 0,
            },
        ];
        let epochs = vec![EpochSample {
            at_us: 1_500_000,
            epoch: 1,
            applied: 10,
            duration_micros: 30_000,
            status: 200,
        }];
        let gauges = vec![GaugeSample {
            phase: 0,
            name: "crowdweb_ingest_queue_depth".to_owned(),
            value: 7.0,
        }];
        let report = RunReport::build(&names, &walls, &samples, &epochs, &gauges);
        assert_eq!(report.total_requests(), 4);
        assert_eq!(report.total_503(), 1);
        // The transport error is the only unexpected failure.
        assert_eq!(report.unexpected_non2xx(), 1);
        let epoch_row = report.rows().iter().find(|r| r.kind == "epoch").unwrap();
        assert_eq!(epoch_row.phase, "hot");
        assert_eq!(epoch_row.p50_us, 30_000);
        let tsv = report.to_tsv();
        let rows = validate_tsv(&tsv).expect("own TSV validates");
        assert_eq!(rows, report.rows().len());
        // The all/all summary row is present and totals everything.
        let all = report
            .rows()
            .iter()
            .find(|r| r.kind == "total" && r.label == "all")
            .unwrap();
        assert_eq!(all.count, 4);
        assert_eq!(all.max_us, 2_500);
    }

    #[test]
    fn validate_tsv_rejects_malformed_rows() {
        assert!(validate_tsv("nonsense\n").is_err());
        let good = "kind\tphase\tlabel\tcount\tnon2xx\thttp503\tvalue\t\
                    p50_us\tp90_us\tp99_us\tp999_us\tmax_us\n";
        assert_eq!(validate_tsv(good), Ok(0));
        assert!(
            validate_tsv(&format!("{good}latency\tp\tl\t1\t0\t0\tx\t1\t1\t1\t1\t1\n")).is_err()
        );
        assert!(
            validate_tsv(&format!("{good}weird\tp\tl\t1\t0\t0\t1.0\t1\t1\t1\t1\t1\n")).is_err()
        );
        assert_eq!(
            validate_tsv(&format!(
                "{good}latency\tp\tl\t1\t0\t0\t1.0\t1\t1\t1\t1\t1\n"
            )),
            Ok(1)
        );
    }
}
