//! Declarative load scenarios.
//!
//! A scenario is one TOML file under `scenarios/`: a user population, a
//! read/write mix, and a list of phases, each with a linear
//! requests-per-second ramp over a span of *virtual* (city) time. Wall
//! time is virtual time divided by `time_compression`, so a full
//! commuter day replays in a minute without changing the phase
//! definitions.
//!
//! The build environment is offline and the workspace carries no TOML
//! dependency, so this module includes a small parser for the subset the
//! scenario format needs: top-level `key = value` pairs, one `[read_mix]`
//! table, and repeated `[[phase]]` array-of-table entries, with string /
//! integer / float / boolean scalars and `#` comments. Unknown keys and
//! sections are rejected — a typoed rate field must fail loudly, not
//! silently fall back to a default.

use crate::LoadgenError;
use serde::{Deserialize, Serialize};

/// Relative weights of the read endpoints in the generated mix.
///
/// Weights are relative, not normalized: `{crowd: 4, tiles: 2}` sends
/// twice as many crowd reads as tile reads. A zero weight disables the
/// endpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReadMix {
    /// `GET /api/v1/crowd?hour=H` — the hourly crowd listing.
    pub crowd: f64,
    /// `GET /api/v1/crowd/map?hour=H` — per-venue map placements.
    pub map: f64,
    /// `GET /api/v1/crowd/flows?from=H&to=H+1` — crowd flow edges.
    pub flows: f64,
    /// `GET /api/v1/tiles/{z}/{x}/{y}?hour=H` — map tiles at venue
    /// locations.
    pub tiles: f64,
    /// `GET /api/v1/export/checkins` — the chunked NDJSON bulk export
    /// (the heaviest read; defaults to 0 so only scenarios that opt in
    /// pay for it).
    pub export: f64,
    /// `GET /api/v1/crowd?hour=H&epoch=N` — time-travel reads pinned to
    /// the most recently published epoch.
    pub epoch: f64,
}

impl Default for ReadMix {
    /// Browsing-dominated defaults: crowd and tile reads lead, flow
    /// queries and time-travel are the tail.
    fn default() -> ReadMix {
        ReadMix {
            crowd: 4.0,
            map: 2.0,
            flows: 1.0,
            tiles: 2.0,
            export: 0.0,
            epoch: 1.0,
        }
    }
}

impl ReadMix {
    /// The weights as an array in stable endpoint order
    /// (crowd, map, flows, tiles, export, epoch).
    pub fn weights(&self) -> [f64; 6] {
        [
            self.crowd,
            self.map,
            self.flows,
            self.tiles,
            self.export,
            self.epoch,
        ]
    }
}

/// One phase of a scenario: a linear RPS ramp over a span of virtual
/// time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Phase label, carried into the output TSV rows.
    pub name: String,
    /// Virtual (city-clock) seconds this phase covers. Wall duration is
    /// `virtual_secs / time_compression`.
    pub virtual_secs: f64,
    /// Requests per second (wall clock) at the start of the phase.
    pub start_rps: f64,
    /// Requests per second (wall clock) at the end of the phase; the
    /// rate ramps linearly between the two.
    pub end_rps: f64,
    /// Fraction of requests that are check-in writes (the rest follow
    /// the read mix). Defaults to 0.3.
    pub write_fraction: f64,
    /// Optional surge target: a venue-category slug (`"stadium"` maps
    /// to arts & entertainment, or any of `arts`, `college`, `eatery`,
    /// `nightlife`, `outdoors`, `professional`, `residence`, `shops`,
    /// `transport`). While the phase runs, `surge_weight` of the writes
    /// converge on one venue of that kind instead of the writer's own
    /// haunts.
    pub surge: Option<String>,
    /// Fraction of writes redirected at the surge venue (0 disables).
    pub surge_weight: f64,
}

/// A complete scenario: population, mix, and phases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name; also names the output file
    /// (`out/loadgen_<name>.tsv`).
    pub name: String,
    /// RNG seed — the synthesized trace is byte-identical for the same
    /// seed and scenario.
    pub seed: u64,
    /// Simulated user population; check-in writers are drawn uniformly
    /// from this many distinct user ids.
    pub users: u64,
    /// Venues in the synthetic city the writers check into.
    pub venues: usize,
    /// Hotspot centres venues cluster around.
    pub hotspots: usize,
    /// Behavioural archetypes: full agent profiles generated up front;
    /// each user id maps onto one, so a million-user population doesn't
    /// need a million profiles.
    pub archetypes: usize,
    /// Virtual seconds that elapse per wall second.
    pub time_compression: f64,
    /// Wall seconds between `POST /api/v1/ingest/epoch` triggers while
    /// the run is live (0 disables epoch publishing).
    pub epoch_every_secs: f64,
    /// Virtual hour of day (0–23) at which phase 1 begins.
    pub start_hour: u8,
    /// Days after 2012-04-03 (a Tuesday) at which the replay starts;
    /// use 4 to start on a Saturday.
    pub start_day_offset: u32,
    /// Target city id. When set, every data request is issued against
    /// `/api/v1/cities/<city>/...`; when absent, the default-city
    /// `/api/v1/...` spelling is used. Health polls and metrics scrapes
    /// stay platform-global either way.
    pub city: Option<String>,
    /// Read endpoint weights.
    pub read_mix: ReadMix,
    /// The phases, replayed in order.
    pub phases: Vec<Phase>,
}

impl Scenario {
    /// Parses and validates a scenario from TOML text.
    ///
    /// # Errors
    ///
    /// Returns [`LoadgenError::Scenario`] for syntax errors, unknown
    /// keys/sections, missing required keys, or semantically invalid
    /// values (see [`Scenario::validate`]).
    pub fn from_toml_str(text: &str) -> Result<Scenario, LoadgenError> {
        let scenario = parse(text)?;
        scenario.validate()?;
        Ok(scenario)
    }

    /// Reads and parses a scenario file.
    ///
    /// # Errors
    ///
    /// Returns [`LoadgenError::Io`] when the file cannot be read and
    /// [`LoadgenError::Scenario`] when it does not parse or validate.
    pub fn from_file(path: &std::path::Path) -> Result<Scenario, LoadgenError> {
        let text = std::fs::read_to_string(path)?;
        Scenario::from_toml_str(&text)
    }

    /// Validates the scenario's semantic invariants.
    ///
    /// # Errors
    ///
    /// Returns [`LoadgenError::Scenario`] naming the offending field.
    pub fn validate(&self) -> Result<(), LoadgenError> {
        let fail = |msg: String| Err(LoadgenError::Scenario(msg));
        if self.name.is_empty()
            || !self
                .name
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'-')
        {
            return fail(format!(
                "name must be a non-empty [a-z0-9_-] slug, got {:?}",
                self.name
            ));
        }
        if self.users == 0 {
            return fail("users must be at least 1".into());
        }
        if self.venues < 64 {
            return fail(format!(
                "venues must be at least 64 (so every category kind exists), got {}",
                self.venues
            ));
        }
        if self.hotspots == 0 {
            return fail("hotspots must be at least 1".into());
        }
        if self.archetypes == 0 {
            return fail("archetypes must be at least 1".into());
        }
        if self.archetypes > 1_000_000 {
            return fail(format!(
                "archetypes are full agent profiles; {} is too many (max 1000000)",
                self.archetypes
            ));
        }
        if !(self.time_compression.is_finite() && self.time_compression > 0.0) {
            return fail(format!(
                "time_compression must be a positive finite number, got {}",
                self.time_compression
            ));
        }
        if !(self.epoch_every_secs.is_finite() && self.epoch_every_secs >= 0.0) {
            return fail(format!(
                "epoch_every_secs must be >= 0, got {}",
                self.epoch_every_secs
            ));
        }
        if self.start_hour > 23 {
            return fail(format!("start_hour must be 0-23, got {}", self.start_hour));
        }
        if self.start_day_offset > 300 {
            return fail(format!(
                "start_day_offset must be 0-300 (within the synthetic study window), got {}",
                self.start_day_offset
            ));
        }
        if let Some(city) = &self.city {
            if city.is_empty()
                || city.len() > 64
                || !city
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'-')
            {
                return fail(format!(
                    "city must be a 1-64 char [a-z0-9_-] slug, got {city:?}"
                ));
            }
        }
        for (label, w) in [
            ("crowd", self.read_mix.crowd),
            ("map", self.read_mix.map),
            ("flows", self.read_mix.flows),
            ("tiles", self.read_mix.tiles),
            ("export", self.read_mix.export),
            ("epoch", self.read_mix.epoch),
        ] {
            if !(w.is_finite() && w >= 0.0) {
                return fail(format!("read_mix.{label} must be >= 0, got {w}"));
            }
        }
        let mix_total: f64 = self.read_mix.weights().iter().sum();
        if self.phases.is_empty() {
            return fail("a scenario needs at least one [[phase]]".into());
        }
        for (i, p) in self.phases.iter().enumerate() {
            let ctx = format!("phase {} ({:?})", i + 1, p.name);
            if p.name.is_empty() {
                return fail(format!("{ctx}: name must not be empty"));
            }
            if !(p.virtual_secs.is_finite() && p.virtual_secs > 0.0) {
                return fail(format!(
                    "{ctx}: virtual_secs must be positive and finite, got {}",
                    p.virtual_secs
                ));
            }
            for (label, rps) in [("start_rps", p.start_rps), ("end_rps", p.end_rps)] {
                if !(rps.is_finite() && rps >= 0.0) {
                    return fail(format!("{ctx}: {label} must be >= 0 and finite, got {rps}"));
                }
            }
            if p.start_rps + p.end_rps <= 0.0 {
                return fail(format!(
                    "{ctx}: start_rps and end_rps cannot both be zero — \
                     a silent phase is a bug, not a lull"
                ));
            }
            if !(0.0..=1.0).contains(&p.write_fraction) {
                return fail(format!(
                    "{ctx}: write_fraction must be in [0, 1], got {}",
                    p.write_fraction
                ));
            }
            if p.write_fraction < 1.0 && mix_total <= 0.0 {
                return fail(format!(
                    "{ctx}: phase generates reads but every read_mix weight is zero"
                ));
            }
            if !(0.0..=1.0).contains(&p.surge_weight) {
                return fail(format!(
                    "{ctx}: surge_weight must be in [0, 1], got {}",
                    p.surge_weight
                ));
            }
            match &p.surge {
                Some(slug) => {
                    crate::trace::surge_kind(slug).ok_or_else(|| {
                        LoadgenError::Scenario(format!("{ctx}: unknown surge kind {slug:?}"))
                    })?;
                }
                None if p.surge_weight > 0.0 => {
                    return fail(format!("{ctx}: surge_weight set without a surge kind"));
                }
                None => {}
            }
        }
        Ok(())
    }

    /// The base path every data request is issued under:
    /// `/api/v1/cities/<city>` when a city is set, plain `/api/v1`
    /// otherwise.
    pub fn api_base(&self) -> String {
        match &self.city {
            Some(city) => format!("/api/v1/cities/{city}"),
            None => "/api/v1".to_owned(),
        }
    }

    /// Wall-clock duration of one phase in seconds.
    pub fn wall_secs(&self, phase: &Phase) -> f64 {
        phase.virtual_secs / self.time_compression
    }

    /// Total wall-clock duration of the scenario in seconds.
    pub fn total_wall_secs(&self) -> f64 {
        self.phases.iter().map(|p| self.wall_secs(p)).sum()
    }
}

// ---------------------------------------------------------------------
// TOML-subset parsing
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
        }
    }

    fn as_f64(&self, key: &str) -> Result<f64, LoadgenError> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            other => Err(err(format!(
                "{key} must be a number, got a {}",
                other.type_name()
            ))),
        }
    }

    fn as_u64(&self, key: &str) -> Result<u64, LoadgenError> {
        match self {
            Value::Int(i) if *i >= 0 => Ok(*i as u64),
            Value::Int(i) => Err(err(format!("{key} must be non-negative, got {i}"))),
            other => Err(err(format!(
                "{key} must be an integer, got a {}",
                other.type_name()
            ))),
        }
    }

    fn as_str(&self, key: &str) -> Result<&str, LoadgenError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(err(format!(
                "{key} must be a string, got a {}",
                other.type_name()
            ))),
        }
    }
}

fn err(msg: String) -> LoadgenError {
    LoadgenError::Scenario(msg)
}

/// Strips a `#` comment that is not inside a double-quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_scalar(raw: &str, line_no: usize) -> Result<Value, LoadgenError> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Err(err(format!("line {line_no}: missing value")));
    }
    if let Some(stripped) = raw.strip_prefix('"') {
        let Some(inner) = stripped.strip_suffix('"') else {
            return Err(err(format!("line {line_no}: unterminated string")));
        };
        // The format needs no escapes beyond \" and \\; reject others.
        let mut out = String::with_capacity(inner.len());
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    other => {
                        return Err(err(format!("line {line_no}: unsupported escape {other:?}")))
                    }
                }
            } else if c == '"' {
                return Err(err(format!("line {line_no}: stray quote inside string")));
            } else {
                out.push(c);
            }
        }
        return Ok(Value::Str(out));
    }
    match raw {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let cleaned: String = raw.replace('_', "");
    if let Ok(i) = cleaned.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = cleaned.parse::<f64>() {
        if f.is_finite() {
            return Ok(Value::Float(f));
        }
    }
    Err(err(format!("line {line_no}: unparseable value {raw:?}")))
}

#[derive(Debug, Default)]
struct RawTable {
    entries: Vec<(String, Value)>,
}

impl RawTable {
    fn insert(&mut self, key: &str, value: Value, line_no: usize) -> Result<(), LoadgenError> {
        if self.entries.iter().any(|(k, _)| k == key) {
            return Err(err(format!("line {line_no}: duplicate key {key:?}")));
        }
        self.entries.push((key.to_owned(), value));
        Ok(())
    }

    fn take(&mut self, key: &str) -> Option<Value> {
        let i = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(i).1)
    }

    fn reject_leftovers(&self, section: &str) -> Result<(), LoadgenError> {
        if let Some((key, _)) = self.entries.first() {
            return Err(err(format!("unknown key {key:?} in {section}")));
        }
        Ok(())
    }
}

fn parse(text: &str) -> Result<Scenario, LoadgenError> {
    #[derive(PartialEq)]
    enum Section {
        Top,
        ReadMix,
        Phase,
    }
    let mut top = RawTable::default();
    let mut read_mix = RawTable::default();
    let mut phases: Vec<RawTable> = Vec::new();
    let mut section = Section::Top;

    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[") {
            let Some(name) = header.strip_suffix("]]") else {
                return Err(err(format!("line {line_no}: malformed table header")));
            };
            match name.trim() {
                "phase" => {
                    phases.push(RawTable::default());
                    section = Section::Phase;
                }
                other => {
                    return Err(err(format!(
                        "line {line_no}: unknown array table {other:?}"
                    )))
                }
            }
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let Some(name) = header.strip_suffix(']') else {
                return Err(err(format!("line {line_no}: malformed table header")));
            };
            match name.trim() {
                "read_mix" => section = Section::ReadMix,
                other => return Err(err(format!("line {line_no}: unknown table {other:?}"))),
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(format!("line {line_no}: expected `key = value`")));
        };
        let key = key.trim();
        if key.is_empty() {
            return Err(err(format!("line {line_no}: empty key")));
        }
        let value = parse_scalar(value, line_no)?;
        match section {
            Section::Top => top.insert(key, value, line_no)?,
            Section::ReadMix => read_mix.insert(key, value, line_no)?,
            Section::Phase => phases
                .last_mut()
                .expect("a [[phase]] header precedes phase keys")
                .insert(key, value, line_no)?,
        }
    }

    let require = |table: &mut RawTable, key: &str, ctx: &str| {
        table
            .take(key)
            .ok_or_else(|| err(format!("{ctx} is missing required key {key:?}")))
    };

    let name = require(&mut top, "name", "scenario")?
        .as_str("name")?
        .to_owned();
    let seed = require(&mut top, "seed", "scenario")?.as_u64("seed")?;
    let users = require(&mut top, "users", "scenario")?.as_u64("users")?;
    let venues = top
        .take("venues")
        .map(|v| v.as_u64("venues"))
        .transpose()?
        .unwrap_or(2_000) as usize;
    let hotspots = top
        .take("hotspots")
        .map(|v| v.as_u64("hotspots"))
        .transpose()?
        .unwrap_or(24) as usize;
    let archetypes = top
        .take("archetypes")
        .map(|v| v.as_u64("archetypes"))
        .transpose()?
        .unwrap_or(512) as usize;
    let time_compression = top
        .take("time_compression")
        .map(|v| v.as_f64("time_compression"))
        .transpose()?
        .unwrap_or(60.0);
    let epoch_every_secs = top
        .take("epoch_every_secs")
        .map(|v| v.as_f64("epoch_every_secs"))
        .transpose()?
        .unwrap_or(0.0);
    let start_hour = top
        .take("start_hour")
        .map(|v| v.as_u64("start_hour"))
        .transpose()?
        .unwrap_or(0) as u8;
    let start_day_offset = top
        .take("start_day_offset")
        .map(|v| v.as_u64("start_day_offset"))
        .transpose()?
        .unwrap_or(0) as u32;
    let city = top
        .take("city")
        .map(|v| v.as_str("city").map(str::to_owned))
        .transpose()?;
    top.reject_leftovers("the scenario")?;

    let defaults = ReadMix::default();
    let mix_field = |table: &mut RawTable, key: &str, default: f64| {
        table
            .take(key)
            .map(|v| v.as_f64(&format!("read_mix.{key}")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let read_mix_value = ReadMix {
        crowd: mix_field(&mut read_mix, "crowd", defaults.crowd)?,
        map: mix_field(&mut read_mix, "map", defaults.map)?,
        flows: mix_field(&mut read_mix, "flows", defaults.flows)?,
        tiles: mix_field(&mut read_mix, "tiles", defaults.tiles)?,
        export: mix_field(&mut read_mix, "export", defaults.export)?,
        epoch: mix_field(&mut read_mix, "epoch", defaults.epoch)?,
    };
    read_mix.reject_leftovers("[read_mix]")?;

    let mut parsed_phases = Vec::with_capacity(phases.len());
    for (i, mut table) in phases.into_iter().enumerate() {
        let ctx = format!("[[phase]] {}", i + 1);
        let phase = Phase {
            name: require(&mut table, "name", &ctx)?
                .as_str("name")?
                .to_owned(),
            virtual_secs: require(&mut table, "virtual_secs", &ctx)?.as_f64("virtual_secs")?,
            start_rps: require(&mut table, "start_rps", &ctx)?.as_f64("start_rps")?,
            end_rps: require(&mut table, "end_rps", &ctx)?.as_f64("end_rps")?,
            write_fraction: table
                .take("write_fraction")
                .map(|v| v.as_f64("write_fraction"))
                .transpose()?
                .unwrap_or(0.3),
            surge: table
                .take("surge")
                .map(|v| v.as_str("surge").map(str::to_owned))
                .transpose()?,
            surge_weight: table
                .take("surge_weight")
                .map(|v| v.as_f64("surge_weight"))
                .transpose()?
                .unwrap_or(0.0),
        };
        table.reject_leftovers(&ctx)?;
        parsed_phases.push(phase);
    }

    Ok(Scenario {
        name,
        seed,
        users,
        venues,
        hotspots,
        archetypes,
        time_compression,
        epoch_every_secs,
        start_hour,
        start_day_offset,
        city,
        read_mix: read_mix_value,
        phases: parsed_phases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
        name = "minimal"
        seed = 7
        users = 1000

        [[phase]]
        name = "steady"
        virtual_secs = 600
        start_rps = 10
        end_rps = 10
    "#;

    #[test]
    fn minimal_scenario_parses_with_defaults() {
        let s = Scenario::from_toml_str(MINIMAL).unwrap();
        assert_eq!(s.name, "minimal");
        assert_eq!(s.seed, 7);
        assert_eq!(s.users, 1000);
        assert_eq!(s.archetypes, 512);
        assert_eq!(s.read_mix, ReadMix::default());
        assert_eq!(s.phases.len(), 1);
        assert_eq!(s.phases[0].write_fraction, 0.3);
        assert_eq!(s.phases[0].surge, None);
        assert_eq!(s.total_wall_secs(), 10.0);
        // No city: requests go to the default-city spelling.
        assert_eq!(s.city, None);
        assert_eq!(s.api_base(), "/api/v1");
    }

    #[test]
    fn city_key_scopes_the_api_base() {
        let toml = MINIMAL.replace("seed = 7", "seed = 7\n        city = \"tokyo\"");
        let s = Scenario::from_toml_str(&toml).unwrap();
        assert_eq!(s.city.as_deref(), Some("tokyo"));
        assert_eq!(s.api_base(), "/api/v1/cities/tokyo");
        // Non-slug ids are rejected at validation time, before any
        // request is built from them.
        for bad in ["", "Tokyo", "a b", "x/../y"] {
            let toml = MINIMAL.replace("seed = 7", &format!("seed = 7\n        city = \"{bad}\""));
            let e = Scenario::from_toml_str(&toml).unwrap_err();
            assert!(e.to_string().contains("city"), "{bad}: {e}");
        }
    }

    #[test]
    fn full_scenario_round_trips_through_serde() {
        let toml = r#"
            name = "full"
            seed = 42
            users = 1_200_000
            venues = 4000
            hotspots = 32
            archetypes = 1024
            time_compression = 1200.0
            epoch_every_secs = 5
            start_hour = 5
            start_day_offset = 4

            [read_mix]
            crowd = 3
            map = 1
            flows = 0.5
            tiles = 2
            export = 0.25
            epoch = 0.5

            [[phase]]
            name = "lull" # night
            virtual_secs = 7200
            start_rps = 5
            end_rps = 5
            write_fraction = 0.1

            [[phase]]
            name = "surge"
            virtual_secs = 3600
            start_rps = 5
            end_rps = 120
            write_fraction = 0.7
            surge = "stadium"
            surge_weight = 0.8
        "#;
        let s = Scenario::from_toml_str(toml).unwrap();
        assert_eq!(s.users, 1_200_000);
        assert_eq!(s.read_mix.export, 0.25);
        assert_eq!(s.phases[1].surge.as_deref(), Some("stadium"));
        // serde round trip: serialize to JSON, parse back, equal.
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn comments_and_strings_interact_correctly() {
        let toml = r#"
            name = "hash-proof"
            seed = 1
            users = 10

            [[phase]]
            name = "a # not a comment"
            virtual_secs = 60
            start_rps = 1
            end_rps = 1
        "#;
        let s = Scenario::from_toml_str(toml).unwrap();
        assert_eq!(s.phases[0].name, "a # not a comment");
    }

    fn expect_rejection(toml: &str, needle: &str) {
        match Scenario::from_toml_str(toml) {
            Err(LoadgenError::Scenario(msg)) => {
                assert!(msg.contains(needle), "message {msg:?} lacks {needle:?}")
            }
            other => panic!("expected scenario rejection mentioning {needle:?}, got {other:?}"),
        }
    }

    #[test]
    fn malformed_scenarios_are_rejected() {
        // Unknown top-level key (typo protection).
        expect_rejection(
            &MINIMAL.replace("users = 1000", "users = 1000\nuzers = 5"),
            "unknown key",
        );
        // Missing required phase key.
        expect_rejection(&MINIMAL.replace("start_rps = 10\n", ""), "start_rps");
        // Negative rate.
        expect_rejection(&MINIMAL.replace("end_rps = 10", "end_rps = -3"), "end_rps");
        // Both rates zero: a silent phase.
        expect_rejection(
            &MINIMAL
                .replace("start_rps = 10", "start_rps = 0")
                .replace("end_rps = 10", "end_rps = 0"),
            "both be zero",
        );
        // Bad write fraction.
        expect_rejection(
            &MINIMAL.replace("end_rps = 10", "end_rps = 10\nwrite_fraction = 1.5"),
            "write_fraction",
        );
        // Unknown surge kind.
        expect_rejection(
            &MINIMAL.replace("end_rps = 10", "end_rps = 10\nsurge = \"casino\""),
            "unknown surge kind",
        );
        // Surge weight without a kind.
        expect_rejection(
            &MINIMAL.replace("end_rps = 10", "end_rps = 10\nsurge_weight = 0.5"),
            "without a surge kind",
        );
        // Unparseable value.
        expect_rejection(&MINIMAL.replace("seed = 7", "seed = banana"), "unparseable");
        // Duplicate key.
        expect_rejection(
            &MINIMAL.replace("seed = 7", "seed = 7\nseed = 8"),
            "duplicate",
        );
        // Unknown section.
        expect_rejection(&format!("{MINIMAL}\n[write_mix]\nx = 1"), "unknown table");
        // No phases at all.
        expect_rejection(
            "name = \"empty\"\nseed = 1\nusers = 10\n",
            "at least one [[phase]]",
        );
        // Zero time compression.
        expect_rejection(
            &MINIMAL.replace("users = 1000", "users = 1000\ntime_compression = 0"),
            "time_compression",
        );
        // Bad start hour.
        expect_rejection(
            &MINIMAL.replace("users = 1000", "users = 1000\nstart_hour = 24"),
            "start_hour",
        );
    }
}
