//! `crowdweb-loadgen` — scenario-driven load generator CLI.
//!
//! ```text
//! crowdweb-loadgen run scenarios/commute_surge.toml [--addr HOST:PORT]
//!                      [--out DIR] [--senders N] [--quiet]
//! crowdweb-loadgen check scenarios/commute_surge.toml
//! ```
//!
//! `run` replays the scenario against a server. With `--addr` it drives
//! an already-running instance; without it, it boots an in-process
//! CrowdWeb server on an ephemeral port (a small seeded dataset, the
//! same stack production runs) and drives that over real TCP. Results
//! land in `out/loadgen_<name>.tsv`.
//!
//! `check` parses, validates, and synthesizes without sending a single
//! request — a fast way to vet a new scenario file.

use crowdweb_loadgen::{harness, report, scenario::Scenario, trace::Trace, RunOptions};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: crowdweb-loadgen run <scenario.toml> [--addr HOST:PORT] [--out DIR] \
         [--senders N] [--quiet]\n       crowdweb-loadgen check <scenario.toml>"
    );
    std::process::exit(2);
}

fn fail(msg: String) -> ! {
    eprintln!("crowdweb-loadgen: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        _ => usage(),
    }
}

fn load_scenario(path: &str) -> Scenario {
    match Scenario::from_file(std::path::Path::new(path)) {
        Ok(s) => s,
        Err(e) => fail(format!("{path}: {e}")),
    }
}

fn cmd_check(args: &[String]) {
    let [path] = args else { usage() };
    let scenario = load_scenario(path);
    let trace = match Trace::synthesize(&scenario) {
        Ok(t) => t,
        Err(e) => fail(e.to_string()),
    };
    println!(
        "{}: {} users, {} phases, {} events over {:.1}s wall",
        scenario.name,
        scenario.users,
        scenario.phases.len(),
        trace.events.len(),
        trace.total_wall_us() as f64 / 1e6,
    );
    let mut per_phase = vec![0u64; trace.phase_names.len()];
    for e in &trace.events {
        per_phase[e.phase as usize] += 1;
    }
    for (name, (events, wall_us)) in trace
        .phase_names
        .iter()
        .zip(per_phase.iter().zip(&trace.phase_wall_us))
    {
        println!(
            "  {name}: {events} events / {:.1}s wall ({:.1} rps avg)",
            *wall_us as f64 / 1e6,
            *events as f64 / (*wall_us as f64 / 1e6).max(1e-9),
        );
    }
}

fn cmd_run(args: &[String]) {
    let mut path: Option<&str> = None;
    let mut addr: Option<SocketAddr> = None;
    let mut out_dir = PathBuf::from("out");
    let mut opts = RunOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                let raw = it.next().unwrap_or_else(|| usage());
                addr = Some(
                    raw.parse()
                        .unwrap_or_else(|_| fail(format!("bad --addr {raw:?}"))),
                );
            }
            "--out" => out_dir = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--senders" => {
                let raw = it.next().unwrap_or_else(|| usage());
                opts.senders = raw
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| fail(format!("bad --senders {raw:?}")));
            }
            "--quiet" => opts.quiet = true,
            other if path.is_none() && !other.starts_with('-') => path = Some(other),
            other => fail(format!("unknown argument {other:?}")),
        }
    }
    let Some(path) = path else { usage() };
    let scenario = load_scenario(path);

    // Self-host when no --addr: the same serving stack production runs,
    // on an ephemeral port, seeded with a small synthetic dataset the
    // run then grows via its check-in writes.
    let hosted = match addr {
        Some(a) => {
            eprintln!("loadgen: driving external server at {a}");
            None
        }
        None => {
            eprintln!("loadgen: booting in-process server (seeded dataset)...");
            let dataset = crowdweb_synth::SynthConfig::small(scenario.seed)
                .generate()
                .unwrap_or_else(|e| fail(format!("dataset synthesis failed: {e}")));
            let state = crowdweb_server::AppState::build(dataset, 20)
                .unwrap_or_else(|e| fail(format!("server state build failed: {e}")));
            let server = crowdweb_server::Server::bind("127.0.0.1:0", state)
                .unwrap_or_else(|e| fail(format!("bind failed: {e}")))
                .read_timeout(Duration::from_secs(5))
                .write_timeout(Duration::from_secs(5));
            let (bound, shutdown, join) = server.spawn();
            eprintln!("loadgen: server up at {bound}");
            addr = Some(bound);
            Some((shutdown, join))
        }
    };
    let addr = addr.expect("addr resolved above");

    let report = match harness::run(&scenario, addr, &opts) {
        Ok(r) => r,
        Err(e) => fail(e.to_string()),
    };

    if let Some((shutdown, join)) = hosted {
        shutdown.shutdown();
        let _ = join.join();
    }

    let tsv = report.to_tsv();
    if let Err(e) = report::validate_tsv(&tsv) {
        fail(format!(
            "internal error: generated TSV does not validate: {e}"
        ));
    }
    let out_path = out_dir.join(format!("loadgen_{}.tsv", scenario.name));
    if let Err(e) = report.write_tsv(&out_path) {
        fail(format!("writing {}: {e}", out_path.display()));
    }
    println!("{}", report.summary());
    println!("wrote {}", out_path.display());
    if report.unexpected_non2xx() > 0 {
        eprintln!(
            "warning: {} unexpected non-2xx responses (503 shedding excluded)",
            report.unexpected_non2xx()
        );
        std::process::exit(1);
    }
}
