//! Trace determinism: the same seed and scenario must synthesize a
//! byte-identical trace — identical request *sequence* and identical
//! *timestamps* — so a scenario file plus a seed fully names a
//! workload.

use crowdweb_loadgen::{Scenario, Trace};
use std::path::PathBuf;

fn scenario_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../scenarios")
        .join(file)
}

#[test]
fn same_seed_and_scenario_synthesize_byte_identical_traces() {
    let scenario = Scenario::from_file(&scenario_path("commute_surge.toml")).expect("parses");
    let first = Trace::synthesize(&scenario).expect("synthesizes").to_tsv();
    let second = Trace::synthesize(&scenario).expect("synthesizes").to_tsv();
    assert_eq!(first, second, "two syntheses of the same scenario diverged");
    // The fingerprint covers timestamps, not just the event sequence.
    assert!(first.starts_with("schedule_us\t"), "TSV carries timestamps");
    assert!(first.lines().count() > 1000, "commute surge is non-trivial");
}

#[test]
fn changing_the_seed_changes_the_trace() {
    let base = Scenario::from_file(&scenario_path("smoke.toml")).expect("parses");
    let mut reseeded = base.clone();
    reseeded.seed += 1;
    let a = Trace::synthesize(&base).expect("synthesizes").to_tsv();
    let b = Trace::synthesize(&reseeded).expect("synthesizes").to_tsv();
    assert_ne!(a, b, "different seeds must produce different traces");
}

#[test]
fn scenario_serde_round_trip_preserves_every_field() {
    for file in [
        "commute_surge.toml",
        "stadium_event.toml",
        "weekend_lull.toml",
    ] {
        let scenario = Scenario::from_file(&scenario_path(file)).expect("parses");
        let json = serde_json::to_string(&scenario).expect("serializes");
        let back: Scenario = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(scenario, back, "{file} round-trip");
    }
}
