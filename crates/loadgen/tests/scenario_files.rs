//! Every scenario file shipped under `scenarios/` must parse, validate,
//! match its file name, and synthesize a non-empty trace.

use crowdweb_loadgen::{Scenario, Trace};
use std::path::PathBuf;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

#[test]
fn all_shipped_scenarios_parse_and_synthesize() {
    let mut names = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(scenarios_dir())
        .expect("scenarios/ exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        // `<scenario>.thresholds.toml` files are bench-gate bounds
        // (scripts/bench_gate.sh), not scenarios.
        .filter(|p| {
            !p.file_name()
                .is_some_and(|n| n.to_string_lossy().ends_with(".thresholds.toml"))
        })
        .collect();
    entries.sort();
    for path in entries {
        let scenario =
            Scenario::from_file(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let stem = path.file_stem().expect("file stem").to_string_lossy();
        assert_eq!(
            scenario.name,
            stem,
            "{}: scenario name must match the file name",
            path.display()
        );
        let trace =
            Trace::synthesize(&scenario).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            !trace.events.is_empty(),
            "{}: scenario synthesizes no events",
            path.display()
        );
        assert_eq!(trace.phase_names.len(), scenario.phases.len());
        names.push(scenario.name);
    }
    for expected in ["commute_surge", "stadium_event", "weekend_lull", "smoke"] {
        assert!(
            names.iter().any(|n| n == expected),
            "missing shipped scenario {expected:?} (found {names:?})"
        );
    }
}
