//! End-to-end smoke gate, also run by `scripts/check.sh`: boot the real
//! server stack on an ephemeral port, replay `scenarios/smoke.toml`
//! over TCP, and assert the run is healthy — nonzero throughput, zero
//! unexpected non-2xx (503 shedding is allowed and counted separately),
//! and an output TSV that validates.

use crowdweb_loadgen::{harness, report, RunOptions, Scenario};
use std::path::PathBuf;
use std::time::Duration;

#[test]
fn smoke_scenario_runs_clean_against_a_live_server() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios/smoke.toml");
    let scenario = Scenario::from_file(&path).expect("smoke scenario parses");

    let dataset = crowdweb_synth::SynthConfig::small(scenario.seed)
        .generate()
        .expect("seed dataset synthesizes");
    let state = crowdweb_server::AppState::build(dataset, 20).expect("state builds");
    let server = crowdweb_server::Server::bind("127.0.0.1:0", state)
        .expect("binds an ephemeral port")
        .read_timeout(Duration::from_secs(5))
        .write_timeout(Duration::from_secs(5));
    let (addr, shutdown, join) = server.spawn();

    let opts = RunOptions {
        senders: 4,
        quiet: true,
        ..RunOptions::default()
    };
    let run = harness::run(&scenario, addr, &opts).expect("replay succeeds");
    shutdown.shutdown();
    join.join().expect("server thread exits");

    assert!(
        run.total_requests() >= 100,
        "throughput too low: {} requests",
        run.total_requests()
    );
    assert_eq!(
        run.unexpected_non2xx(),
        0,
        "unexpected non-2xx responses:\n{}",
        run.summary()
    );
    let tsv = run.to_tsv();
    let rows = report::validate_tsv(&tsv).expect("output TSV validates");
    assert!(
        rows > scenario.phases.len(),
        "TSV should carry at least one row per phase plus totals"
    );
    // The epoch trigger must have published at least one epoch.
    assert!(
        run.rows().iter().any(|r| r.kind == "epoch"),
        "no epoch rows recorded:\n{tsv}"
    );
}
