//! Chunked streaming over real TCP: the behaviours ISSUE 10 promises.
//!
//! - The NDJSON export arrives as a `Transfer-Encoding: chunked` body
//!   that decodes to exactly the bytes the handler produced, without
//!   giving up keep-alive or pipelining.
//! - A slow reader bounds the server's per-connection stream memory to
//!   the configured budget plus one chunk — backpressure, not
//!   buffering.
//!
//! The third streaming behaviour — a producer error mid-body tears the
//! connection down *without* the terminal chunk — needs a fault
//! injected into the stream and therefore lives with the reactor's
//! unit tests (`reactor::tests`), which drive a failing `BodyStream`
//! over a real socketpair.

use crowdweb_server::{api, sys, AppState, Request, Server};
use crowdweb_synth::SynthConfig;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const SEED: u64 = 81;

/// Boots a server over a synthetic dataset; returns the address, the
/// metrics registry, and the dataset's check-in count.
fn spawn(
    users: usize,
    configure: impl FnOnce(Server) -> Server,
) -> (SocketAddr, crowdweb_obs::MetricsRegistry, usize) {
    let dataset = SynthConfig::small(SEED).users(users).generate().unwrap();
    let checkins = dataset.len();
    let state = AppState::build(dataset, 10).unwrap();
    let metrics = state.metrics().clone();
    let server = configure(Server::bind("127.0.0.1:0", state).unwrap());
    let (addr, _handle, _join) = server.spawn();
    (addr, metrics, checkins)
}

/// The export body the handler produces, computed out-of-band by
/// routing the same request against an identically built state —
/// synthesis and the platform build are deterministic in the seed, so
/// this is the byte-exact ground truth for the wire test.
fn expected_export(users: usize) -> Vec<u8> {
    let dataset = SynthConfig::small(SEED).users(users).generate().unwrap();
    let state = AppState::build(dataset, 10).unwrap();
    let router = api::build_router();
    let req =
        Request::read_from("GET /api/v1/export/checkins HTTP/1.1\r\n\r\n".as_bytes()).unwrap();
    router.route(&state, &req).into_body_bytes()
}

/// Reads one response head (through the blank line) off an open stream.
fn read_head(stream: &mut TcpStream) -> String {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        let n = stream.read(&mut byte).expect("response head readable");
        assert!(n > 0, "connection closed mid-head: {head:?}");
        head.push(byte[0]);
    }
    String::from_utf8(head).unwrap()
}

fn header(head: &str, name: &str) -> Option<String> {
    head.lines().find_map(|l| {
        let (n, v) = l.split_once(':')?;
        n.eq_ignore_ascii_case(name).then(|| v.trim().to_owned())
    })
}

/// Decodes one chunked body off an open stream, consuming exactly
/// through the terminal chunk's trailing CRLF so a pipelined response
/// behind it stays unread.
fn read_chunked_body(stream: &mut TcpStream) -> Vec<u8> {
    let mut body = Vec::new();
    loop {
        // Chunk-size line, byte at a time (no over-read).
        let mut line = Vec::new();
        let mut byte = [0u8; 1];
        while !line.ends_with(b"\r\n") {
            assert!(
                stream.read(&mut byte).expect("size line readable") > 0,
                "EOF inside a chunk-size line"
            );
            line.push(byte[0]);
        }
        let line = String::from_utf8(line).unwrap();
        let size_hex = line.trim_end().split(';').next().unwrap();
        let size = usize::from_str_radix(size_hex, 16).expect("hex chunk size");
        let mut data = vec![0u8; size + 2];
        stream.read_exact(&mut data).expect("chunk data readable");
        assert_eq!(&data[size..], b"\r\n", "chunk data must end with CRLF");
        if size == 0 {
            return body;
        }
        data.truncate(size);
        body.extend_from_slice(&data);
    }
}

/// Reads a `Content-Length`-framed body (the framing every non-streamed
/// response keeps).
fn read_full_body(stream: &mut TcpStream, head: &str) -> Vec<u8> {
    let len: usize = header(head, "content-length")
        .expect("full responses declare Content-Length")
        .parse()
        .unwrap();
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).expect("body readable");
    body
}

#[test]
fn chunked_export_is_byte_identical_and_keeps_the_connection_alive() {
    let expected = expected_export(10);
    assert!(
        expected.len() > 100_000,
        "export ground truth implausibly small: {} bytes",
        expected.len()
    );
    let (addr, metrics, _) = spawn(10, |s| s);
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // The streamed request and a pipelined follow-up in one segment:
    // the stream must finish cleanly and hand the connection back to
    // the read loop with the buffered request intact.
    stream
        .write_all(
            b"GET /api/v1/export/checkins HTTP/1.1\r\nHost: t\r\n\r\n\
              GET /api/v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n",
        )
        .unwrap();

    let head = read_head(&mut stream);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(
        header(&head, "transfer-encoding").as_deref(),
        Some("chunked")
    );
    assert!(
        header(&head, "content-length").is_none(),
        "a chunked response must not also declare Content-Length: {head}"
    );
    assert_eq!(header(&head, "connection").as_deref(), Some("keep-alive"));
    assert_eq!(
        header(&head, "content-type").as_deref(),
        Some("application/x-ndjson")
    );
    assert!(
        header(&head, "etag").is_some_and(|t| t.starts_with('"')),
        "export carries a strong epoch ETag: {head}"
    );
    let body = read_chunked_body(&mut stream);
    assert_eq!(
        body.len(),
        expected.len(),
        "decoded export length diverges from the handler's output"
    );
    assert!(body == expected, "decoded export bytes diverge");

    // The pipelined follow-up answers on the same connection.
    let head = read_head(&mut stream);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let body = read_full_body(&mut stream, &head);
    assert!(String::from_utf8_lossy(&body).contains("\"ok\""), "{head}");
    assert_eq!(
        metrics.counter_value("crowdweb_server_keepalive_reuses_total", &[]),
        Some(1),
        "the request behind the stream is one connection reuse"
    );

    // Per-route streamed-body accounting: every produced byte counted
    // against the matched route pattern, in more than one chunk.
    let route = [("route", "/api/v1/export/checkins")];
    assert_eq!(
        metrics.counter_value("crowdweb_http_streamed_body_bytes_total", &route),
        Some(expected.len() as u64)
    );
    let chunks = metrics
        .counter_value("crowdweb_http_streamed_chunks_total", &route)
        .unwrap();
    assert!(
        chunks >= 2,
        "a {}-byte export in {chunks} chunk(s)",
        expected.len()
    );
}

#[test]
fn slow_reader_bounds_stream_memory_to_the_budget() {
    // A deliberately small budget against a multi-megabyte export: the
    // producer must be parked the moment the write window fills, so the
    // reactor never holds more than budget + one chunk per connection.
    const BUDGET: usize = 16 * 1024;
    // One producer chunk is at most STREAM_CHUNK_BYTES (64 KiB) plus a
    // row of slack; chunked framing adds a few bytes per chunk.
    const BOUND: usize = BUDGET + 70 * 1024;
    let (addr, metrics, checkins) = spawn(600, |s| s.stream_budget(BUDGET));
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // Shrink our receive window so the kernels cannot absorb the body
    // on our behalf — the server must actually stall.
    sys::set_recv_buffer(&stream, 16 * 1024).unwrap();
    stream
        .write_all(b"GET /api/v1/export/checkins HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();

    // Refuse to read until the server visibly defers with a bounded
    // window queued.
    let started = Instant::now();
    let mut stalled_at = None;
    while started.elapsed() < Duration::from_secs(10) {
        match metrics.gauge_value("crowdweb_server_stream_buffered_bytes", &[]) {
            Some(n) if n > 0 => {
                stalled_at = Some(n);
                break;
            }
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    let stalled_at = stalled_at.expect("a stalled export must leave buffered stream bytes");
    assert!(
        stalled_at as usize <= BOUND,
        "stalled window holds {stalled_at} bytes, budget {BUDGET} allows at most {BOUND}"
    );
    // Hold the stall and keep sampling: the window must stay bounded,
    // not creep while the producer is supposedly parked.
    for _ in 0..20 {
        std::thread::sleep(Duration::from_millis(10));
        if let Some(n) = metrics.gauge_value("crowdweb_server_stream_buffered_bytes", &[]) {
            assert!(
                n as usize <= BOUND,
                "stream window grew to {n} bytes during a stall (bound {BOUND})"
            );
        }
    }

    // Drain: the whole body must still arrive intact — one NDJSON line
    // per dataset check-in, terminated by the final chunk, and the
    // connection closes as asked.
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("head/body split")
        + 4;
    let head = String::from_utf8_lossy(&raw[..head_end]).to_string();
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(header(&head, "connection").as_deref(), Some("close"));
    let body = decode_chunked_buffer(&raw[head_end..]);
    assert_eq!(
        body.iter().filter(|&&b| b == b'\n').count(),
        checkins,
        "one NDJSON line per check-in"
    );
    assert_eq!(
        metrics.counter_value(
            "crowdweb_http_streamed_body_bytes_total",
            &[("route", "/api/v1/export/checkins")],
        ),
        Some(body.len() as u64)
    );
    assert_eq!(
        metrics.counter_value("crowdweb_server_stream_aborts_total", &[]),
        Some(0),
        "a slow reader is backpressure, not an abort"
    );
    // With the connection gone, nothing is buffered for streams.
    let started = Instant::now();
    loop {
        match metrics.gauge_value("crowdweb_server_stream_buffered_bytes", &[]) {
            Some(0) => break,
            _ if started.elapsed() > Duration::from_secs(5) => {
                panic!("stream-buffered gauge never returned to zero")
            }
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Decodes a fully buffered chunked body, asserting it ends at the
/// terminal chunk (a truncated buffer panics — which is the point: a
/// client must be able to tell).
fn decode_chunked_buffer(mut rest: &[u8]) -> Vec<u8> {
    let mut body = Vec::new();
    loop {
        let nl = rest
            .windows(2)
            .position(|w| w == b"\r\n")
            .expect("chunk-size line");
        let size_hex = std::str::from_utf8(&rest[..nl]).unwrap();
        let size_hex = size_hex.split(';').next().unwrap();
        let size = usize::from_str_radix(size_hex, 16).expect("hex chunk size");
        rest = &rest[nl + 2..];
        if size == 0 {
            assert!(rest.starts_with(b"\r\n"), "terminal chunk ends the body");
            return body;
        }
        assert!(rest.len() >= size + 2, "body truncated mid-chunk");
        body.extend_from_slice(&rest[..size]);
        assert_eq!(&rest[size..size + 2], b"\r\n");
        rest = &rest[size + 2..];
    }
}
