//! Keep-alive semantics over real TCP: pipelining, budgets, idle
//! reaping, and deferred writes — the behaviours ISSUE 8 promises.

use crowdweb_server::{AppState, Server};
use crowdweb_synth::SynthConfig;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn spawn(configure: impl FnOnce(Server) -> Server) -> (SocketAddr, crowdweb_obs::MetricsRegistry) {
    let dataset = SynthConfig::small(81).users(10).generate().unwrap();
    let state = AppState::build(dataset, 10).unwrap();
    let metrics = state.metrics().clone();
    let server = configure(Server::bind("127.0.0.1:0", state).unwrap());
    let (addr, _handle, _join) = server.spawn();
    (addr, metrics)
}

/// Reads exactly one HTTP/1.1 response (status line + headers +
/// `Content-Length` body) off a stream that stays open. Returns
/// (status, headers, body).
fn read_response(stream: &mut TcpStream) -> (u16, String, Vec<u8>) {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        let n = stream.read(&mut byte).expect("response head readable");
        assert!(n > 0, "connection closed mid-head: {head:?}");
        head.push(byte[0]);
    }
    let head = String::from_utf8(head).unwrap();
    let status: u16 = head.split_whitespace().nth(1).unwrap().parse().unwrap();
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().unwrap())
        })
        .expect("every response declares Content-Length");
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).expect("body readable");
    (status, head, body)
}

fn connection_header(head: &str) -> String {
    head.lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("connection")
                .then(|| value.trim().to_ascii_lowercase())
        })
        .expect("every response states its connection disposition")
}

#[test]
fn two_pipelined_requests_in_one_segment_answered_in_order() {
    let (addr, metrics) = spawn(|s| s);
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Both requests in a single write — the second must wait buffered
    // while the first is in flight, then be answered on the same
    // connection, in order.
    stream
        .write_all(
            b"GET /api/v1/stats HTTP/1.1\r\nHost: t\r\n\r\n\
              GET /api/v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n",
        )
        .unwrap();
    let (status, head, body) = read_response(&mut stream);
    assert_eq!(status, 200);
    assert_eq!(connection_header(&head), "keep-alive");
    assert!(
        String::from_utf8_lossy(&body).contains("total_checkins"),
        "first response must answer the first (stats) request"
    );
    let (status, head, body) = read_response(&mut stream);
    assert_eq!(status, 200);
    assert_eq!(connection_header(&head), "keep-alive");
    assert!(
        String::from_utf8_lossy(&body).contains("\"ok\""),
        "second response must answer the second (healthz) request: {}",
        String::from_utf8_lossy(&body)
    );
    assert_eq!(
        metrics.counter_value("crowdweb_server_keepalive_reuses_total", &[]),
        Some(1),
        "the second pipelined request is one connection reuse"
    );
}

#[test]
fn sequential_requests_reuse_one_connection() {
    let (addr, metrics) = spawn(|s| s);
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for i in 0..5 {
        stream
            .write_all(b"GET /api/v1/stats HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let (status, head, _) = read_response(&mut stream);
        assert_eq!(status, 200, "request {i}");
        assert_eq!(connection_header(&head), "keep-alive", "request {i}");
    }
    assert_eq!(
        metrics.counter_value("crowdweb_server_keepalive_reuses_total", &[]),
        Some(4),
        "five requests on one connection = four reuses"
    );
}

#[test]
fn budget_exhaustion_closes_with_connection_close_on_last_response() {
    let (addr, _metrics) = spawn(|s| s.keep_alive_requests(3));
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for i in 0..3 {
        stream
            .write_all(b"GET /api/v1/stats HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let (status, head, _) = read_response(&mut stream);
        assert_eq!(status, 200, "request {i}");
        let expect = if i < 2 { "keep-alive" } else { "close" };
        assert_eq!(
            connection_header(&head),
            expect,
            "request {i} of a 3-request budget"
        );
    }
    // And the server actually hangs up: the next read is EOF.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(
        rest.is_empty(),
        "no bytes may follow the budget-final response"
    );
}

#[test]
fn idle_keep_alive_connection_is_reaped_and_counted() {
    let (addr, metrics) = spawn(|s| s.keep_alive_idle(Duration::from_millis(200)));
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"GET /api/v1/stats HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let (status, head, _) = read_response(&mut stream);
    assert_eq!(status, 200);
    assert_eq!(connection_header(&head), "keep-alive");
    // Sit quiet past the idle deadline: the server closes (EOF, not a
    // response) and counts the reap as housekeeping, not misbehaviour.
    let started = Instant::now();
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "an idle reap sends nothing: {rest:?}");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "reap took {:?}, idle deadline was 200ms",
        started.elapsed()
    );
    assert_eq!(
        metrics.counter_value("crowdweb_server_keepalive_reaped_total", &[]),
        Some(1)
    );
    assert_eq!(
        metrics.counter_value("crowdweb_http_timeouts_total", &[]),
        Some(0),
        "an idle reap is not a read timeout"
    );
}

#[test]
fn half_sent_request_on_a_reused_connection_is_reaped_as_misbehaviour() {
    let (addr, metrics) = spawn(|s| {
        s.read_timeout(Duration::from_millis(300))
            .keep_alive_idle(Duration::from_secs(30))
    });
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"GET /api/v1/stats HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let (status, _, _) = read_response(&mut stream);
    assert_eq!(status, 200);
    // Start a second request and stall halfway through the head. The
    // long idle deadline no longer applies — first bytes arm the read
    // deadline, and the stall is counted as a timeout, answered with
    // nothing.
    stream
        .write_all(b"GET /api/v1/stats HTTP/1.1\r\nX-Stall:")
        .unwrap();
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "a timed-out request gets no bytes");
    assert_eq!(
        metrics.counter_value("crowdweb_http_timeouts_total", &[]),
        Some(1),
        "a half-sent request is client misbehaviour, not housekeeping"
    );
    assert_eq!(
        metrics.counter_value("crowdweb_server_keepalive_reaped_total", &[]),
        Some(0)
    );
}

#[test]
fn http_1_0_and_connection_close_requests_still_close() {
    let (addr, _metrics) = spawn(|s| s);
    // HTTP/1.0 without a Connection header: close by default.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"GET /api/stats HTTP/1.0\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut buf = String::new();
    stream.read_to_string(&mut buf).unwrap();
    assert!(buf.starts_with("HTTP/1.1 200"), "{buf}");
    assert!(buf.contains("Connection: close"), "{buf}");
    // HTTP/1.1 asking to close: honoured.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"GET /api/stats HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut buf = String::new();
    stream.read_to_string(&mut buf).unwrap();
    assert!(buf.starts_with("HTTP/1.1 200"), "{buf}");
    assert!(buf.contains("Connection: close"), "{buf}");
}

#[test]
fn deferred_write_completes_without_waiting_out_an_idle_interval() {
    // Regression for the idle-tick floor: more response bytes than the
    // stalled client's receive window plus the server's send buffer
    // force the server into deferred (would-block) writes; with poll
    // the continuation rides POLLOUT, so total time is bounded by
    // bandwidth, not tick count. The old reactor paid a 500µs park per
    // deferred chunk.
    const BURST: usize = 1024;
    let (addr, metrics) = spawn(|s| s.keep_alive_requests(BURST as u32 + 1));
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // ~6.5KB of frontend page per request, pipelined and unread: more
    // response bytes than the kernel will buffer for a stalled reader
    // (tcp_wmem caps the send side at 4MB on this box), so the server
    // must hit WouldBlock and park the connection on POLLOUT.
    let burst = "GET / HTTP/1.1\r\nHost: t\r\n\r\n".repeat(BURST);
    stream.write_all(burst.as_bytes()).unwrap();
    // While the client refuses to read, the server must be parked on
    // POLLOUT with exactly one deferred write — not spinning, not
    // dropping the connection.
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(
        metrics.gauge_value("crowdweb_server_deferred_writes", &[]),
        Some(1),
        "an unread pipelined burst must leave one connection deferred"
    );
    // Once the client drains, the whole burst completes at loopback
    // bandwidth; a generous bound still catches any per-chunk park.
    let started = Instant::now();
    for i in 0..BURST {
        let (status, head, body) = read_response(&mut stream);
        assert_eq!(status, 200, "response {i}");
        assert_eq!(connection_header(&head), "keep-alive", "response {i}");
        assert!(body.len() > 4 * 1024, "response {i} truncated");
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "draining {BURST} deferred responses took {elapsed:?} — write \
         continuation is waiting on something other than POLLOUT"
    );
    assert_eq!(
        metrics.gauge_value("crowdweb_server_deferred_writes", &[]),
        Some(0),
        "nothing left deferred after the drain"
    );
}

#[test]
fn pipelined_burst_is_answered_completely_and_in_order() {
    // A heavier pipelining check: N requests with distinguishable
    // responses, written in one burst, must come back as N in-order
    // responses on one connection.
    let (addr, _metrics) = spawn(|s| s.keep_alive_requests(64));
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let paths = ["/api/v1/stats", "/api/v1/healthz", "/api/v1/users?limit=1"];
    let mut burst = String::new();
    for round in 0..4 {
        let path = paths[round % paths.len()];
        burst.push_str(&format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"));
    }
    stream.write_all(burst.as_bytes()).unwrap();
    let markers = ["total_checkins", "\"ok\"", "\"items\"", "total_checkins"];
    for (i, marker) in markers.iter().enumerate() {
        let (status, _, body) = read_response(&mut stream);
        assert_eq!(status, 200, "response {i}");
        assert!(
            String::from_utf8_lossy(&body).contains(marker),
            "response {i} out of order: expected {marker}, got {}",
            String::from_utf8_lossy(&body)
        );
    }
}
