//! Path routing with `:param` / `{param}` captures.

use crate::{Method, Request, Response, StatusCode};
use std::collections::HashMap;
use std::sync::Arc;

/// A handler: request + captured path params → response. Handlers are
/// reference-counted so one handler can serve several registered
/// patterns (versioned routes and their legacy aliases).
pub type Handler<S> = Arc<dyn Fn(&S, &Request, &HashMap<String, String>) -> Response + Send + Sync>;

/// A method+pattern routing table over shared state `S`.
///
/// Patterns are `/`-separated; a segment spelled `:name` or `{name}`
/// captures the corresponding request segment under that name. The two
/// spellings are equivalent — `{name}` reads better in multi-parameter
/// REST paths like `/api/v1/cities/{id}/crowd`, `:name` stays for the
/// established tile routes.
///
/// # Examples
///
/// ```
/// use crowdweb_server::{Method, Request, Response, Router};
///
/// let mut router: Router<()> = Router::new();
/// router.get("/api/patterns/:user", |_, _, params| {
///     Response::json(format!("{{\"user\":\"{}\"}}", params["user"]))
/// });
/// let req = Request::read_from(
///     "GET /api/patterns/42 HTTP/1.1\r\n\r\n".as_bytes()).unwrap();
/// let resp = router.route(&(), &req);
/// assert_eq!(resp.status.code(), 200);
/// ```
pub struct Router<S> {
    routes: Vec<Route<S>>,
}

struct Route<S> {
    method: Method,
    /// The route label for metrics: the canonical registration pattern
    /// (e.g. `/api/v1/patterns/:user`), bounded in cardinality where
    /// raw request paths are not. For an alias registration this is the
    /// *canonical* pattern, not the alias — both spellings fold into
    /// one metric series.
    label: String,
    segments: Vec<Segment>,
    handler: Handler<S>,
}

#[derive(Debug, Clone, PartialEq)]
enum Segment {
    Literal(String),
    Param(String),
}

impl<S> Default for Router<S> {
    fn default() -> Self {
        Router::new()
    }
}

impl<S> Router<S> {
    /// Creates an empty router.
    pub fn new() -> Router<S> {
        Router { routes: Vec::new() }
    }

    /// Registers a GET route.
    pub fn get<F>(&mut self, pattern: &str, handler: F) -> &mut Router<S>
    where
        F: Fn(&S, &Request, &HashMap<String, String>) -> Response + Send + Sync + 'static,
    {
        self.add(Method::Get, pattern, pattern, Arc::new(handler));
        self
    }

    /// Registers a POST route.
    pub fn post<F>(&mut self, pattern: &str, handler: F) -> &mut Router<S>
    where
        F: Fn(&S, &Request, &HashMap<String, String>) -> Response + Send + Sync + 'static,
    {
        self.add(Method::Post, pattern, pattern, Arc::new(handler));
        self
    }

    /// Registers a GET route at its canonical `pattern` plus a legacy
    /// `alias` spelling. Both dispatch the *same* handler and report
    /// the canonical pattern as the metrics route label, so aliasing
    /// never doubles the label cardinality.
    pub fn get_aliased<F>(&mut self, pattern: &str, alias: &str, handler: F) -> &mut Router<S>
    where
        F: Fn(&S, &Request, &HashMap<String, String>) -> Response + Send + Sync + 'static,
    {
        let handler: Handler<S> = Arc::new(handler);
        self.add(Method::Get, pattern, pattern, Arc::clone(&handler));
        self.add(Method::Get, alias, pattern, handler);
        self
    }

    /// Registers a POST route at its canonical `pattern` plus a legacy
    /// `alias`, sharing one handler and one metrics label (see
    /// [`Router::get_aliased`]).
    pub fn post_aliased<F>(&mut self, pattern: &str, alias: &str, handler: F) -> &mut Router<S>
    where
        F: Fn(&S, &Request, &HashMap<String, String>) -> Response + Send + Sync + 'static,
    {
        let handler: Handler<S> = Arc::new(handler);
        self.add(Method::Post, pattern, pattern, Arc::clone(&handler));
        self.add(Method::Post, alias, pattern, handler);
        self
    }

    fn add(&mut self, method: Method, pattern: &str, label: &str, handler: Handler<S>) {
        let segments = pattern
            .split('/')
            .filter(|s| !s.is_empty())
            .map(|s| {
                if let Some(name) = s.strip_prefix(':') {
                    Segment::Param(name.to_owned())
                } else if let Some(name) = s
                    .strip_prefix('{')
                    .and_then(|rest| rest.strip_suffix('}'))
                    .filter(|name| !name.is_empty())
                {
                    Segment::Param(name.to_owned())
                } else {
                    Segment::Literal(s.to_owned())
                }
            })
            .collect();
        self.routes.push(Route {
            method,
            label: label.to_owned(),
            segments,
            handler,
        });
    }

    /// Number of registered routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether no routes are registered.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Dispatches a request: 404 for unknown paths, 405 when the path
    /// matches under a different method.
    pub fn route(&self, state: &S, request: &Request) -> Response {
        self.dispatch(state, request).0
    }

    /// [`Self::route`], also returning the matched route's canonical
    /// pattern (`None` on 404/405) — the bounded-cardinality label
    /// metrics key per-route series by. A legacy alias reports the
    /// canonical pattern it aliases, not its own spelling.
    pub fn dispatch(&self, state: &S, request: &Request) -> (Response, Option<&str>) {
        let parts: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
        let mut path_matched = false;
        for route in &self.routes {
            if let Some(params) = match_segments(&route.segments, &parts) {
                path_matched = true;
                if route.method == request.method {
                    return (
                        (route.handler)(state, request, &params),
                        Some(route.label.as_str()),
                    );
                }
            }
        }
        let response = if path_matched {
            Response::error(StatusCode::MethodNotAllowed, "method not allowed")
        } else {
            Response::error(StatusCode::NotFound, "not found")
        };
        (response, None)
    }
}

fn match_segments(pattern: &[Segment], parts: &[&str]) -> Option<HashMap<String, String>> {
    if pattern.len() != parts.len() {
        return None;
    }
    let mut params = HashMap::new();
    for (seg, part) in pattern.iter().zip(parts) {
        match seg {
            Segment::Literal(lit) => {
                if lit != part {
                    return None;
                }
            }
            Segment::Param(name) => {
                params.insert(name.clone(), (*part).to_owned());
            }
        }
    }
    Some(params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(method: &str, path: &str) -> Request {
        Request::read_from(format!("{method} {path} HTTP/1.1\r\n\r\n").as_bytes()).unwrap()
    }

    fn router() -> Router<i32> {
        let mut r = Router::new();
        r.get("/", |_, _, _| Response::html("home".into()));
        r.get("/api/users", |s, _, _| Response::json(format!("{s}")));
        r.get("/api/patterns/:user", |_, _, p| {
            Response::json(p["user"].clone())
        });
        r.post("/api/upload", |_, rq, _| {
            Response::json(format!("{}", rq.body.len()))
        });
        r
    }

    #[test]
    fn exact_and_param_matching() {
        let r = router();
        assert_eq!(r.len(), 4);
        let resp = r.route(&7, &req("GET", "/api/users"));
        assert_eq!(String::from_utf8(resp.into_body_bytes()).unwrap(), "7");
        let resp = r.route(&7, &req("GET", "/api/patterns/42"));
        assert_eq!(String::from_utf8(resp.into_body_bytes()).unwrap(), "42");
    }

    #[test]
    fn root_path_matches() {
        let r = router();
        let resp = r.route(&0, &req("GET", "/"));
        assert_eq!(resp.status, StatusCode::Ok);
    }

    #[test]
    fn unknown_path_is_404() {
        let r = router();
        assert_eq!(
            r.route(&0, &req("GET", "/nope")).status,
            StatusCode::NotFound
        );
        // Wrong arity.
        assert_eq!(
            r.route(&0, &req("GET", "/api/patterns/1/2")).status,
            StatusCode::NotFound
        );
    }

    #[test]
    fn wrong_method_is_405() {
        let r = router();
        assert_eq!(
            r.route(&0, &req("POST", "/api/users")).status,
            StatusCode::MethodNotAllowed
        );
        assert_eq!(
            r.route(&0, &req("GET", "/api/upload")).status,
            StatusCode::MethodNotAllowed
        );
    }

    #[test]
    fn dispatch_reports_the_matched_pattern() {
        let r = router();
        let (resp, pattern) = r.dispatch(&7, &req("GET", "/api/patterns/42"));
        assert_eq!(resp.status, StatusCode::Ok);
        assert_eq!(pattern, Some("/api/patterns/:user"));
        let (_, pattern) = r.dispatch(&0, &req("GET", "/nope"));
        assert_eq!(pattern, None, "404 has no route label");
        let (_, pattern) = r.dispatch(&0, &req("POST", "/api/users"));
        assert_eq!(pattern, None, "405 has no route label");
    }

    #[test]
    fn aliased_routes_share_handler_and_canonical_label() {
        let mut r: Router<i32> = Router::new();
        r.get_aliased(
            "/api/v1/patterns/:user",
            "/api/patterns/:user",
            |s, _, p| Response::json(format!("{s}:{}", p["user"])),
        );
        r.post_aliased("/api/v1/upload", "/api/upload", |_, rq, _| {
            Response::json(format!("{}", rq.body.len()))
        });
        assert_eq!(r.len(), 4, "each alias pair registers two routes");
        // Both spellings dispatch the same handler...
        let (v1, v1_label) = r.dispatch(&7, &req("GET", "/api/v1/patterns/42"));
        let (legacy, legacy_label) = r.dispatch(&7, &req("GET", "/api/patterns/42"));
        assert_eq!(v1.into_body_bytes(), legacy.into_body_bytes());
        // ...and both report the canonical pattern as the metrics
        // label, so the alias adds zero label cardinality.
        assert_eq!(v1_label, Some("/api/v1/patterns/:user"));
        assert_eq!(legacy_label, Some("/api/v1/patterns/:user"));
        let (_, label) = r.dispatch(&0, &req("POST", "/api/upload"));
        assert_eq!(label, Some("/api/v1/upload"));
    }

    #[test]
    fn brace_params_match_and_capture() {
        let mut r: Router<i32> = Router::new();
        r.get("/api/v1/cities/{city}/crowd", |_, _, p| {
            Response::json(p["city"].clone())
        });
        r.get("/api/v1/cities/{city}/tiles/{z}", |_, _, p| {
            Response::json(format!("{}@{}", p["city"], p["z"]))
        });
        let resp = r.route(&0, &req("GET", "/api/v1/cities/nyc/crowd"));
        assert_eq!(String::from_utf8(resp.into_body_bytes()).unwrap(), "nyc");
        let resp = r.route(&0, &req("GET", "/api/v1/cities/tokyo/tiles/12"));
        assert_eq!(
            String::from_utf8(resp.into_body_bytes()).unwrap(),
            "tokyo@12"
        );
        // `{}` and `{city` are not captures; they stay literal segments.
        let mut r: Router<i32> = Router::new();
        r.get("/odd/{}", |_, _, p| Response::json(format!("{}", p.len())));
        assert_eq!(
            r.route(&0, &req("GET", "/odd/x")).status,
            StatusCode::NotFound
        );
        assert_eq!(r.route(&0, &req("GET", "/odd/{}")).status, StatusCode::Ok);
    }

    #[test]
    fn param_routes_report_bounded_cardinality_labels() {
        // The metrics route label must be the registered *pattern*, not
        // the request path: a thousand distinct city ids must fold into
        // one label, or the per-route metric family explodes.
        let mut r: Router<i32> = Router::new();
        r.get("/api/v1/cities/{city}/crowd", |_, _, _| {
            Response::json("{}".into())
        });
        let mut labels = std::collections::HashSet::new();
        for i in 0..1000 {
            let (resp, label) = r.dispatch(&0, &req("GET", &format!("/api/v1/cities/c{i}/crowd")));
            assert_eq!(resp.status, StatusCode::Ok);
            labels.insert(label.expect("matched route has a label").to_owned());
        }
        assert_eq!(
            labels.into_iter().collect::<Vec<_>>(),
            vec!["/api/v1/cities/{city}/crowd".to_owned()],
            "1000 distinct city values must produce exactly one route label"
        );
    }

    #[test]
    fn trailing_slash_is_equivalent() {
        let r = router();
        assert_eq!(
            r.route(&0, &req("GET", "/api/users/")).status,
            StatusCode::Ok
        );
    }
}
