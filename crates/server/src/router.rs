//! Path routing with `:param` captures.

use crate::{Method, Request, Response, StatusCode};
use std::collections::HashMap;

/// A handler: request + captured path params → response.
pub type Handler<S> = Box<dyn Fn(&S, &Request, &HashMap<String, String>) -> Response + Send + Sync>;

/// A method+pattern routing table over shared state `S`.
///
/// Patterns are `/`-separated; a segment starting with `:` captures the
/// corresponding request segment under that name.
///
/// # Examples
///
/// ```
/// use crowdweb_server::{Method, Request, Response, Router};
///
/// let mut router: Router<()> = Router::new();
/// router.get("/api/patterns/:user", |_, _, params| {
///     Response::json(format!("{{\"user\":\"{}\"}}", params["user"]))
/// });
/// let req = Request::read_from(
///     "GET /api/patterns/42 HTTP/1.1\r\n\r\n".as_bytes()).unwrap();
/// let resp = router.route(&(), &req);
/// assert_eq!(resp.status.code(), 200);
/// ```
pub struct Router<S> {
    routes: Vec<Route<S>>,
}

struct Route<S> {
    method: Method,
    /// The registration pattern verbatim (e.g. `/api/patterns/:user`) —
    /// the route label for metrics, bounded in cardinality where raw
    /// request paths are not.
    pattern: String,
    segments: Vec<Segment>,
    handler: Handler<S>,
}

#[derive(Debug, Clone, PartialEq)]
enum Segment {
    Literal(String),
    Param(String),
}

impl<S> Default for Router<S> {
    fn default() -> Self {
        Router::new()
    }
}

impl<S> Router<S> {
    /// Creates an empty router.
    pub fn new() -> Router<S> {
        Router { routes: Vec::new() }
    }

    /// Registers a GET route.
    pub fn get<F>(&mut self, pattern: &str, handler: F) -> &mut Router<S>
    where
        F: Fn(&S, &Request, &HashMap<String, String>) -> Response + Send + Sync + 'static,
    {
        self.add(Method::Get, pattern, handler)
    }

    /// Registers a POST route.
    pub fn post<F>(&mut self, pattern: &str, handler: F) -> &mut Router<S>
    where
        F: Fn(&S, &Request, &HashMap<String, String>) -> Response + Send + Sync + 'static,
    {
        self.add(Method::Post, pattern, handler)
    }

    fn add<F>(&mut self, method: Method, pattern: &str, handler: F) -> &mut Router<S>
    where
        F: Fn(&S, &Request, &HashMap<String, String>) -> Response + Send + Sync + 'static,
    {
        let segments = pattern
            .split('/')
            .filter(|s| !s.is_empty())
            .map(|s| {
                if let Some(name) = s.strip_prefix(':') {
                    Segment::Param(name.to_owned())
                } else {
                    Segment::Literal(s.to_owned())
                }
            })
            .collect();
        self.routes.push(Route {
            method,
            pattern: pattern.to_owned(),
            segments,
            handler: Box::new(handler),
        });
        self
    }

    /// Number of registered routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether no routes are registered.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Dispatches a request: 404 for unknown paths, 405 when the path
    /// matches under a different method.
    pub fn route(&self, state: &S, request: &Request) -> Response {
        self.dispatch(state, request).0
    }

    /// [`Self::route`], also returning the matched route's registration
    /// pattern (`None` on 404/405) — the bounded-cardinality label
    /// metrics key per-route series by.
    pub fn dispatch(&self, state: &S, request: &Request) -> (Response, Option<&str>) {
        let parts: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
        let mut path_matched = false;
        for route in &self.routes {
            if let Some(params) = match_segments(&route.segments, &parts) {
                path_matched = true;
                if route.method == request.method {
                    return (
                        (route.handler)(state, request, &params),
                        Some(route.pattern.as_str()),
                    );
                }
            }
        }
        let response = if path_matched {
            Response::error(StatusCode::MethodNotAllowed, "method not allowed")
        } else {
            Response::error(StatusCode::NotFound, "not found")
        };
        (response, None)
    }
}

fn match_segments(pattern: &[Segment], parts: &[&str]) -> Option<HashMap<String, String>> {
    if pattern.len() != parts.len() {
        return None;
    }
    let mut params = HashMap::new();
    for (seg, part) in pattern.iter().zip(parts) {
        match seg {
            Segment::Literal(lit) => {
                if lit != part {
                    return None;
                }
            }
            Segment::Param(name) => {
                params.insert(name.clone(), (*part).to_owned());
            }
        }
    }
    Some(params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(method: &str, path: &str) -> Request {
        Request::read_from(format!("{method} {path} HTTP/1.1\r\n\r\n").as_bytes()).unwrap()
    }

    fn router() -> Router<i32> {
        let mut r = Router::new();
        r.get("/", |_, _, _| Response::html("home".into()));
        r.get("/api/users", |s, _, _| Response::json(format!("{s}")));
        r.get("/api/patterns/:user", |_, _, p| {
            Response::json(p["user"].clone())
        });
        r.post("/api/upload", |_, rq, _| {
            Response::json(format!("{}", rq.body.len()))
        });
        r
    }

    #[test]
    fn exact_and_param_matching() {
        let r = router();
        assert_eq!(r.len(), 4);
        let resp = r.route(&7, &req("GET", "/api/users"));
        assert_eq!(String::from_utf8(resp.body).unwrap(), "7");
        let resp = r.route(&7, &req("GET", "/api/patterns/42"));
        assert_eq!(String::from_utf8(resp.body).unwrap(), "42");
    }

    #[test]
    fn root_path_matches() {
        let r = router();
        let resp = r.route(&0, &req("GET", "/"));
        assert_eq!(resp.status, StatusCode::Ok);
    }

    #[test]
    fn unknown_path_is_404() {
        let r = router();
        assert_eq!(
            r.route(&0, &req("GET", "/nope")).status,
            StatusCode::NotFound
        );
        // Wrong arity.
        assert_eq!(
            r.route(&0, &req("GET", "/api/patterns/1/2")).status,
            StatusCode::NotFound
        );
    }

    #[test]
    fn wrong_method_is_405() {
        let r = router();
        assert_eq!(
            r.route(&0, &req("POST", "/api/users")).status,
            StatusCode::MethodNotAllowed
        );
        assert_eq!(
            r.route(&0, &req("GET", "/api/upload")).status,
            StatusCode::MethodNotAllowed
        );
    }

    #[test]
    fn dispatch_reports_the_matched_pattern() {
        let r = router();
        let (resp, pattern) = r.dispatch(&7, &req("GET", "/api/patterns/42"));
        assert_eq!(resp.status, StatusCode::Ok);
        assert_eq!(pattern, Some("/api/patterns/:user"));
        let (_, pattern) = r.dispatch(&0, &req("GET", "/nope"));
        assert_eq!(pattern, None, "404 has no route label");
        let (_, pattern) = r.dispatch(&0, &req("POST", "/api/users"));
        assert_eq!(pattern, None, "405 has no route label");
    }

    #[test]
    fn trailing_slash_is_equivalent() {
        let r = router();
        assert_eq!(
            r.route(&0, &req("GET", "/api/users/")).status,
            StatusCode::Ok
        );
    }
}
