//! The embedded single-page front-end.
//!
//! A self-contained HTML/JS page (no external assets, works offline)
//! that drives the JSON/SVG API: a crowd city view with an hour slider
//! and play button (the crowd-movement animation the paper lists as
//! future work), a user list with per-user pattern and network views,
//! and the four evaluation figures.

/// The index page served at `/`.
pub const INDEX_HTML: &str = r#"<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>CrowdWeb — Crowd Mobility in a Smart City</title>
<style>
  body { font-family: system-ui, sans-serif; margin: 0; background: #f7f9fb; color: #16242f; }
  header { background: #0a4b78; color: #fff; padding: 12px 20px; }
  header h1 { margin: 0; font-size: 20px; }
  header p { margin: 2px 0 0; font-size: 12px; opacity: .85; }
  main { display: grid; grid-template-columns: 300px 1fr; gap: 16px; padding: 16px; }
  section { background: #fff; border: 1px solid #dde5ec; border-radius: 8px; padding: 12px; }
  h2 { font-size: 14px; margin: 0 0 8px; color: #0a4b78; }
  #users { max-height: 320px; overflow-y: auto; font-size: 13px; }
  #users div { padding: 3px 6px; cursor: pointer; border-radius: 4px; }
  #users div:hover { background: #e8f0f7; }
  #users div.sel { background: #0a4b78; color: #fff; }
  #crowd-controls { display: flex; align-items: center; gap: 10px; margin-bottom: 8px; }
  #map, #network, #figure { text-align: center; }
  #map svg, #network svg, #figure svg { max-width: 100%; height: auto; }
  #patterns { font-size: 12px; max-height: 220px; overflow-y: auto; }
  #patterns li { margin-bottom: 2px; }
  button, select { font: inherit; padding: 4px 10px; }
  .stats { font-size: 12px; color: #44576a; }
</style>
</head>
<body>
<header>
  <h1>CrowdWeb</h1>
  <p>Visualizing individual and crowd mobility patterns in a smart city</p>
</header>
<main>
  <div>
    <section>
      <h2>Dataset</h2>
      <div id="stats" class="stats">loading…</div>
    </section>
    <section style="margin-top:12px">
      <h2>Users</h2>
      <div id="users">loading…</div>
    </section>
    <section style="margin-top:12px">
      <h2>Patterns of selected user</h2>
      <ul id="patterns"><li>(select a user)</li></ul>
    </section>
  </div>
  <div>
    <section>
      <h2>Crowd in the smart city</h2>
      <div id="crowd-controls">
        <button id="play">▶ animate</button>
        <input type="range" id="hour" min="0" max="23" value="9">
        <span id="hour-label">9–10 am</span>
      </div>
      <div id="map">loading…</div>
    </section>
    <section style="margin-top:12px">
      <h2>Place network of selected user</h2>
      <div id="network">(select a user)</div>
    </section>
    <section style="margin-top:12px">
      <h2>Crowd flows</h2>
      <div>
        from <input type="number" id="flow-from" min="0" max="23" value="7" style="width:52px">
        to <input type="number" id="flow-to" min="0" max="23" value="9" style="width:52px">
        <button id="flow-go">show</button>
      </div>
      <div id="flowmap"></div>
    </section>
    <section style="margin-top:12px">
      <h2>City rhythm &amp; crowd timeline</h2>
      <div id="rhythm"></div>
      <div id="ctimeline" style="margin-top:8px"></div>
      <div id="hotspots" class="stats" style="margin-top:8px"></div>
    </section>
    <section style="margin-top:12px">
      <h2>Evaluation figures</h2>
      <select id="fig">
        <option value="fig5">Fig 5 — sequences vs support</option>
        <option value="fig6">Fig 6 — sequence count distribution</option>
        <option value="fig7">Fig 7 — avg length vs support</option>
        <option value="fig8">Fig 8 — length distribution</option>
      </select>
      <div id="figure"></div>
    </section>
  </div>
</main>
<script>
const $ = (id) => document.getElementById(id);
async function jget(url) { const r = await fetch(url); if (!r.ok) throw new Error(url); return r.json(); }
async function sget(url, el) { const r = await fetch(url); el.innerHTML = r.ok ? await r.text() : '(error)'; }

async function loadStats() {
  const s = await jget('/api/v1/stats');
  $('stats').innerHTML =
    `check-ins: <b>${s.total_checkins}</b><br>users: <b>${s.user_count}</b> ` +
    `(filtered: <b>${s.filtered_users}</b>)<br>venues: <b>${s.venue_count}</b><br>` +
    `mean/median records: <b>${s.mean_records_per_user.toFixed(1)} / ${s.median_records_per_user.toFixed(0)}</b><br>` +
    `study window: <b>${s.study_window}</b><br>min_support: <b>${s.min_support}</b>`;
}
async function loadUsers() {
  const page = await jget('/api/v1/users?limit=1000');
  $('users').innerHTML = '';
  page.items.forEach(u => {
    const div = document.createElement('div');
    div.textContent = `user ${u.user} — ${u.active_days} days, ${u.patterns} patterns`;
    div.onclick = () => selectUser(u.user, div);
    $('users').appendChild(div);
  });
}
async function selectUser(id, el) {
  document.querySelectorAll('#users div').forEach(d => d.classList.remove('sel'));
  el.classList.add('sel');
  const p = await jget('/api/v1/patterns/' + id);
  $('patterns').innerHTML = p.patterns.length ? '' : '<li>(no patterns)</li>';
  p.patterns.forEach(pat => {
    const li = document.createElement('li');
    li.textContent = `⟨${pat.items.join(' → ')}⟩ ×${pat.support}`;
    $('patterns').appendChild(li);
  });
  await sget('/api/v1/network/' + id, $('network'));
}
function windowLabel(h) {
  const am = (x) => x === 0 ? '12 am' : x < 12 ? x + ' am' : x === 12 ? '12 pm' : (x - 12) + ' pm';
  return am(h) + '–' + am((h + 1) % 24);
}
async function loadCrowd() {
  const h = +$('hour').value;
  $('hour-label').textContent = windowLabel(h);
  await sget('/api/v1/crowd/map?hour=' + h, $('map'));
}
let timer = null;
$('play').onclick = () => {
  if (timer) { clearInterval(timer); timer = null; $('play').textContent = '▶ animate'; return; }
  $('play').textContent = '⏸ stop';
  timer = setInterval(() => {
    $('hour').value = (+$('hour').value + 1) % 24;
    loadCrowd();
  }, 900);
};
$('hour').oninput = loadCrowd;
$('fig').onchange = () => sget('/api/v1/figures/' + $('fig').value + '/svg', $('figure'));

async function loadFlows() {
  const f = +$('flow-from').value, t = +$('flow-to').value;
  await sget(`/api/v1/crowd/flows/map?from=${f}&to=${t}`, $('flowmap'));
}
$('flow-go').onclick = loadFlows;
async function loadHotspots() {
  const hs = await jget('/api/v1/hotspots');
  $('hotspots').innerHTML = hs.length
    ? 'hotspots: ' + hs.slice(0, 8).map(h => `${h.window} cell#${h.cell} (${h.users}, ${h.phase})`).join(' · ')
    : 'no hotspots detected';
}

loadStats(); loadUsers(); loadCrowd(); loadFlows(); loadHotspots();
sget('/api/v1/heatmap', $('rhythm'));
sget('/api/v1/crowd/timeline', $('ctimeline'));
sget('/api/v1/figures/fig5/svg', $('figure'));
</script>
</body>
</html>
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_is_self_contained() {
        assert!(INDEX_HTML.contains("<!DOCTYPE html>"));
        // No external scripts, styles, or fonts.
        assert!(!INDEX_HTML.contains("http://"));
        assert!(!INDEX_HTML.contains("https://"));
        assert!(!INDEX_HTML.contains("src=\""));
    }

    #[test]
    fn page_references_every_api_family() {
        for api in [
            "/api/v1/stats",
            "/api/v1/users",
            "/api/v1/patterns/",
            "/api/v1/network/",
            "/api/v1/crowd/map",
            "/api/v1/crowd/flows/map",
            "/api/v1/crowd/timeline",
            "/api/v1/heatmap",
            "/api/v1/hotspots",
            "/api/v1/figures/",
        ] {
            assert!(INDEX_HTML.contains(api), "missing {api}");
        }
    }

    #[test]
    fn page_has_animation_controls() {
        // The paper's future-work crowd animation.
        assert!(INDEX_HTML.contains("animate"));
        assert!(INDEX_HTML.contains("setInterval"));
    }
}
