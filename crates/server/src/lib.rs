//! The CrowdWeb web platform: an embedded HTTP server exposing the
//! crowd and pattern views over a JSON/SVG API with a self-contained
//! single-page front-end.
//!
//! The original demo is a browser app backed by a web service; this
//! crate provides the same surface with zero external web dependencies:
//!
//! - [`http`] — a minimal HTTP/1.1 request parser and response writer
//!   over `std::net`.
//! - [`router`] — path/method routing with `:param` captures.
//! - [`state`] — the live application state: an ingest engine
//!   publishing immutable epoch snapshots (dataset, patterns, crowd
//!   model) plus a capped ring of visitor uploads (the demo's "share
//!   your check-in history" feature).
//! - [`api`] — the JSON/SVG endpoint handlers.
//! - [`frontend`] — the embedded HTML/JS page.
//! - [`reactor`] — the evented connection loop: one event thread
//!   blocked in `poll(2)` over nonblocking sockets (HTTP/1.1
//!   keep-alive, pipelined responses), with handlers executing on a
//!   bounded worker pool.
//! - [`sys`] — the dependency-free readiness shim: `poll(2)` FFI, the
//!   self-pipe waker, and socket knobs. The only module with `unsafe`.
//! - [`server`] — the front door: binding, tunables, lifecycle.
//!
//! # Examples
//!
//! ```no_run
//! use crowdweb_server::{AppState, Server};
//! use crowdweb_synth::SynthConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dataset = SynthConfig::small(1).generate()?;
//! let state = AppState::build(dataset, 20)?;
//! let server = Server::bind("127.0.0.1:0", state)?;
//! println!("CrowdWeb listening on http://{}", server.local_addr());
//! server.run(); // blocks
//! # Ok(())
//! # }
//! ```

// `deny`, not `forbid`: the `sys` module carries the crate's only
// `unsafe` (three FFI call sites behind scoped `#[allow]`s); everything
// else stays unsafe-free and the lint catches regressions.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod frontend;
pub mod http;
pub mod reactor;
pub mod router;
pub mod server;
pub mod state;
pub mod sys;

pub use http::{BodyStream, Method, Request, Response, ResponseBody, StatusCode};
pub use router::Router;
pub use server::Server;
pub use state::{AppState, CityState};
