//! The server front door: binding, tunables, lifecycle.
//!
//! Connection handling itself lives in [`crate::reactor`]: a single
//! event thread multiplexes every connection over nonblocking sockets
//! and hands complete requests to a bounded worker pool, so slow or
//! idle clients cannot pin threads (see `DESIGN.md` §6).

use crate::reactor::ReactorConfig;
use crate::{api, reactor, AppState, Router};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The CrowdWeb HTTP server: a nonblocking listener driven by an
/// evented reactor loop, with routing and handlers executing on a
/// bounded worker pool.
///
/// # Examples
///
/// See the [crate-level example](crate).
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    router: Arc<Router<AppState>>,
    shutdown: Arc<AtomicBool>,
    config: ReactorConfig,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.local_addr())
            .field("state", &self.state)
            .field("config", &self.config)
            .finish()
    }
}

impl Server {
    /// Binds the server to an address (use port 0 for an ephemeral
    /// port).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind<A: ToSocketAddrs>(addr: A, state: AppState) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            state: Arc::new(state),
            router: Arc::new(api::build_router()),
            shutdown: Arc::new(AtomicBool::new(false)),
            config: ReactorConfig::default(),
        })
    }

    /// Sets the read deadline (default 30 s): how long a connection may
    /// take to deliver a complete request before being dropped.
    pub fn read_timeout(mut self, timeout: Duration) -> Server {
        self.config.read_timeout = timeout;
        self
    }

    /// Sets the write deadline (default 30 s): how long a connection
    /// may take to drain its response before being dropped.
    pub fn write_timeout(mut self, timeout: Duration) -> Server {
        self.config.write_timeout = timeout;
        self
    }

    /// Caps concurrently open connections (default 1024). Sockets
    /// accepted beyond the cap are answered with an immediate `503`.
    pub fn max_connections(mut self, cap: usize) -> Server {
        self.config.max_connections = cap.max(1);
        self
    }

    /// Sets the worker-thread count executing handlers (default 8).
    pub fn workers(mut self, threads: usize) -> Server {
        self.config.workers = threads.max(1);
        self
    }

    /// Sets the keep-alive request budget (default 100, minimum 1):
    /// how many requests one connection may carry before the server
    /// closes it. The final response says `Connection: close`.
    pub fn keep_alive_requests(mut self, budget: u32) -> Server {
        self.config.keep_alive_requests = budget.max(1);
        self
    }

    /// Sets the keep-alive idle deadline (default 5 s): how long a
    /// connection may sit quiet between requests before being reaped.
    pub fn keep_alive_idle(mut self, idle: Duration) -> Server {
        self.config.keep_alive_idle = idle;
        self
    }

    /// Sets the per-connection in-flight budget for streamed (chunked)
    /// response bodies, in encoded bytes (default 64 KiB, minimum 1).
    /// A stream's producer is polled only while the connection holds
    /// fewer buffered bytes than this, bounding reactor memory under
    /// slow readers.
    pub fn stream_budget(mut self, bytes: usize) -> Server {
        self.config.stream_budget = bytes.max(1);
        self
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// A handle that can stop a running server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
            addr: self.local_addr(),
        }
    }

    /// Runs the event loop on the current thread until
    /// [`ShutdownHandle::shutdown`] is called.
    pub fn run(self) {
        reactor::run(
            self.listener,
            self.state,
            self.router,
            self.shutdown,
            self.config,
        );
    }

    /// Spawns the server on a background thread, returning its address
    /// and shutdown handle. Convenient for tests and examples.
    pub fn spawn(self) -> (SocketAddr, ShutdownHandle, JoinHandle<()>) {
        let addr = self.local_addr();
        let handle = self.shutdown_handle();
        let join = std::thread::spawn(move || self.run());
        (addr, handle, join)
    }
}

/// Stops a running [`Server`].
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Signals shutdown and pokes the listener so the event loop
    /// observes the flag promptly.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
        // Wake an otherwise-idle loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_synth::SynthConfig;
    use std::io::{Read, Write};
    use std::time::Instant;

    fn spawn_server() -> (SocketAddr, ShutdownHandle, JoinHandle<()>) {
        let dataset = SynthConfig::small(61).generate().unwrap();
        let state = AppState::build(dataset, 20).unwrap();
        Server::bind("127.0.0.1:0", state).unwrap().spawn()
    }

    fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        // This helper frames by EOF, so it must opt out of keep-alive.
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        let code: u16 = buf
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = buf.split("\r\n\r\n").nth(1).unwrap_or("").to_owned();
        (code, body)
    }

    #[test]
    fn serves_requests_end_to_end() {
        let (addr, handle, join) = spawn_server();
        let (code, body) = http_get(addr, "/api/stats");
        assert_eq!(code, 200);
        assert!(body.contains("total_checkins"));
        let (code, body) = http_get(addr, "/");
        assert_eq!(code, 200);
        assert!(body.contains("CrowdWeb"));
        let (code, _) = http_get(addr, "/nope");
        assert_eq!(code, 404);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn handles_concurrent_clients() {
        let (addr, handle, join) = spawn_server();
        let mut threads = Vec::new();
        for _ in 0..12 {
            threads.push(std::thread::spawn(move || http_get(addr, "/api/users").0));
        }
        for t in threads {
            assert_eq!(t.join().unwrap(), 200);
        }
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn idle_connections_do_not_starve_the_pool() {
        // Slowloris regression: open more silent connections than there
        // are workers, then confirm a real client is still served once
        // the short read timeout reaps them.
        let dataset = SynthConfig::small(62).users(10).generate().unwrap();
        let state = AppState::build(dataset, 10).unwrap();
        let (addr, handle, join) = Server::bind("127.0.0.1:0", state)
            .unwrap()
            .read_timeout(Duration::from_millis(300))
            .spawn();
        let idlers: Vec<TcpStream> = (0..12).map(|_| TcpStream::connect(addr).unwrap()).collect();
        // Give the pool time to pick the idlers up and time them out.
        std::thread::sleep(Duration::from_millis(800));
        let (code, _) = http_get(addr, "/api/stats");
        assert_eq!(code, 200, "server starved by idle connections");
        drop(idlers);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn slow_drip_connections_do_not_block_fast_clients() {
        // The evented-loop guarantee the old thread-per-connection
        // model could not give: dozens of connections dripping partial
        // request heads — all still inside their read deadline, so none
        // get reaped — must not delay a well-behaved client at all.
        let dataset = SynthConfig::small(65).users(10).generate().unwrap();
        let state = AppState::build(dataset, 10).unwrap();
        let metrics = state.metrics().clone();
        let (addr, handle, join) = Server::bind("127.0.0.1:0", state)
            .unwrap()
            .read_timeout(Duration::from_secs(30))
            .spawn();
        let drips: Vec<TcpStream> = (0..72)
            .map(|_| {
                let mut s = TcpStream::connect(addr).unwrap();
                write!(s, "GET /api/stats HTTP/1.1\r\nX-Drip: 1\r\n").unwrap();
                s
            })
            .collect();
        std::thread::sleep(Duration::from_millis(300));
        let open = metrics
            .gauge_value("crowdweb_server_open_connections", &[])
            .unwrap_or(0);
        assert!(
            open >= 64,
            "expected ≥64 drip connections held open, gauge says {open}"
        );
        let started = Instant::now();
        let (code, _) = http_get(addr, "/api/stats");
        assert_eq!(
            code, 200,
            "fast client starved behind slow-drip connections"
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "fast client waited {:?} behind {} slow-drip connections",
            started.elapsed(),
            drips.len()
        );
        drop(drips);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn connection_cap_rejects_with_503_and_recovers() {
        let dataset = SynthConfig::small(66).users(10).generate().unwrap();
        let state = AppState::build(dataset, 10).unwrap();
        let metrics = state.metrics().clone();
        let (addr, handle, join) = Server::bind("127.0.0.1:0", state)
            .unwrap()
            .max_connections(4)
            .spawn();
        let holders: Vec<TcpStream> = (0..4).map(|_| TcpStream::connect(addr).unwrap()).collect();
        std::thread::sleep(Duration::from_millis(300));
        assert_eq!(
            metrics.gauge_value("crowdweb_server_open_connections", &[]),
            Some(4)
        );
        // The connection over the cap is turned away with a clean 503,
        // not a hang or a reset. The refusal is written unprompted (the
        // request is never read), so read without sending anything:
        // request bytes arriving after the post-refusal close would
        // turn it into an RST that can discard the buffered 503.
        let mut refused = TcpStream::connect(addr).unwrap();
        let mut buf = String::new();
        refused.read_to_string(&mut buf).unwrap();
        let code: u16 = buf
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = buf.split("\r\n\r\n").nth(1).unwrap_or("").to_owned();
        assert_eq!(code, 503, "over-cap connection must get 503");
        assert!(body.contains("connection limit"), "{body}");
        assert_eq!(
            metrics.counter_value(
                "crowdweb_server_rejected_total",
                &[("reason", "max_connections")]
            ),
            Some(1)
        );
        // Capacity comes back once the holders leave.
        drop(holders);
        std::thread::sleep(Duration::from_millis(300));
        let (code, _) = http_get(addr, "/api/stats");
        assert_eq!(code, 200, "server must recover after holders disconnect");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn truncated_body_gets_400_not_silent_drop() {
        // Regression: read_exact on a body shorter than Content-Length
        // fails with UnexpectedEof, which the old error mapping treated
        // as "connection dropped" and answered with nothing at all.
        let (addr, handle, join) = spawn_server();
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST /api/upload HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort"
        )
        .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(
            buf.starts_with("HTTP/1.1 400"),
            "torn body must get a 400, got: {buf:?}"
        );
        assert!(buf.contains("content-length"), "{buf}");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn stalled_client_is_dropped_and_counted_not_answered() {
        let dataset = SynthConfig::small(63).users(10).generate().unwrap();
        let state = AppState::build(dataset, 10).unwrap();
        let metrics = state.metrics().clone();
        let (addr, handle, join) = Server::bind("127.0.0.1:0", state)
            .unwrap()
            .read_timeout(Duration::from_millis(200))
            .spawn();
        // A client that starts a request head and then stalls.
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /api/stats HTTP/1.1\r\n").unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // The server must close without writing anything — a timeout is
        // not a request to answer.
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).unwrap();
        assert!(buf.is_empty(), "stalled client got bytes: {buf:?}");
        assert_eq!(
            metrics.counter_value("crowdweb_http_timeouts_total", &[]),
            Some(1),
            "timeout must be counted as client misbehaviour"
        );
        // And the server is still healthy afterwards.
        let (code, _) = http_get(addr, "/api/stats");
        assert_eq!(code, 200);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn access_metrics_record_requests_by_route_and_status() {
        let dataset = SynthConfig::small(64).users(10).generate().unwrap();
        let state = AppState::build(dataset, 10).unwrap();
        let metrics = state.metrics().clone();
        let (addr, handle, join) = Server::bind("127.0.0.1:0", state).unwrap().spawn();
        // One request via the canonical route, one via its legacy
        // alias: both must fold into the canonical /api/v1 label, so
        // aliasing never doubles the route-label cardinality.
        let (code, _) = http_get(addr, "/api/v1/stats");
        assert_eq!(code, 200);
        let (code, _) = http_get(addr, "/api/stats");
        assert_eq!(code, 200);
        let (code, _) = http_get(addr, "/definitely/not/a/route");
        assert_eq!(code, 404);
        assert_eq!(
            metrics.counter_value(
                "crowdweb_http_requests_total",
                &[
                    ("method", "GET"),
                    ("route", "/api/v1/stats"),
                    ("status", "200")
                ]
            ),
            Some(2),
            "canonical and alias requests share one route label"
        );
        assert_eq!(
            metrics.counter_value(
                "crowdweb_http_requests_total",
                &[
                    ("method", "GET"),
                    ("route", "/api/stats"),
                    ("status", "200")
                ]
            ),
            None,
            "the alias spelling must not mint its own label"
        );
        assert_eq!(
            metrics.counter_value(
                "crowdweb_http_requests_total",
                &[("method", "GET"), ("route", "unmatched"), ("status", "404")]
            ),
            Some(1),
            "404s must be counted even with no matching route"
        );
        let (count, _) = metrics
            .histogram_stats(
                "crowdweb_http_request_seconds",
                &[("route", "/api/v1/stats")],
            )
            .expect("latency histogram registered");
        assert_eq!(count, 2);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn reactor_loop_health_metrics_are_published() {
        let dataset = SynthConfig::small(67).users(10).generate().unwrap();
        let state = AppState::build(dataset, 10).unwrap();
        let metrics = state.metrics().clone();
        let (addr, handle, join) = Server::bind("127.0.0.1:0", state).unwrap().spawn();
        let (code, _) = http_get(addr, "/api/stats");
        assert_eq!(code, 200);
        // The loop-health gauges and tick histogram exist from startup.
        assert!(metrics
            .gauge_value("crowdweb_server_open_connections", &[])
            .is_some());
        assert!(metrics
            .gauge_value("crowdweb_server_deferred_writes", &[])
            .is_some());
        let (ticks, _) = metrics
            .histogram_stats("crowdweb_server_reactor_tick_seconds", &[])
            .expect("tick histogram registered");
        assert!(
            ticks >= 1,
            "serving a request must observe at least one tick"
        );
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn malformed_request_gets_400() {
        let (addr, handle, join) = spawn_server();
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "BREW /coffee HTCPCP/1.0\r\n\r\n").unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 400"), "{buf}");
        handle.shutdown();
        join.join().unwrap();
    }
}
