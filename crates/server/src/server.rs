//! The accept loop and worker pool.

use crate::{api, AppState, Request, Response, Router, StatusCode};
use crossbeam::channel::bounded;
use crowdweb_obs::{MetricsRegistry, DEFAULT_LATENCY_BUCKETS};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Number of worker threads handling connections.
const WORKERS: usize = 8;

/// Default per-connection socket read timeout. Without one, an idle
/// client pins a worker thread forever (slowloris).
const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// The CrowdWeb HTTP server: a listener plus a fixed worker pool fed
/// over a crossbeam channel.
///
/// # Examples
///
/// See the [crate-level example](crate).
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    router: Arc<Router<AppState>>,
    shutdown: Arc<AtomicBool>,
    read_timeout: Duration,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.local_addr())
            .field("state", &self.state)
            .finish()
    }
}

impl Server {
    /// Binds the server to an address (use port 0 for an ephemeral
    /// port).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind<A: ToSocketAddrs>(addr: A, state: AppState) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            state: Arc::new(state),
            router: Arc::new(api::build_router()),
            shutdown: Arc::new(AtomicBool::new(false)),
            read_timeout: DEFAULT_READ_TIMEOUT,
        })
    }

    /// Sets the per-connection read timeout (default 30 s). Idle
    /// connections are dropped after this long.
    pub fn read_timeout(mut self, timeout: Duration) -> Server {
        self.read_timeout = timeout;
        self
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// A handle that can stop a running server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
            addr: self.local_addr(),
        }
    }

    /// Runs the accept loop on the current thread until
    /// [`ShutdownHandle::shutdown`] is called.
    pub fn run(self) {
        let (tx, rx) = bounded::<TcpStream>(WORKERS * 4);
        let mut workers: Vec<JoinHandle<()>> = Vec::with_capacity(WORKERS);
        for _ in 0..WORKERS {
            let rx = rx.clone();
            let state = Arc::clone(&self.state);
            let router = Arc::clone(&self.router);
            let read_timeout = self.read_timeout;
            workers.push(std::thread::spawn(move || {
                while let Ok(stream) = rx.recv() {
                    // A panicking handler must not take the worker down
                    // with it: catch, drop the connection, keep serving.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        handle_connection(stream, &state, &router, read_timeout);
                    }));
                    if result.is_err() {
                        eprintln!("crowdweb: connection handler panicked; worker recovered");
                    }
                }
            }));
        }
        drop(rx);

        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(s) => {
                    let _ = tx.send(s);
                }
                Err(_) => continue,
            }
        }
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
    }

    /// Spawns the server on a background thread, returning its address
    /// and shutdown handle. Convenient for tests and examples.
    pub fn spawn(self) -> (SocketAddr, ShutdownHandle, JoinHandle<()>) {
        let addr = self.local_addr();
        let handle = self.shutdown_handle();
        let join = std::thread::spawn(move || self.run());
        (addr, handle, join)
    }
}

/// Stops a running [`Server`].
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Signals shutdown and pokes the listener so the accept loop
    /// observes the flag.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

fn handle_connection(
    stream: TcpStream,
    state: &AppState,
    router: &Router<AppState>,
    read_timeout: Duration,
) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let metrics = state.metrics();
    let started = Instant::now();
    let response = match Request::read_from(&stream) {
        Ok(request) => {
            let (response, route) = router.dispatch(state, &request);
            record_access(
                metrics,
                &request.method.to_string(),
                route.unwrap_or("unmatched"),
                &response,
                request.body.len(),
                started,
            );
            response
        }
        // A stalled client hitting the socket read timeout is client
        // misbehaviour, not a server fault: count it and drop the
        // connection (nothing useful can be written mid-read).
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            metrics
                .counter(
                    "crowdweb_http_timeouts_total",
                    "Connections dropped at the socket read timeout.",
                    &[],
                )
                .inc();
            return;
        }
        // Malformed head (InvalidData) or a body shorter than its
        // Content-Length (read_exact → UnexpectedEof): the client sent
        // a broken request and deserves a 400, not a silent drop.
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
            ) =>
        {
            let message = if e.kind() == io::ErrorKind::UnexpectedEof {
                "request body shorter than content-length".to_owned()
            } else {
                e.to_string()
            };
            let response = Response::error(StatusCode::BadRequest, &message);
            record_access(metrics, "invalid", "unparsed", &response, 0, started);
            response
        }
        Err(_) => return, // connection dropped; nothing to write
    };
    let _ = response.write_to(&stream);
}

/// Records one access into the route-keyed request metrics. Routes are
/// labelled by registration pattern (bounded cardinality), never by raw
/// request path.
fn record_access(
    metrics: &MetricsRegistry,
    method: &str,
    route: &str,
    response: &Response,
    request_body_bytes: usize,
    started: Instant,
) {
    let status = response.status.code().to_string();
    metrics
        .counter(
            "crowdweb_http_requests_total",
            "HTTP requests served, by method, route pattern, and status.",
            &[("method", method), ("route", route), ("status", &status)],
        )
        .inc();
    metrics
        .histogram(
            "crowdweb_http_request_seconds",
            "Wall-clock seconds from first read to response ready, by route pattern.",
            &[("route", route)],
            &DEFAULT_LATENCY_BUCKETS,
        )
        .observe(started.elapsed().as_secs_f64());
    metrics
        .counter(
            "crowdweb_http_request_body_bytes_total",
            "Request body bytes received, by route pattern.",
            &[("route", route)],
        )
        .add(request_body_bytes as u64);
    metrics
        .counter(
            "crowdweb_http_response_body_bytes_total",
            "Response body bytes produced, by route pattern.",
            &[("route", route)],
        )
        .add(response.body.len() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_synth::SynthConfig;
    use std::io::{Read, Write};

    fn spawn_server() -> (SocketAddr, ShutdownHandle, JoinHandle<()>) {
        let dataset = SynthConfig::small(61).generate().unwrap();
        let state = AppState::build(dataset, 20).unwrap();
        Server::bind("127.0.0.1:0", state).unwrap().spawn()
    }

    fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        let code: u16 = buf
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = buf.split("\r\n\r\n").nth(1).unwrap_or("").to_owned();
        (code, body)
    }

    #[test]
    fn serves_requests_end_to_end() {
        let (addr, handle, join) = spawn_server();
        let (code, body) = http_get(addr, "/api/stats");
        assert_eq!(code, 200);
        assert!(body.contains("total_checkins"));
        let (code, body) = http_get(addr, "/");
        assert_eq!(code, 200);
        assert!(body.contains("CrowdWeb"));
        let (code, _) = http_get(addr, "/nope");
        assert_eq!(code, 404);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn handles_concurrent_clients() {
        let (addr, handle, join) = spawn_server();
        let mut threads = Vec::new();
        for _ in 0..12 {
            threads.push(std::thread::spawn(move || http_get(addr, "/api/users").0));
        }
        for t in threads {
            assert_eq!(t.join().unwrap(), 200);
        }
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn idle_connections_do_not_starve_the_pool() {
        // Slowloris regression: open more silent connections than there
        // are workers, then confirm a real client is still served once
        // the short read timeout reaps them.
        let dataset = SynthConfig::small(62).users(10).generate().unwrap();
        let state = AppState::build(dataset, 10).unwrap();
        let (addr, handle, join) = Server::bind("127.0.0.1:0", state)
            .unwrap()
            .read_timeout(Duration::from_millis(300))
            .spawn();
        let idlers: Vec<TcpStream> = (0..12).map(|_| TcpStream::connect(addr).unwrap()).collect();
        // Give the pool time to pick the idlers up and time them out.
        std::thread::sleep(Duration::from_millis(800));
        let (code, _) = http_get(addr, "/api/stats");
        assert_eq!(code, 200, "server starved by idle connections");
        drop(idlers);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn truncated_body_gets_400_not_silent_drop() {
        // Regression: read_exact on a body shorter than Content-Length
        // fails with UnexpectedEof, which the old error mapping treated
        // as "connection dropped" and answered with nothing at all.
        let (addr, handle, join) = spawn_server();
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST /api/upload HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort"
        )
        .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(
            buf.starts_with("HTTP/1.1 400"),
            "torn body must get a 400, got: {buf:?}"
        );
        assert!(buf.contains("content-length"), "{buf}");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn stalled_client_is_dropped_and_counted_not_answered() {
        let dataset = SynthConfig::small(63).users(10).generate().unwrap();
        let state = AppState::build(dataset, 10).unwrap();
        let metrics = state.metrics().clone();
        let (addr, handle, join) = Server::bind("127.0.0.1:0", state)
            .unwrap()
            .read_timeout(Duration::from_millis(200))
            .spawn();
        // A client that starts a request head and then stalls.
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /api/stats HTTP/1.1\r\n").unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // The server must close without writing anything — a timeout is
        // not a request to answer.
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).unwrap();
        assert!(buf.is_empty(), "stalled client got bytes: {buf:?}");
        assert_eq!(
            metrics.counter_value("crowdweb_http_timeouts_total", &[]),
            Some(1),
            "timeout must be counted as client misbehaviour"
        );
        // And the server is still healthy afterwards.
        let (code, _) = http_get(addr, "/api/stats");
        assert_eq!(code, 200);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn access_metrics_record_requests_by_route_and_status() {
        let dataset = SynthConfig::small(64).users(10).generate().unwrap();
        let state = AppState::build(dataset, 10).unwrap();
        let metrics = state.metrics().clone();
        let (addr, handle, join) = Server::bind("127.0.0.1:0", state).unwrap().spawn();
        let (code, _) = http_get(addr, "/api/stats");
        assert_eq!(code, 200);
        let (code, _) = http_get(addr, "/definitely/not/a/route");
        assert_eq!(code, 404);
        assert_eq!(
            metrics.counter_value(
                "crowdweb_http_requests_total",
                &[
                    ("method", "GET"),
                    ("route", "/api/stats"),
                    ("status", "200")
                ]
            ),
            Some(1)
        );
        assert_eq!(
            metrics.counter_value(
                "crowdweb_http_requests_total",
                &[("method", "GET"), ("route", "unmatched"), ("status", "404")]
            ),
            Some(1),
            "404s must be counted even with no matching route"
        );
        let (count, _) = metrics
            .histogram_stats("crowdweb_http_request_seconds", &[("route", "/api/stats")])
            .expect("latency histogram registered");
        assert_eq!(count, 1);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn malformed_request_gets_400() {
        let (addr, handle, join) = spawn_server();
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "BREW /coffee HTCPCP/1.0\r\n\r\n").unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 400"), "{buf}");
        handle.shutdown();
        join.join().unwrap();
    }
}
