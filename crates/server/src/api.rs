//! The JSON/SVG API handlers.
//!
//! # Versioning and alias policy
//!
//! The canonical API surface lives under `/api/v1/...`. Every endpoint
//! is *also* reachable at its historical `/api/...` spelling: the alias
//! is registered against the **same handler** (see
//! [`Router::get_aliased`]), so the two spellings can never drift, and
//! both report the canonical `/api/v1/...` pattern as their metrics
//! route label — aliasing adds zero label cardinality. New clients
//! should use `/api/v1`; the unversioned aliases are kept for existing
//! dashboards and scripts and carry no deprecation deadline. A future
//! breaking revision would mount `/api/v2` alongside `/api/v1` and
//! leave both the v1 routes and the legacy aliases untouched.
//!
//! # Multi-city tenancy
//!
//! The server hosts any number of cities, each an isolated platform
//! (dataset, ingest engine, WAL root, epoch history, upload ring). A
//! data endpoint therefore has *three* spellings, all registered by
//! [`city_get`]/[`city_post`] against one handler fn:
//!
//! - `/api/v1/cities/{city}/...` — the explicit tenant route;
//! - `/api/v1/...` — the same endpoint on the **default city**;
//! - `/api/...` — the legacy alias of the default-city route.
//!
//! Unregistered city ids answer `404 {"error":{"code":"unknown-city"}}`.
//! Served city requests increment
//! `crowdweb_http_requests_by_city_total{city=...}`; only registered
//! ids become labels, so the cardinality is bounded by the registry,
//! and the route label is the matched `{city}` *pattern*, never the
//! path value. Metrics (`/api/v1/metrics`) and the front-end (`/`) are
//! platform-global and have no per-city spelling. `GET /api/v1/cities`
//! lists the registry.
//!
//! # Error envelope
//!
//! Every error response — handler errors, router 404/405, reactor
//! 400/413/503 — carries one uniform JSON envelope:
//!
//! ```json
//! {"error": {"code": "<kebab-slug>", "message": "...", "status": 404}}
//! ```
//!
//! `code` is machine-readable and stable (`"unknown-user"`,
//! `"bad-hour"`, `"queue-full"`, …; defaults to the status's slug such
//! as `"not-found"` when nothing more specific applies), `message` is
//! human-readable and may change, `status` repeats the HTTP status
//! code. Handlers build envelopes via [`Response::error`] /
//! [`Response::error_with_code`]; there is no other error body shape.
//!
//! # Routes
//!
//! | Route | Returns |
//! |---|---|
//! | `GET /` | embedded front-end |
//! | `GET /api/v1/cities` | registered cities and their vitals (JSON) |
//! | `GET /api/v1/stats` | dataset statistics (Sec. I.1 numbers) |
//! | `GET /api/v1/users?limit=N&offset=M` \| `?after=<user>` | qualifying users, paginated (`{"total", "items", "next_after"}`) |
//! | `GET /api/v1/patterns/:user` | a user's mined patterns (JSON) |
//! | `GET /api/v1/network/:user` | a user's place graph (SVG) |
//! | `GET /api/v1/crowd?hour=H` | crowd snapshot (JSON) |
//! | `GET /api/v1/crowd/map?hour=H` | crowd heat map (SVG) |
//! | `GET /api/v1/crowd/geojson?hour=H` | crowd snapshot (GeoJSON) |
//! | `GET /api/v1/crowd/flows?from=H&to=H` | inter-window flows (JSON) |
//! | `GET /api/v1/crowd/flows/map?from=H&to=H` | inter-window flow map (SVG) |
//! | `GET /api/v1/crowd/timeline` | per-window crowd timeline (SVG) |
//! | `GET /api/v1/crowd/compare?a=H&b=H` | two-window comparison (JSON) |
//! | `GET /api/v1/crowd/diff?a=N&b=N` | per-user crowd delta between two retained epochs (JSON) |
//! | `GET /api/v1/epochs` | retained epoch history listing (JSON) |
//! | `GET /api/v1/figures/:id` | figure data series (`fig5`…`fig8`) |
//! | `GET /api/v1/figures/:id/svg` | figure chart (SVG) |
//! | `POST /api/v1/upload` | mine an uploaded TSV check-in history |
//! | `GET /api/v1/upload/last` | the most recent upload's patterns |
//! | `GET /api/v1/uploads?limit=N&offset=M` \| `?after=<id>` | recent uploads, newest first, paginated |
//! | `POST /api/v1/checkins` | enqueue live check-ins (single or batch JSON) |
//! | `POST /api/v1/ingest/epoch` | drain the queue into a new epoch snapshot |
//! | `GET /api/v1/ingest/stats` | ingest queue/WAL/epoch/shard statistics |
//! | `GET /api/v1/metrics` | platform metrics (Prometheus text exposition) |
//! | `GET /api/v1/healthz` | liveness: epoch, queue, shard count (JSON) |
//! | `GET /api/v1/hotspots` | detected crowd hotspots (JSON) |
//! | `GET /api/v1/heatmap` | city activity rhythm (SVG) |
//! | `GET /api/v1/heatmap/:user` | one user's activity rhythm (SVG) |
//! | `GET /api/v1/entropy/:user` | predictability profile (JSON) |
//! | `GET /api/v1/groups?threshold=T` | users grouped by pattern similarity (JSON) |
//! | `GET /api/v1/trajectory/:user?date=D` | one day's trajectory (JSON + GeoJSON) |
//! | `GET /api/v1/tiles/:z/:x/:y?hour=H` | slippy-map crowd tile (SVG) |
//! | `GET /api/v1/export/checkins` | bulk check-in export (NDJSON, streamed chunked) |
//!
//! Each route above (minus `GET /`) also answers at `/api/...` without
//! the version segment, and each data route (minus `GET /`,
//! `/api/v1/cities`, and `/api/v1/metrics`) additionally answers at
//! `GET /api/v1/cities/{city}/...` for any registered city.
//!
//! # Streaming bodies
//!
//! Handlers return [`Response`] whose body is either
//! [`ResponseBody::Full`](crate::http::ResponseBody::Full) (written
//! with `Content-Length`) or
//! [`ResponseBody::Stream`](crate::http::ResponseBody::Stream) (a
//! pull-based [`BodyStream`] the reactor drains with `Transfer-
//! Encoding: chunked`, polling the producer only while the socket can
//! take more — see `DESIGN.md` §13). The heavyweight renders
//! (`crowd/map`, `crowd/geojson`, `tiles`) stream their materialized
//! buffers via [`ChunkedBytes`]; `export/checkins` is incrementally
//! produced by [`CheckinExportStream`] and never materializes.
//!
//! # Conditional requests
//!
//! The tagged temporal endpoints (`crowd`, `crowd/map`,
//! `crowd/geojson`, `crowd/flows`, `tiles`, `export/checkins`) set a
//! strong `ETag` of the serving identity — `"{city}-e{epoch}"` — and
//! answer `304 Not Modified` to a revalidating `If-None-Match` (weak
//! comparison per RFC 9110 §13.1.2). A crowd view is immutable once
//! its epoch is published, so pollers pay a round-trip, not a body,
//! while the epoch stands still.
//!
//! # Cursor pagination
//!
//! `/users` and `/uploads` accept `?after=<id>` as an alternative to
//! `offset`: the page resumes strictly past the id (ascending user ids
//! on `/users`, descending upload sequence ids on `/uploads`), and the
//! response's `next_after` carries the cursor for the following page
//! (`null` on the final page and in offset mode). Cursors stay stable
//! while rows are inserted or evicted underneath; mixing `after` with
//! `offset`, or a non-integer cursor, is a 400 `"bad-cursor"`
//! envelope.
//!
//! # Time travel
//!
//! Every crowd endpoint (`crowd`, `crowd/map`, `crowd/geojson`,
//! `crowd/flows`, `crowd/flows/map`, `crowd/timeline`,
//! `crowd/compare`, `tiles`) accepts an optional `?epoch=N` parameter
//! that serves the view as it was published at epoch `N`, exactly as
//! the live endpoint rendered it when `N` was latest — the engine's
//! [`CrowdHistory`](crowdweb_ingest::CrowdHistory) rematerializes the
//! crowd model from its delta-compressed ring. `GET /api/v1/epochs`
//! lists which epochs are scrubbable; asking for an evicted (or
//! not-yet-published) epoch is a 404 `"unknown-epoch"` envelope, and a
//! non-integer epoch is a 400 `"bad-epoch"` envelope.
//! `export/checkins` also accepts `?epoch=N` but honors only the live
//! epoch — the history ring retains crowd models, not datasets, so
//! historical record exports are gone once the epoch advances.

use crate::http::{BodyStream, ChunkedBytes, STREAM_CHUNK_BYTES};
use crate::{AppState, CityState, Request, Response, Router, StatusCode};
use crowdweb_crowd::{CrowdModel, CrowdSplice};
use crowdweb_dataset::{MergeRecord, UserId};
use crowdweb_ingest::{IngestError, PlatformSnapshot};
use crowdweb_mobility::{PatternMiner, UserPatterns};
use crowdweb_viz::{render_place_graph, snapshot_to_geojson, CityMap, Histogram, LineChart};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// A city-scoped handler: the platform state, the resolved city, and
/// the request. Every data endpoint has this shape; the same fn serves
/// the `/api/v1/cities/{city}/...` route, the default-city `/api/v1/...`
/// route, and the legacy `/api/...` alias.
type CityHandler = fn(&AppState, &CityState, &Request, &HashMap<String, String>) -> Response;

/// Resolves the `{city}` path capture against the registry, counting
/// the request on success. Unknown ids are a 404 `"unknown-city"`
/// envelope — they never become metric labels, so the per-city label
/// stays bounded by the registry.
fn resolve_city<'a>(
    app: &'a AppState,
    params: &HashMap<String, String>,
) -> Result<&'a CityState, Response> {
    let id = params.get("city").map(String::as_str).unwrap_or_default();
    match app.city(id) {
        Some(city) => {
            app.note_city_request(id);
            Ok(city)
        }
        None => Err(error_envelope(
            StatusCode::NotFound,
            "unknown-city",
            &format!("unknown city {id:?}"),
        )),
    }
}

/// Asserts the three spellings of one endpoint stay in lockstep: the
/// city route is the v1 route with `/cities/{city}` spliced in, and the
/// legacy alias is the v1 route minus its version segment.
fn assert_route_triple(city: &str, v1: &str, legacy: &str) {
    debug_assert_eq!(
        city,
        format!("/api/v1/cities/{{city}}{}", &v1["/api/v1".len()..]),
        "city pattern must be the v1 pattern under /cities/{{city}}"
    );
    debug_assert_eq!(
        legacy,
        format!("/api{}", &v1["/api/v1".len()..]),
        "legacy alias must be the v1 pattern minus the version segment"
    );
}

/// Registers one GET endpoint at all three spellings:
/// `/api/v1/cities/{city}/...` (explicit city), `/api/v1/...` (default
/// city), and `/api/...` (legacy alias of the default-city route). One
/// handler serves all three; the default-city pair reports the
/// canonical `/api/v1/...` metrics label, the city route reports its
/// own `{city}` *pattern* (bounded cardinality — see
/// [`Router::dispatch`]).
fn city_get(
    router: &mut Router<AppState>,
    city_pattern: &'static str,
    v1_pattern: &'static str,
    legacy_alias: &'static str,
    handler: CityHandler,
) {
    assert_route_triple(city_pattern, v1_pattern, legacy_alias);
    router.get(
        city_pattern,
        move |app: &AppState, req, params| match resolve_city(app, params) {
            Ok(city) => handler(app, city, req, params),
            Err(resp) => resp,
        },
    );
    router.get_aliased(
        v1_pattern,
        legacy_alias,
        move |app: &AppState, req, params| {
            let city = app.default_city();
            app.note_city_request(city.id());
            handler(app, city, req, params)
        },
    );
}

/// [`city_get`] for POST endpoints.
fn city_post(
    router: &mut Router<AppState>,
    city_pattern: &'static str,
    v1_pattern: &'static str,
    legacy_alias: &'static str,
    handler: CityHandler,
) {
    assert_route_triple(city_pattern, v1_pattern, legacy_alias);
    router.post(
        city_pattern,
        move |app: &AppState, req, params| match resolve_city(app, params) {
            Ok(city) => handler(app, city, req, params),
            Err(resp) => resp,
        },
    );
    router.post_aliased(
        v1_pattern,
        legacy_alias,
        move |app: &AppState, req, params| {
            let city = app.default_city();
            app.note_city_request(city.id());
            handler(app, city, req, params)
        },
    );
}

/// Builds the full CrowdWeb route table: every endpoint at its
/// canonical `/api/v1/...` pattern (default city), its
/// `/api/v1/cities/{city}/...` tenant spelling, and its legacy
/// `/api/...` alias (one handler, shared per endpoint — see the module
/// docs).
pub fn build_router() -> Router<AppState> {
    let mut router = Router::new();
    router.get("/", |_, _, _| {
        Response::html(crate::frontend::INDEX_HTML.to_owned())
    });
    router.get_aliased("/api/v1/cities", "/api/cities", cities_list);
    city_get(
        &mut router,
        "/api/v1/cities/{city}/stats",
        "/api/v1/stats",
        "/api/stats",
        stats,
    );
    city_get(
        &mut router,
        "/api/v1/cities/{city}/users",
        "/api/v1/users",
        "/api/users",
        users,
    );
    city_get(
        &mut router,
        "/api/v1/cities/{city}/patterns/:user",
        "/api/v1/patterns/:user",
        "/api/patterns/:user",
        patterns,
    );
    city_get(
        &mut router,
        "/api/v1/cities/{city}/network/:user",
        "/api/v1/network/:user",
        "/api/network/:user",
        network,
    );
    city_get(
        &mut router,
        "/api/v1/cities/{city}/crowd",
        "/api/v1/crowd",
        "/api/crowd",
        crowd,
    );
    city_get(
        &mut router,
        "/api/v1/cities/{city}/crowd/map",
        "/api/v1/crowd/map",
        "/api/crowd/map",
        crowd_map,
    );
    city_get(
        &mut router,
        "/api/v1/cities/{city}/crowd/geojson",
        "/api/v1/crowd/geojson",
        "/api/crowd/geojson",
        crowd_geojson,
    );
    city_get(
        &mut router,
        "/api/v1/cities/{city}/crowd/flows",
        "/api/v1/crowd/flows",
        "/api/crowd/flows",
        crowd_flows,
    );
    city_get(
        &mut router,
        "/api/v1/cities/{city}/crowd/diff",
        "/api/v1/crowd/diff",
        "/api/crowd/diff",
        crowd_diff,
    );
    city_get(
        &mut router,
        "/api/v1/cities/{city}/epochs",
        "/api/v1/epochs",
        "/api/epochs",
        epochs_list,
    );
    city_get(
        &mut router,
        "/api/v1/cities/{city}/figures/:id",
        "/api/v1/figures/:id",
        "/api/figures/:id",
        figure_data,
    );
    city_get(
        &mut router,
        "/api/v1/cities/{city}/figures/:id/svg",
        "/api/v1/figures/:id/svg",
        "/api/figures/:id/svg",
        figure_svg,
    );
    city_post(
        &mut router,
        "/api/v1/cities/{city}/upload",
        "/api/v1/upload",
        "/api/upload",
        upload,
    );
    city_get(
        &mut router,
        "/api/v1/cities/{city}/upload/last",
        "/api/v1/upload/last",
        "/api/upload/last",
        upload_last,
    );
    city_get(
        &mut router,
        "/api/v1/cities/{city}/uploads",
        "/api/v1/uploads",
        "/api/uploads",
        uploads_list,
    );
    city_post(
        &mut router,
        "/api/v1/cities/{city}/checkins",
        "/api/v1/checkins",
        "/api/checkins",
        checkins_submit,
    );
    city_post(
        &mut router,
        "/api/v1/cities/{city}/ingest/epoch",
        "/api/v1/ingest/epoch",
        "/api/ingest/epoch",
        ingest_epoch,
    );
    city_get(
        &mut router,
        "/api/v1/cities/{city}/ingest/stats",
        "/api/v1/ingest/stats",
        "/api/ingest/stats",
        ingest_stats,
    );
    // Metrics are platform-global (one registry serves every city), so
    // there is no per-city spelling.
    router.get_aliased("/api/v1/metrics", "/api/metrics", metrics_text);
    city_get(
        &mut router,
        "/api/v1/cities/{city}/healthz",
        "/api/v1/healthz",
        "/api/healthz",
        healthz,
    );
    city_get(
        &mut router,
        "/api/v1/cities/{city}/hotspots",
        "/api/v1/hotspots",
        "/api/hotspots",
        hotspots,
    );
    city_get(
        &mut router,
        "/api/v1/cities/{city}/crowd/flows/map",
        "/api/v1/crowd/flows/map",
        "/api/crowd/flows/map",
        crowd_flows_map,
    );
    city_get(
        &mut router,
        "/api/v1/cities/{city}/crowd/timeline",
        "/api/v1/crowd/timeline",
        "/api/crowd/timeline",
        crowd_timeline,
    );
    city_get(
        &mut router,
        "/api/v1/cities/{city}/heatmap",
        "/api/v1/heatmap",
        "/api/heatmap",
        heatmap,
    );
    city_get(
        &mut router,
        "/api/v1/cities/{city}/heatmap/:user",
        "/api/v1/heatmap/:user",
        "/api/heatmap/:user",
        heatmap_user,
    );
    city_get(
        &mut router,
        "/api/v1/cities/{city}/entropy/:user",
        "/api/v1/entropy/:user",
        "/api/entropy/:user",
        entropy,
    );
    city_get(
        &mut router,
        "/api/v1/cities/{city}/groups",
        "/api/v1/groups",
        "/api/groups",
        groups,
    );
    city_get(
        &mut router,
        "/api/v1/cities/{city}/crowd/compare",
        "/api/v1/crowd/compare",
        "/api/crowd/compare",
        crowd_compare,
    );
    city_get(
        &mut router,
        "/api/v1/cities/{city}/trajectory/:user",
        "/api/v1/trajectory/:user",
        "/api/trajectory/:user",
        trajectory,
    );
    city_get(
        &mut router,
        "/api/v1/cities/{city}/tiles/:z/:x/:y",
        "/api/v1/tiles/:z/:x/:y",
        "/api/tiles/:z/:x/:y",
        tile,
    );
    city_get(
        &mut router,
        "/api/v1/cities/{city}/export/checkins",
        "/api/v1/export/checkins",
        "/api/export/checkins",
        export_checkins,
    );
    router
}

/// One row of `GET /api/v1/cities`: a registered city and its vitals.
#[derive(Serialize)]
struct CityDto {
    id: String,
    default: bool,
    epoch: u64,
    users: usize,
    checkins: usize,
}

/// `GET /api/v1/cities`: every registered city, ascending by id, with
/// the default city flagged.
fn cities_list(state: &AppState, _: &Request, _: &HashMap<String, String>) -> Response {
    let items: Vec<CityDto> = state
        .city_ids()
        .into_iter()
        .map(|id| {
            let city = state.city(id).expect("listed ids are registered");
            let snap = city.snapshot();
            CityDto {
                id: id.to_owned(),
                default: id == state.default_city_id(),
                epoch: snap.epoch(),
                users: snap.prepared().user_count(),
                checkins: snap.dataset().len(),
            }
        })
        .collect();
    ok_json(&PageDto {
        total: items.len(),
        items,
        next_after: None,
    })
}

fn ok_json<T: Serialize>(value: &T) -> Response {
    match serde_json::to_string(value) {
        Ok(body) => Response::json(body),
        Err(e) => Response::error(StatusCode::InternalServerError, &e.to_string()),
    }
}

/// Serves an already-materialized buffer under chunked framing: the
/// handler still renders in one shot, but the reactor drains the bytes
/// [`STREAM_CHUNK_BYTES`] at a time under the per-connection stream
/// budget instead of holding one `Content-Length` buffer per in-flight
/// response.
fn stream_bytes(content_type: &str, bytes: Vec<u8>) -> Response {
    Response::stream(content_type, Box::new(ChunkedBytes::new(bytes)))
}

/// Builds an error envelope with a handler-specific machine-readable
/// code. The single funnel for every ad-hoc error a handler emits — the
/// body shape is owned by [`Response::error_with_code`].
fn error_envelope(status: StatusCode, code: &str, message: &str) -> Response {
    Response::error_with_code(status, code, message)
}

fn parse_user(params: &HashMap<String, String>) -> Result<UserId, Response> {
    params
        .get("user")
        .and_then(|s| s.parse::<u32>().ok())
        .map(UserId::new)
        .ok_or_else(|| error_envelope(StatusCode::BadRequest, "bad-user-id", "bad user id"))
}

fn parse_hour(request: &Request) -> Result<u8, Response> {
    match request.query_param("hour") {
        None => Ok(9), // the paper's default view
        Some(raw) => {
            raw.parse::<u8>().ok().filter(|h| *h < 24).ok_or_else(|| {
                error_envelope(StatusCode::BadRequest, "bad-hour", "hour must be 0-23")
            })
        }
    }
}

/// Pagination bounds. `limit` defaults to 100 and must be 1..=1000;
/// `offset` defaults to 0 and accepts any non-negative integer
/// (offsets past the end yield an empty page, which is valid). Values
/// outside those bounds are a 400 envelope, never a silent clamp.
const DEFAULT_PAGE_LIMIT: usize = 100;
const MAX_PAGE_LIMIT: usize = 1000;

struct Page {
    limit: usize,
    offset: usize,
}

fn parse_page(request: &Request) -> Result<Page, Response> {
    let limit = match request.query_param("limit") {
        None => DEFAULT_PAGE_LIMIT,
        Some(raw) => raw
            .parse::<usize>()
            .ok()
            .filter(|l| (1..=MAX_PAGE_LIMIT).contains(l))
            .ok_or_else(|| {
                error_envelope(
                    StatusCode::BadRequest,
                    "bad-limit",
                    &format!("limit must be an integer in 1..={MAX_PAGE_LIMIT}"),
                )
            })?,
    };
    let offset = match request.query_param("offset") {
        None => 0,
        Some(raw) => raw.parse::<usize>().map_err(|_| {
            error_envelope(
                StatusCode::BadRequest,
                "bad-offset",
                "offset must be a non-negative integer",
            )
        })?,
    };
    Ok(Page { limit, offset })
}

/// Parses the cursor-pagination `?after=<id>` parameter. `after` names
/// the id of the last item the client already has (a user id on
/// `/users`, an upload sequence id on `/uploads`); the page resumes
/// strictly past it, so a cursor walk stays stable while the
/// collection shifts underneath (unlike `offset`, which re-counts from
/// the front every page). A non-integer cursor, or mixing `after` with
/// `offset`, is a 400 `"bad-cursor"` envelope.
fn parse_after(request: &Request) -> Result<Option<u64>, Response> {
    let Some(raw) = request.query_param("after") else {
        return Ok(None);
    };
    if request.query_param("offset").is_some() {
        return Err(error_envelope(
            StatusCode::BadRequest,
            "bad-cursor",
            "after and offset are mutually exclusive",
        ));
    }
    match raw.parse::<u64>() {
        Ok(after) => Ok(Some(after)),
        Err(_) => Err(error_envelope(
            StatusCode::BadRequest,
            "bad-cursor",
            "after must be a non-negative integer id",
        )),
    }
}

/// A paginated listing: the unfiltered total plus one page of items.
/// Cursor-mode pages additionally carry `next_after` — the cursor for
/// the following page — `null` on the final page and in offset mode.
#[derive(Serialize)]
struct PageDto<T> {
    total: usize,
    items: Vec<T>,
    next_after: Option<u64>,
}

fn paginate<T>(items: impl IntoIterator<Item = T>, total: usize, page: &Page) -> PageDto<T> {
    PageDto {
        total,
        items: items
            .into_iter()
            .skip(page.offset)
            .take(page.limit)
            .collect(),
        next_after: None,
    }
}

/// Cursor-mode pagination: takes the already-`after`-filtered row
/// iterator, pulls one page plus a lookahead row, and derives
/// `next_after` from the page's last id when more rows remain.
fn paginate_after<T>(
    rows: impl IntoIterator<Item = T>,
    total: usize,
    limit: usize,
    id_of: impl Fn(&T) -> u64,
) -> PageDto<T> {
    let mut items: Vec<T> = rows.into_iter().take(limit + 1).collect();
    let more = items.len() > limit;
    items.truncate(limit);
    let next_after = if more { items.last().map(&id_of) } else { None };
    PageDto {
        total,
        items,
        next_after,
    }
}

#[derive(Serialize)]
struct StatsDto {
    total_checkins: usize,
    user_count: usize,
    venue_count: usize,
    mean_records_per_user: f64,
    median_records_per_user: f64,
    filtered_users: usize,
    study_window: String,
    min_support: f64,
}

fn stats(_app: &AppState, state: &CityState, _: &Request, _: &HashMap<String, String>) -> Response {
    let snap = state.snapshot();
    let s = crowdweb_dataset::DatasetStats::compute(snap.dataset());
    ok_json(&StatsDto {
        total_checkins: s.total_checkins,
        user_count: s.user_count,
        venue_count: s.venue_count,
        mean_records_per_user: s.mean_records_per_user,
        median_records_per_user: s.median_records_per_user,
        filtered_users: snap.prepared().user_count(),
        study_window: snap.prepared().window().to_string(),
        min_support: snap.min_support(),
    })
}

#[derive(Serialize)]
struct UserDto {
    user: u32,
    active_days: usize,
    patterns: usize,
}

fn users(
    _app: &AppState,
    state: &CityState,
    request: &Request,
    _: &HashMap<String, String>,
) -> Response {
    let page = match parse_page(request) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let after = match parse_after(request) {
        Ok(a) => a,
        Err(resp) => return resp,
    };
    let snap = state.snapshot();
    let all = snap.patterns();
    let rows = all.iter().map(|p| UserDto {
        user: p.user.raw(),
        active_days: p.active_days,
        patterns: p.pattern_count(),
    });
    // Patterns are mined in ascending user order, so the user id is a
    // sorted cursor: `after=<user>` resumes strictly past that id.
    let dto = match after {
        None => paginate(rows, all.len(), &page),
        Some(after) => paginate_after(
            rows.filter(|r| u64::from(r.user) > after),
            all.len(),
            page.limit,
            |r| u64::from(r.user),
        ),
    };
    ok_json(&dto)
}

#[derive(Serialize)]
struct PatternDto {
    items: Vec<String>,
    support: usize,
    relative_support: f64,
}

#[derive(Serialize)]
struct UserPatternsDto {
    user: u32,
    active_days: usize,
    patterns: Vec<PatternDto>,
}

fn patterns_dto(snap: &PlatformSnapshot, up: &UserPatterns) -> UserPatternsDto {
    let labeler = snap.labeler();
    let slotting = snap.prepared().slotting();
    UserPatternsDto {
        user: up.user.raw(),
        active_days: up.active_days,
        patterns: up
            .patterns
            .iter()
            .map(|p| PatternDto {
                items: p
                    .items
                    .iter()
                    .map(|it| {
                        format!(
                            "{} @ {}",
                            labeler
                                .name_of(it.label)
                                .unwrap_or_else(|| it.label.to_string()),
                            slotting.label(it.slot)
                        )
                    })
                    .collect(),
                support: p.support,
                relative_support: p.relative_support(up.active_days),
            })
            .collect(),
    }
}

fn patterns(
    _app: &AppState,
    state: &CityState,
    _: &Request,
    params: &HashMap<String, String>,
) -> Response {
    let user = match parse_user(params) {
        Ok(u) => u,
        Err(resp) => return resp,
    };
    let snap = state.snapshot();
    match snap.patterns_of(user) {
        Some(up) => ok_json(&patterns_dto(&snap, up)),
        None => error_envelope(
            StatusCode::NotFound,
            "unknown-user",
            "unknown or filtered user",
        ),
    }
}

fn network(
    _app: &AppState,
    state: &CityState,
    _: &Request,
    params: &HashMap<String, String>,
) -> Response {
    let user = match parse_user(params) {
        Ok(u) => u,
        Err(resp) => return resp,
    };
    let snap = state.snapshot();
    match snap.place_graph_of(user) {
        Some(graph) => {
            let labeler = snap.labeler();
            Response::svg(render_place_graph(&graph, |l| {
                labeler.name_of(l).unwrap_or_else(|| l.to_string())
            }))
        }
        None => error_envelope(
            StatusCode::NotFound,
            "unknown-user",
            "unknown or filtered user",
        ),
    }
}

#[derive(Serialize)]
struct CrowdCellDto {
    cell: u64,
    users: usize,
}

#[derive(Serialize)]
struct CrowdDto {
    window: String,
    total_users: usize,
    cells: Vec<CrowdCellDto>,
}

/// Resolves the crowd model a temporal endpoint should serve: the live
/// snapshot's model by default, or — when the request carries
/// `?epoch=N` — the model exactly as published at epoch `N`,
/// rematerialized from the engine's delta-compressed history. A
/// non-integer epoch is a 400 `"bad-epoch"` envelope; an epoch outside
/// the retained ring is a 404 `"unknown-epoch"` envelope naming the
/// scrubbable range.
fn crowd_view(state: &CityState, request: &Request) -> Result<Arc<CrowdModel>, Response> {
    crowd_view_epoch(state, request).map(|(model, _)| model)
}

/// [`crowd_view`] plus the epoch the resolved model was published at —
/// the cache-validation identity of the view.
fn crowd_view_epoch(
    state: &CityState,
    request: &Request,
) -> Result<(Arc<CrowdModel>, u64), Response> {
    let Some(raw) = request.query_param("epoch") else {
        // One snapshot() call so the model and the epoch can't straddle
        // a concurrent publish.
        let snap = state.snapshot();
        return Ok((snap.crowd_arc(), snap.epoch()));
    };
    let Ok(epoch) = raw.parse::<u64>() else {
        return Err(error_envelope(
            StatusCode::BadRequest,
            "bad-epoch",
            "epoch must be a non-negative integer",
        ));
    };
    let model = state.engine().crowd_at(epoch).ok_or_else(|| {
        let (oldest, newest) = state.engine().history().retained();
        error_envelope(
            StatusCode::NotFound,
            "unknown-epoch",
            &format!("epoch {epoch} is not retained (history holds {oldest}..={newest})"),
        )
    })?;
    Ok((model, epoch))
}

/// True when the request's `If-None-Match` header revalidates `etag`:
/// the wildcard `*`, or any member of the comma-separated candidate
/// list, compared ignoring a `W/` weakness prefix on the candidate
/// (our tags are strong, and weak comparison is the correct semantics
/// for `If-None-Match` per RFC 9110 §13.1.2).
fn if_none_match(request: &Request, etag: &str) -> bool {
    let Some(raw) = request.headers.get("if-none-match") else {
        return false;
    };
    raw.split(',').map(str::trim).any(|candidate| {
        candidate == "*" || candidate.strip_prefix("W/").unwrap_or(candidate) == etag
    })
}

/// [`crowd_view_epoch`] with conditional-request handling: resolves the
/// model, derives the strong `ETag` (`"{city}-e{epoch}"` — a crowd view
/// is immutable once its epoch is published), and short-circuits to
/// `304 Not Modified` when the request's `If-None-Match` revalidates
/// it. On `Ok` the handler attaches the returned tag via
/// [`Response::with_etag`].
fn crowd_view_tagged(
    state: &CityState,
    request: &Request,
) -> Result<(Arc<CrowdModel>, String), Response> {
    let (model, epoch) = crowd_view_epoch(state, request)?;
    let etag = format!("\"{}-e{}\"", state.id(), epoch);
    if if_none_match(request, &etag) {
        return Err(Response::not_modified(&etag));
    }
    Ok((model, etag))
}

fn snapshot_for(
    crowd: &CrowdModel,
    request: &Request,
) -> Result<crowdweb_crowd::CrowdSnapshot, Response> {
    let hour = parse_hour(request)?;
    crowd.snapshot_at_hour(hour).ok_or_else(|| {
        error_envelope(
            StatusCode::NotFound,
            "no-window",
            "no window covers that hour",
        )
    })
}

fn crowd(
    _app: &AppState,
    state: &CityState,
    request: &Request,
    _: &HashMap<String, String>,
) -> Response {
    let (model, etag) = match crowd_view_tagged(state, request) {
        Ok(pair) => pair,
        Err(resp) => return resp,
    };
    match snapshot_for(&model, request) {
        Ok(snap) => ok_json(&CrowdDto {
            window: snap.window.label(),
            total_users: snap.total_users(),
            cells: snap
                .busiest_cells()
                .into_iter()
                .map(|(cell, users)| CrowdCellDto {
                    cell: cell.0,
                    users,
                })
                .collect(),
        })
        .with_etag(&etag),
        Err(resp) => resp,
    }
}

fn crowd_map(
    _app: &AppState,
    state: &CityState,
    request: &Request,
    _: &HashMap<String, String>,
) -> Response {
    // Optional ?label=N restricts the view to one place label ("only
    // the shoppers").
    let (model, etag) = match crowd_view_tagged(state, request) {
        Ok(pair) => pair,
        Err(resp) => return resp,
    };
    let snap = match request.query_param("label") {
        None => match snapshot_for(&model, request) {
            Ok(s) => s,
            Err(resp) => return resp,
        },
        Some(raw) => {
            let Ok(label) = raw.parse::<u32>() else {
                return error_envelope(
                    StatusCode::BadRequest,
                    "bad-label",
                    "label must be an integer",
                );
            };
            let hour = match parse_hour(request) {
                Ok(h) => h,
                Err(resp) => return resp,
            };
            let Some(idx) = model.windows().index_of_hour(hour) else {
                return error_envelope(
                    StatusCode::NotFound,
                    "no-window",
                    "no window covers that hour",
                );
            };
            match model.snapshot_by_label(idx, crowdweb_prep::PlaceLabel(label)) {
                Ok(s) => s,
                Err(e) => return Response::error(StatusCode::InternalServerError, &e.to_string()),
            }
        }
    };
    // A rendered city map can be megabytes of SVG on a dense grid —
    // serve it chunked so the reactor never re-buffers the whole body
    // past the stream budget.
    stream_bytes(
        "image/svg+xml",
        CityMap::new(model.grid()).render(&snap).into_bytes(),
    )
    .with_etag(&etag)
}

fn crowd_geojson(
    _app: &AppState,
    state: &CityState,
    request: &Request,
    _: &HashMap<String, String>,
) -> Response {
    let (model, etag) = match crowd_view_tagged(state, request) {
        Ok(pair) => pair,
        Err(resp) => return resp,
    };
    match snapshot_for(&model, request) {
        Ok(snap) => match serde_json::to_string(&snapshot_to_geojson(&snap, model.grid())) {
            // The largest JSON body we serve: one feature per occupied
            // cell. Stream it instead of Content-Length framing.
            Ok(body) => stream_bytes("application/json", body.into_bytes()).with_etag(&etag),
            Err(e) => Response::error(StatusCode::InternalServerError, &e.to_string()),
        },
        Err(resp) => resp,
    }
}

#[derive(Serialize)]
struct FlowDto {
    from: u64,
    to: u64,
    count: usize,
}

fn crowd_flows(
    _app: &AppState,
    state: &CityState,
    request: &Request,
    _: &HashMap<String, String>,
) -> Response {
    let parse = |name: &str, default: u8| -> Result<u8, Response> {
        match request.query_param(name) {
            None => Ok(default),
            Some(raw) => raw.parse::<u8>().ok().filter(|h| *h < 24).ok_or_else(|| {
                error_envelope(StatusCode::BadRequest, "bad-hour", "hours must be 0-23")
            }),
        }
    };
    let (from, to) = match (parse("from", 9), parse("to", 10)) {
        (Ok(f), Ok(t)) => (f, t),
        (Err(r), _) | (_, Err(r)) => return r,
    };
    let (model, etag) = match crowd_view_tagged(state, request) {
        Ok(pair) => pair,
        Err(resp) => return resp,
    };
    let windows = model.windows();
    let (Some(fi), Some(ti)) = (windows.index_of_hour(from), windows.index_of_hour(to)) else {
        return error_envelope(
            StatusCode::NotFound,
            "no-window",
            "no window covers that hour",
        );
    };
    match model.flows(fi, ti) {
        Ok(flows) => ok_json(
            &flows
                .into_iter()
                .map(|f| FlowDto {
                    from: f.from.0,
                    to: f.to.0,
                    count: f.count,
                })
                .collect::<Vec<_>>(),
        )
        .with_etag(&etag),
        Err(e) => Response::error(StatusCode::InternalServerError, &e.to_string()),
    }
}

/// `GET /api/v1/epochs`: which epochs are currently scrubbable via
/// `?epoch=N`, plus what retaining each one costs.
#[derive(Serialize)]
struct EpochListDto {
    latest: u64,
    capacity: usize,
    epochs: Vec<crowdweb_ingest::EpochInfo>,
}

fn epochs_list(
    _app: &AppState,
    state: &CityState,
    _: &Request,
    _: &HashMap<String, String>,
) -> Response {
    ok_json(&EpochListDto {
        latest: state.engine().epoch(),
        capacity: state.engine().history().capacity(),
        epochs: state.engine().epochs(),
    })
}

/// `GET /api/v1/crowd/diff?a=N&b=N`: the exact per-user placement delta
/// between two retained epochs.
#[derive(Serialize)]
struct CrowdDiffDto {
    a: u64,
    b: u64,
    users_changed: usize,
    changes: Vec<crowdweb_crowd::UserSplice>,
}

fn crowd_diff(
    _app: &AppState,
    state: &CityState,
    request: &Request,
    _: &HashMap<String, String>,
) -> Response {
    let parse = |name: &str| -> Result<u64, Response> {
        request
            .query_param(name)
            .and_then(|raw| raw.parse::<u64>().ok())
            .ok_or_else(|| {
                error_envelope(
                    StatusCode::BadRequest,
                    "bad-epoch",
                    "a and b must be non-negative integer epochs",
                )
            })
    };
    let (a, b) = match (parse("a"), parse("b")) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(r), _) | (_, Err(r)) => return r,
    };
    let materialize = |epoch: u64| -> Result<Arc<CrowdModel>, Response> {
        state.engine().crowd_at(epoch).ok_or_else(|| {
            let (oldest, newest) = state.engine().history().retained();
            error_envelope(
                StatusCode::NotFound,
                "unknown-epoch",
                &format!("epoch {epoch} is not retained (history holds {oldest}..={newest})"),
            )
        })
    };
    let (model_a, model_b) = match (materialize(a), materialize(b)) {
        (Ok(ma), Ok(mb)) => (ma, mb),
        (Err(r), _) | (_, Err(r)) => return r,
    };
    let splice = CrowdSplice::between(&model_a, &model_b);
    ok_json(&CrowdDiffDto {
        a,
        b,
        users_changed: splice.user_count(),
        changes: splice.changes().to_vec(),
    })
}

/// Support sweep used by the figure endpoints.
const SWEEP: [f64; 7] = [0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875];

#[derive(Serialize)]
struct SeriesDto {
    figure: String,
    x: Vec<f64>,
    y: Vec<f64>,
}

/// Computes a figure's data series against one snapshot.
fn figure_series(snap: &PlatformSnapshot, id: &str) -> Option<SeriesDto> {
    let db = snap.prepared().seqdb();
    let mine_all = |support: f64| -> Vec<UserPatterns> {
        PatternMiner::new(support)
            .expect("sweep supports are valid")
            .detect_all(snap.prepared())
            .expect("state sequences are valid")
    };
    match id {
        "fig5" => {
            let mut x = Vec::new();
            let mut y = Vec::new();
            for s in SWEEP {
                let all = mine_all(s);
                let avg = if all.is_empty() {
                    0.0
                } else {
                    all.iter().map(UserPatterns::pattern_count).sum::<usize>() as f64
                        / all.len() as f64
                };
                x.push(s);
                y.push(avg);
            }
            Some(SeriesDto {
                figure: "fig5".into(),
                x,
                y,
            })
        }
        "fig6" => {
            let all = mine_all(0.5);
            Some(SeriesDto {
                figure: "fig6".into(),
                x: (0..all.len()).map(|i| i as f64).collect(),
                y: all.iter().map(|u| u.pattern_count() as f64).collect(),
            })
        }
        "fig7" => {
            let mut x = Vec::new();
            let mut y = Vec::new();
            for s in SWEEP {
                let lengths: Vec<f64> = mine_all(s)
                    .iter()
                    .filter(|u| u.pattern_count() > 0)
                    .map(UserPatterns::mean_pattern_length)
                    .collect();
                x.push(s);
                y.push(if lengths.is_empty() {
                    0.0
                } else {
                    lengths.iter().sum::<f64>() / lengths.len() as f64
                });
            }
            Some(SeriesDto {
                figure: "fig7".into(),
                x,
                y,
            })
        }
        "fig8" => {
            let values: Vec<f64> = mine_all(0.5)
                .iter()
                .filter(|u| u.pattern_count() > 0)
                .map(UserPatterns::mean_pattern_length)
                .collect();
            Some(SeriesDto {
                figure: "fig8".into(),
                x: (0..values.len()).map(|i| i as f64).collect(),
                y: values,
            })
        }
        _ => {
            let _ = db;
            None
        }
    }
}

fn figure_data(
    _app: &AppState,
    state: &CityState,
    _: &Request,
    params: &HashMap<String, String>,
) -> Response {
    let snap = state.snapshot();
    match figure_series(&snap, params.get("id").map(String::as_str).unwrap_or("")) {
        Some(series) => ok_json(&series),
        None => error_envelope(
            StatusCode::NotFound,
            "unknown-figure",
            "unknown figure (fig5..fig8)",
        ),
    }
}

fn figure_svg(
    _app: &AppState,
    state: &CityState,
    _: &Request,
    params: &HashMap<String, String>,
) -> Response {
    let id = params.get("id").map(String::as_str).unwrap_or("");
    let snap = state.snapshot();
    let Some(series) = figure_series(&snap, id) else {
        return error_envelope(
            StatusCode::NotFound,
            "unknown-figure",
            "unknown figure (fig5..fig8)",
        );
    };
    let svg = match id {
        "fig5" | "fig7" => {
            let points: Vec<(f64, f64)> = series
                .x
                .iter()
                .copied()
                .zip(series.y.iter().copied())
                .collect();
            let (title, ylabel) = if id == "fig5" {
                (
                    "Fig 5: sequences per user vs min_support",
                    "avg sequences per user",
                )
            } else {
                (
                    "Fig 7: avg sequence length vs min_support",
                    "avg length per user",
                )
            };
            LineChart::new(title)
                .x_label("minimum support threshold")
                .y_label(ylabel)
                .series("modified PrefixSpan", &points)
                .render()
        }
        _ => {
            let title = if id == "fig6" {
                "Fig 6: distribution of sequence counts (min_support = 0.5)"
            } else {
                "Fig 8: distribution of avg lengths (min_support = 0.5)"
            };
            Histogram::from_values(title, &series.y, 10)
                .x_label(if id == "fig6" {
                    "sequences"
                } else {
                    "avg length"
                })
                .render()
        }
    };
    Response::svg(svg)
}

#[derive(Serialize)]
struct UploadDto {
    users: Vec<u32>,
    checkins: usize,
    patterns: Vec<UserPatternsDto>,
}

/// One `GET /api/v1/uploads` row: the upload plus its stable ring
/// sequence id — the cursor value for `?after=<id>`.
#[derive(Serialize)]
struct UploadRowDto {
    id: u64,
    users: Vec<u32>,
    checkins: usize,
    patterns: Vec<UserPatternsDto>,
}

fn upload_row_dto(
    snap: &PlatformSnapshot,
    seq: u64,
    result: &crate::state::UploadResult,
) -> UploadRowDto {
    let UploadDto {
        users,
        checkins,
        patterns,
    } = upload_dto(snap, result);
    UploadRowDto {
        id: seq,
        users,
        checkins,
        patterns,
    }
}

fn upload_dto(snap: &PlatformSnapshot, result: &crate::state::UploadResult) -> UploadDto {
    UploadDto {
        users: result.users.iter().map(|u| u.raw()).collect(),
        checkins: result.checkin_count,
        patterns: result
            .patterns
            .iter()
            .map(|up| patterns_dto(snap, up))
            .collect(),
    }
}

fn upload(
    _app: &AppState,
    state: &CityState,
    request: &Request,
    _: &HashMap<String, String>,
) -> Response {
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return error_envelope(StatusCode::BadRequest, "bad-body", "body must be utf-8 tsv");
    };
    match state.ingest_upload(body) {
        Ok(result) => ok_json(&upload_dto(&state.snapshot(), &result)),
        Err(e) => error_envelope(StatusCode::BadRequest, "bad-upload", &e.to_string()),
    }
}

fn upload_last(
    _app: &AppState,
    state: &CityState,
    _: &Request,
    _: &HashMap<String, String>,
) -> Response {
    match state.last_upload() {
        Some(result) => ok_json(&upload_dto(&state.snapshot(), &result)),
        None => error_envelope(StatusCode::NotFound, "no-upload", "no upload yet"),
    }
}

fn uploads_list(
    _app: &AppState,
    state: &CityState,
    request: &Request,
    _: &HashMap<String, String>,
) -> Response {
    let page = match parse_page(request) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let after = match parse_after(request) {
        Ok(a) => a,
        Err(resp) => return resp,
    };
    let snap = state.snapshot();
    let uploads = state.uploads();
    let rows = uploads
        .iter()
        .map(|(seq, r)| upload_row_dto(&snap, *seq, r));
    // The listing is newest first with sequence ids descending, so the
    // cursor walks *down*: `after=<id>` resumes at the next-older
    // upload, stable even as new uploads evict ring entries.
    let dto = match after {
        None => paginate(rows, uploads.len(), &page),
        Some(after) => paginate_after(
            rows.filter(|r| r.id < after),
            uploads.len(),
            page.limit,
            |r| r.id,
        ),
    };
    ok_json(&dto)
}

/// One live check-in as submitted to `POST /api/checkins`. `category`
/// defaults to `"Unknown"` and `tz_offset_minutes` to `0` (UTC) when
/// omitted.
#[derive(Deserialize)]
struct CheckinDto {
    user: u32,
    venue: String,
    #[serde(default)]
    category: Option<String>,
    lat: f64,
    lon: f64,
    #[serde(default)]
    tz_offset_minutes: Option<i32>,
    time: String,
}

fn checkin_to_record(dto: &CheckinDto) -> Result<MergeRecord, String> {
    if dto.venue.is_empty() {
        return Err("venue must not be empty".to_owned());
    }
    let location = crowdweb_geo::LatLon::new(dto.lat, dto.lon).map_err(|e| e.to_string())?;
    let time = crowdweb_dataset::tsv::parse_time(&dto.time).map_err(|e| e.to_string())?;
    Ok(MergeRecord {
        user: UserId::new(dto.user),
        venue_key: dto.venue.clone(),
        category: dto.category.clone().unwrap_or_else(|| "Unknown".to_owned()),
        location,
        tz_offset_minutes: dto.tz_offset_minutes.unwrap_or(0),
        time,
    })
}

fn checkins_submit(
    _app: &AppState,
    state: &CityState,
    request: &Request,
    _: &HashMap<String, String>,
) -> Response {
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return error_envelope(
            StatusCode::BadRequest,
            "bad-body",
            "body must be utf-8 json",
        );
    };
    // Accept a single check-in object or an array of them.
    let dtos: Vec<CheckinDto> = match serde_json::from_str::<Vec<CheckinDto>>(body) {
        Ok(list) => list,
        Err(_) => match serde_json::from_str::<CheckinDto>(body) {
            Ok(one) => vec![one],
            Err(e) => {
                return error_envelope(
                    StatusCode::BadRequest,
                    "bad-checkin",
                    &format!("body must be a check-in object or array: {e}"),
                )
            }
        },
    };
    let mut records = Vec::with_capacity(dtos.len());
    for (i, dto) in dtos.iter().enumerate() {
        match checkin_to_record(dto) {
            Ok(r) => records.push(r),
            Err(msg) => {
                return error_envelope(
                    StatusCode::BadRequest,
                    "bad-checkin",
                    &format!("check-in {i}: {msg}"),
                )
            }
        }
    }
    match state.engine().submit(records) {
        Ok(receipt) => ok_json(&receipt),
        Err(e @ IngestError::Backpressure { .. }) => {
            error_envelope(StatusCode::ServiceUnavailable, "queue-full", &e.to_string())
                .with_retry_after(RETRY_AFTER_SECS)
        }
        // The batch was accepted and logged but the inline epoch
        // failed: the records are durable, so the client must NOT
        // re-submit — a distinct code makes that distinguishable from
        // a rejected batch.
        Err(e @ IngestError::EpochFailed { .. }) => error_envelope(
            StatusCode::InternalServerError,
            "epoch-failed",
            &e.to_string(),
        ),
        Err(e) => Response::error(StatusCode::InternalServerError, &e.to_string()),
    }
}

/// Advertised backoff for 503 load-shedding responses. The queue drains
/// on the next epoch run, so one second is the honest order of
/// magnitude; load generators use it directly instead of guessing.
pub(crate) const RETRY_AFTER_SECS: u32 = 1;

#[derive(Serialize)]
struct EpochRunDto {
    ran: bool,
    epoch: u64,
    /// Wall time the whole request spent running the epoch (including
    /// "nothing to do" probes when `ran` is false), so harnesses can
    /// measure epoch lag under load from the response body alone
    /// instead of scraping `/api/metrics` mid-run.
    duration_micros: u64,
    report: Option<crowdweb_ingest::EpochReport>,
}

fn ingest_epoch(
    _app: &AppState,
    state: &CityState,
    _: &Request,
    _: &HashMap<String, String>,
) -> Response {
    let started = std::time::Instant::now();
    match state.engine().run_epoch() {
        Ok(report) => ok_json(&EpochRunDto {
            ran: report.is_some(),
            epoch: state.engine().epoch(),
            duration_micros: started.elapsed().as_micros() as u64,
            report,
        }),
        Err(e) => Response::error(StatusCode::InternalServerError, &e.to_string()),
    }
}

fn ingest_stats(
    _app: &AppState,
    state: &CityState,
    _: &Request,
    _: &HashMap<String, String>,
) -> Response {
    ok_json(&state.engine().stats())
}

fn metrics_text(state: &AppState, _: &Request, _: &HashMap<String, String>) -> Response {
    Response::text(state.metrics().render())
}

#[derive(Serialize)]
struct HealthDto {
    status: &'static str,
    epoch: u64,
    history_depth: usize,
    history_capacity: usize,
    queue_depth: usize,
    queue_capacity: usize,
    shards: usize,
    durable: bool,
    open_connections: i64,
}

fn healthz(
    app: &AppState,
    state: &CityState,
    _: &Request,
    _: &HashMap<String, String>,
) -> Response {
    let stats = state.engine().stats();
    ok_json(&HealthDto {
        status: "ok",
        epoch: stats.epoch,
        history_depth: stats.history_depth,
        history_capacity: stats.history_capacity,
        queue_depth: stats.queue_depth,
        queue_capacity: stats.queue_capacity,
        shards: stats.shard_count,
        durable: stats.durable,
        // Published by the reactor loop; 0 when the router is driven
        // without a running server (tests, embedding).
        open_connections: app
            .metrics()
            .gauge_value("crowdweb_server_open_connections", &[])
            .unwrap_or(0),
    })
}

#[derive(Serialize)]
struct HotspotDto {
    window: String,
    cell: u64,
    users: usize,
    z_score: f64,
    phase: String,
}

fn hotspots(
    _app: &AppState,
    state: &CityState,
    _: &Request,
    _: &HashMap<String, String>,
) -> Response {
    let snap = state.snapshot();
    match crowdweb_crowd::detect_hotspots(snap.crowd(), &crowdweb_crowd::HotspotConfig::default()) {
        Ok(found) => {
            let windows = snap.crowd().windows();
            let rows: Vec<HotspotDto> = found
                .into_iter()
                .map(|h| HotspotDto {
                    window: windows.get(h.window).map(|w| w.label()).unwrap_or_default(),
                    cell: h.cell.0,
                    users: h.count,
                    z_score: h.z_score,
                    phase: format!("{:?}", h.phase),
                })
                .collect();
            ok_json(&rows)
        }
        Err(e) => Response::error(StatusCode::InternalServerError, &e.to_string()),
    }
}

fn crowd_flows_map(
    _app: &AppState,
    state: &CityState,
    request: &Request,
    _: &HashMap<String, String>,
) -> Response {
    let parse = |name: &str, default: u8| -> Result<u8, Response> {
        match request.query_param(name) {
            None => Ok(default),
            Some(raw) => raw.parse::<u8>().ok().filter(|h| *h < 24).ok_or_else(|| {
                error_envelope(StatusCode::BadRequest, "bad-hour", "hours must be 0-23")
            }),
        }
    };
    let (from, to) = match (parse("from", 9), parse("to", 10)) {
        (Ok(f), Ok(t)) => (f, t),
        (Err(r), _) | (_, Err(r)) => return r,
    };
    let model = match crowd_view(state, request) {
        Ok(m) => m,
        Err(resp) => return resp,
    };
    let windows = model.windows();
    let (Some(fi), Some(ti)) = (windows.index_of_hour(from), windows.index_of_hour(to)) else {
        return error_envelope(
            StatusCode::NotFound,
            "no-window",
            "no window covers that hour",
        );
    };
    match model.flows(fi, ti) {
        Ok(flows) => Response::svg(crowdweb_viz::render_flow_map(
            model.grid(),
            &flows,
            &format!("{from}h \u{2192} {to}h"),
        )),
        Err(e) => Response::error(StatusCode::InternalServerError, &e.to_string()),
    }
}

fn crowd_timeline(
    _app: &AppState,
    state: &CityState,
    request: &Request,
    _: &HashMap<String, String>,
) -> Response {
    match crowd_view(state, request) {
        Ok(model) => Response::svg(crowdweb_viz::render_crowd_timeline(
            &model.animation_frames(),
        )),
        Err(resp) => resp,
    }
}

fn heatmap(
    _app: &AppState,
    state: &CityState,
    _: &Request,
    _: &HashMap<String, String>,
) -> Response {
    let snap = state.snapshot();
    let profile = crowdweb_dataset::ActivityProfile::of_dataset(snap.dataset());
    Response::svg(crowdweb_viz::render_activity_heatmap(
        &profile,
        "City activity rhythm (weekday x hour)",
    ))
}

fn heatmap_user(
    _app: &AppState,
    state: &CityState,
    _: &Request,
    params: &HashMap<String, String>,
) -> Response {
    let user = match parse_user(params) {
        Ok(u) => u,
        Err(resp) => return resp,
    };
    let snap = state.snapshot();
    if snap.dataset().checkins_of(user).is_empty() {
        return error_envelope(StatusCode::NotFound, "unknown-user", "unknown user");
    }
    let profile = crowdweb_dataset::ActivityProfile::of_user(snap.dataset(), user);
    Response::svg(crowdweb_viz::render_activity_heatmap(
        &profile,
        &format!("Activity rhythm of {user}"),
    ))
}

#[derive(Serialize)]
struct EntropyDto {
    user: u32,
    visits: usize,
    distinct_places: usize,
    random_entropy: f64,
    uncorrelated_entropy: f64,
    actual_entropy: f64,
    max_predictability: f64,
}

fn entropy(
    _app: &AppState,
    state: &CityState,
    _: &Request,
    params: &HashMap<String, String>,
) -> Response {
    let user = match parse_user(params) {
        Ok(u) => u,
        Err(resp) => return resp,
    };
    let snap = state.snapshot();
    let Some(view) = snap.prepared().seqdb().view_of(user) else {
        return error_envelope(
            StatusCode::NotFound,
            "unknown-user",
            "unknown or filtered user",
        );
    };
    let p = crowdweb_mobility::predictability_profile(&view.decode());
    ok_json(&EntropyDto {
        user: user.raw(),
        visits: p.visits,
        distinct_places: p.distinct_places,
        random_entropy: p.random_entropy,
        uncorrelated_entropy: p.uncorrelated_entropy,
        actual_entropy: p.actual_entropy,
        max_predictability: p.max_predictability,
    })
}

#[derive(Serialize)]
struct GroupDto {
    members: Vec<u32>,
}

fn groups(
    _app: &AppState,
    state: &CityState,
    request: &Request,
    _: &HashMap<String, String>,
) -> Response {
    let threshold: f64 = match request.query_param("threshold") {
        None => 0.6,
        Some(raw) => match raw.parse::<f64>() {
            Ok(t) if (0.0..=1.0).contains(&t) => t,
            _ => {
                return error_envelope(
                    StatusCode::BadRequest,
                    "bad-threshold",
                    "threshold must be in [0, 1]",
                )
            }
        },
    };
    let snap = state.snapshot();
    let groups = crowdweb_mobility::group_users(snap.patterns(), threshold);
    let rows: Vec<GroupDto> = groups
        .into_iter()
        .map(|g| GroupDto {
            members: g.members.iter().map(|u| u.raw()).collect(),
        })
        .collect();
    ok_json(&rows)
}

fn crowd_compare(
    _app: &AppState,
    state: &CityState,
    request: &Request,
    _: &HashMap<String, String>,
) -> Response {
    let parse = |name: &str, default: u8| -> Result<u8, Response> {
        match request.query_param(name) {
            None => Ok(default),
            Some(raw) => raw.parse::<u8>().ok().filter(|h| *h < 24).ok_or_else(|| {
                error_envelope(StatusCode::BadRequest, "bad-hour", "hours must be 0-23")
            }),
        }
    };
    let (a, b) = match (parse("a", 9), parse("b", 19)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(r), _) | (_, Err(r)) => return r,
    };
    let model = match crowd_view(state, request) {
        Ok(m) => m,
        Err(resp) => return resp,
    };
    match crowdweb_crowd::compare_windows(&model, a, b) {
        Ok(cmp) => ok_json(&cmp),
        Err(e) => Response::error(StatusCode::InternalServerError, &e.to_string()),
    }
}

#[derive(Serialize)]
struct TrajectoryDto {
    user: u32,
    date: String,
    points: usize,
    path_m: f64,
    radius_of_gyration_m: f64,
    polyline: String,
    geojson: crowdweb_geo::geojson::Feature,
}

fn trajectory(
    _app: &AppState,
    state: &CityState,
    request: &Request,
    params: &HashMap<String, String>,
) -> Response {
    use crowdweb_geo::trajectory::{path_length_m, radius_of_gyration_m};
    let user = match parse_user(params) {
        Ok(u) => u,
        Err(resp) => return resp,
    };
    let snap = state.snapshot();
    let checkins = snap.dataset().checkins_of(user);
    if checkins.is_empty() {
        return error_envelope(StatusCode::NotFound, "unknown-user", "unknown user");
    }
    // Group the user's check-ins by local date.
    let mut per_day: HashMap<crowdweb_dataset::CivilDate, Vec<crowdweb_geo::LatLon>> =
        HashMap::new();
    for c in checkins {
        if let Some(v) = snap.dataset().venue(c.venue()) {
            per_day
                .entry(c.local_date())
                .or_default()
                .push(v.location());
        }
    }
    let date = match request.query_param("date") {
        Some(raw) => {
            let parts: Vec<&str> = raw.split('-').collect();
            let parsed = (parts.len() == 3)
                .then(|| {
                    let y = parts[0].parse::<i32>().ok()?;
                    let m = parts[1].parse::<u8>().ok()?;
                    let d = parts[2].parse::<u8>().ok()?;
                    crowdweb_dataset::CivilDate::new(y, m, d).ok()
                })
                .flatten();
            match parsed {
                Some(d) => d,
                None => {
                    return error_envelope(
                        StatusCode::BadRequest,
                        "bad-date",
                        "date must be YYYY-MM-DD",
                    )
                }
            }
        }
        // Default: the user's busiest day.
        None => {
            *per_day
                .iter()
                .max_by_key(|(d, pts)| (pts.len(), std::cmp::Reverse(**d)))
                .expect("user has check-ins")
                .0
        }
    };
    let Some(points) = per_day.get(&date) else {
        return error_envelope(
            StatusCode::NotFound,
            "no-checkins",
            "no check-ins on that date",
        );
    };
    let feature =
        crowdweb_geo::geojson::Feature::new(crowdweb_geo::geojson::Geometry::line(points))
            .with_property("user", i64::from(user.raw()))
            .with_property("date", date.to_string());
    ok_json(&TrajectoryDto {
        user: user.raw(),
        date: date.to_string(),
        points: points.len(),
        path_m: path_length_m(points),
        radius_of_gyration_m: radius_of_gyration_m(points),
        polyline: crowdweb_geo::polyline::encode(points),
        geojson: feature,
    })
}

/// Renders one slippy-map tile of the crowd heat layer: the portion of
/// the microcell grid intersecting Web-Mercator tile `z/x/y`, shaded by
/// the crowd of `?hour=H` (default 9). Standard `z/x/y` addressing means
/// any web map library can use the platform as a tile source.
fn tile(
    _app: &AppState,
    state: &CityState,
    request: &Request,
    params: &HashMap<String, String>,
) -> Response {
    use crowdweb_viz::sequential_color;
    let parse = |name: &str| -> Option<u32> { params.get(name).and_then(|s| s.parse().ok()) };
    let (Some(z), Some(x), Some(y)) = (parse("z"), parse("x"), parse("y")) else {
        return error_envelope(
            StatusCode::BadRequest,
            "bad-tile",
            "tile coordinates must be integers",
        );
    };
    let Ok(z8) = u8::try_from(z) else {
        return error_envelope(StatusCode::BadRequest, "bad-tile", "zoom out of range");
    };
    let tile = match crowdweb_geo::TileCoord::new(z8, x, y) {
        Ok(t) => t,
        Err(e) => return error_envelope(StatusCode::BadRequest, "bad-tile", &e.to_string()),
    };
    let (model, etag) = match crowd_view_tagged(state, request) {
        Ok(pair) => pair,
        Err(resp) => return resp,
    };
    let snap = match snapshot_for(&model, request) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    let tile_bounds = tile.bounds();
    let grid = model.grid();
    let max = snap.cells.values().max().copied().unwrap_or(0).max(1);

    const SIZE: f64 = 256.0;
    let mut doc = crowdweb_viz::Document::new(SIZE, SIZE);
    let project = |lat: f64, lon: f64| -> (f64, f64) {
        (
            (lon - tile_bounds.west()) / tile_bounds.lon_span() * SIZE,
            (1.0 - (lat - tile_bounds.south()) / tile_bounds.lat_span()) * SIZE,
        )
    };
    for (&cell, &count) in &snap.cells {
        let Some(bounds) = grid.cell_bounds(cell) else {
            continue;
        };
        if !bounds.intersects(&tile_bounds) {
            continue;
        }
        let (x0, y1) = project(bounds.south(), bounds.west());
        let (x1, y0) = project(bounds.north(), bounds.east());
        let color = sequential_color(count as f64 / max as f64).to_hex();
        doc.rect(x0, y0, (x1 - x0).abs(), (y1 - y0).abs(), &color, None);
    }
    stream_bytes("image/svg+xml", doc.finish().into_bytes()).with_etag(&etag)
}

/// One `export/checkins` NDJSON line: a check-in joined with its
/// venue. Field names follow the `POST /api/v1/checkins` submission
/// shape where they overlap; `time_unix` is the UTC Unix timestamp.
#[derive(Serialize)]
struct ExportRowDto {
    user: u32,
    venue: String,
    category: Option<String>,
    lat: f64,
    lon: f64,
    tz_offset_minutes: i32,
    time_unix: i64,
}

/// The `export/checkins` producer: serializes the snapshot's check-in
/// records one JSON object per line, one ~[`STREAM_CHUNK_BYTES`] batch
/// per pull. It holds only the `Arc`'d snapshot and a row index, so
/// the full export is never materialized — not in the handler and not
/// in the reactor, whose buffering stays bounded by the stream budget.
struct CheckinExportStream {
    snap: Arc<PlatformSnapshot>,
    next: usize,
}

impl BodyStream for CheckinExportStream {
    fn next_chunk(&mut self) -> std::io::Result<Option<Vec<u8>>> {
        let dataset = self.snap.dataset();
        let checkins = dataset.checkins();
        if self.next >= checkins.len() {
            return Ok(None);
        }
        let mut out = Vec::new();
        while self.next < checkins.len() && out.len() < STREAM_CHUNK_BYTES {
            let c = &checkins[self.next];
            self.next += 1;
            let Some(venue) = dataset.venue(c.venue()) else {
                // Unreachable on a well-formed dataset (check-ins only
                // enter against registered venues); skip defensively
                // rather than abort a multi-megabyte export.
                continue;
            };
            let row = ExportRowDto {
                user: c.user().raw(),
                venue: venue.name().to_owned(),
                category: dataset
                    .taxonomy()
                    .name_of(venue.category())
                    .map(str::to_owned),
                lat: venue.location().lat(),
                lon: venue.location().lon(),
                tz_offset_minutes: c.tz_offset_minutes(),
                time_unix: c.time().unix_seconds(),
            };
            let line = serde_json::to_string(&row).map_err(std::io::Error::other)?;
            out.extend_from_slice(line.as_bytes());
            out.push(b'\n');
        }
        Ok(Some(out))
    }
}

/// `GET /api/v1/cities/{city}/export/checkins`: bulk NDJSON export of
/// the city's current check-in records, streamed chunked. Epoch
/// history retains only crowd models (not datasets), so `?epoch=N` is
/// honored exactly when `N` is the snapshot's own epoch — anything
/// else is the usual 400/404 envelope. Carries the same
/// `ETag`/`If-None-Match` revalidation as the crowd endpoints.
fn export_checkins(
    _app: &AppState,
    state: &CityState,
    request: &Request,
    _: &HashMap<String, String>,
) -> Response {
    let snap = state.snapshot();
    if let Some(raw) = request.query_param("epoch") {
        let Ok(epoch) = raw.parse::<u64>() else {
            return error_envelope(
                StatusCode::BadRequest,
                "bad-epoch",
                "epoch must be a non-negative integer",
            );
        };
        if epoch != snap.epoch() {
            return error_envelope(
                StatusCode::NotFound,
                "unknown-epoch",
                &format!(
                    "check-in records are only retained for the live epoch {}",
                    snap.epoch()
                ),
            );
        }
    }
    let etag = format!("\"{}-e{}\"", state.id(), snap.epoch());
    if if_none_match(request, &etag) {
        return Response::not_modified(&etag);
    }
    Response::stream(
        "application/x-ndjson",
        Box::new(CheckinExportStream { snap, next: 0 }),
    )
    .with_etag(&etag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_synth::SynthConfig;

    fn state() -> AppState {
        AppState::build(SynthConfig::small(53).generate().unwrap(), 20).unwrap()
    }

    fn get(router: &Router<AppState>, state: &AppState, path: &str) -> (u16, String) {
        let req = Request::read_from(format!("GET {path} HTTP/1.1\r\n\r\n").as_bytes()).unwrap();
        let resp = router.route(state, &req);
        (
            resp.status.code(),
            String::from_utf8(resp.into_body_bytes()).unwrap(),
        )
    }

    #[test]
    fn stats_endpoint() {
        let (s, r) = (state(), build_router());
        let (code, body) = get(&r, &s, "/api/stats");
        assert_eq!(code, 200);
        assert!(body.contains("\"total_checkins\""));
        assert!(body.contains("\"study_window\""));
    }

    /// Asserts one line of Prometheus text exposition is well-formed.
    fn assert_prometheus_line(line: &str) {
        fn valid_name(name: &str) -> bool {
            !name.is_empty()
                && name
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b':')
                && !name.as_bytes()[0].is_ascii_digit()
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap_or("");
            assert!(valid_name(name), "bad HELP name in {line:?}");
            return;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            assert!(
                valid_name(parts.next().unwrap_or("")),
                "bad TYPE in {line:?}"
            );
            let kind = parts.next().unwrap_or("");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "bad TYPE kind in {line:?}"
            );
            return;
        }
        let (metric, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line {line:?} has no value");
        });
        assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
        let name = metric.split('{').next().unwrap();
        assert!(valid_name(name), "bad metric name in {line:?}");
        if metric.contains('{') {
            assert!(metric.ends_with('}'), "unterminated labels in {line:?}");
        }
    }

    #[test]
    fn metrics_endpoint_serves_valid_stable_prometheus_text() {
        let s = state();
        let r = build_router();
        let req = Request::read_from("GET /api/metrics HTTP/1.1\r\n\r\n".as_bytes()).unwrap();
        let first = r.route(&s, &req);
        assert_eq!(first.status.code(), 200);
        assert!(first.content_type.starts_with("text/plain"));
        let text = String::from_utf8(first.body_bytes().to_vec()).unwrap();
        assert!(!text.is_empty(), "cold build must have recorded metrics");
        for line in text.lines().filter(|l| !l.is_empty()) {
            assert_prometheus_line(line);
        }
        // The cold build ran the full pipeline through the default-on
        // registry: stage timings must be present.
        assert!(
            text.contains("crowdweb_pipeline_stage_seconds_bucket"),
            "{text}"
        );
        assert!(text.contains("stage=\"mine\""));
        assert!(text.contains("crowdweb_pipeline_runs_total"));
        // The epoch history store publishes its retention gauges (the
        // cold build seeds epoch 0) and registers the reconstruction
        // histogram up front.
        assert!(text.contains("crowdweb_ingest_history_retained_epochs 1"));
        assert!(text.contains("crowdweb_ingest_history_resident_bytes{kind=\"full\"}"));
        assert!(text.contains("crowdweb_ingest_history_resident_bytes{kind=\"delta\"} 0"));
        assert!(text.contains("crowdweb_ingest_history_reconstruction_seconds"));
        // Deterministic ordering: a second scrape with unchanged state
        // is byte-identical.
        let second = r.route(&s, &req);
        assert_eq!(
            first.body_bytes(),
            second.body_bytes(),
            "scrapes must order deterministically"
        );
    }

    #[test]
    fn healthz_endpoint_reports_epoch_and_queue() {
        let (s, r) = (state(), build_router());
        let (code, body) = get(&r, &s, "/api/v1/healthz");
        assert_eq!(code, 200);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["status"], "ok");
        assert_eq!(v["epoch"].as_u64(), Some(0));
        // The history ring holds the cold build and reports its
        // configured retention.
        assert_eq!(v["history_depth"].as_u64(), Some(1));
        assert!(v["history_capacity"].as_u64().unwrap() >= 1);
        assert_eq!(v["queue_depth"].as_u64(), Some(0));
        assert!(v["queue_capacity"].as_u64().unwrap() > 0);
        assert!(v["shards"].as_u64().unwrap() >= 1);
        assert_eq!(v["durable"].as_bool(), Some(false));
        // Driven without a running reactor, the gauge is absent → 0.
        assert_eq!(v["open_connections"].as_i64(), Some(0));
    }

    #[test]
    fn users_and_patterns_endpoints() {
        let s = state();
        let r = build_router();
        let (code, body) = get(&r, &s, "/api/v1/users");
        assert_eq!(code, 200);
        let page: serde_json::Value = serde_json::from_str(&body).unwrap();
        let items = page["items"].as_array().unwrap();
        assert!(!items.is_empty());
        assert_eq!(page["total"].as_u64().unwrap() as usize, items.len());
        let uid = items[0]["user"].as_u64().unwrap();
        let (code, body) = get(&r, &s, &format!("/api/v1/patterns/{uid}"));
        assert_eq!(code, 200);
        assert!(body.contains("\"patterns\""));
        // Pattern items carry readable labels with slot ranges.
        assert!(body.contains(":00-"));
        let (code, _) = get(&r, &s, "/api/v1/patterns/999999");
        assert_eq!(code, 404);
        let (code, _) = get(&r, &s, "/api/v1/patterns/not-a-number");
        assert_eq!(code, 400);
    }

    #[test]
    fn users_pagination_windows_and_validates() {
        let s = state();
        let r = build_router();
        let (_, body) = get(&r, &s, "/api/v1/users");
        let full: serde_json::Value = serde_json::from_str(&body).unwrap();
        let total = full["total"].as_u64().unwrap() as usize;
        assert!(total >= 3, "need a few users to paginate over");
        // A window in the middle: same total, bounded items, correct
        // slice.
        let (code, body) = get(&r, &s, "/api/v1/users?limit=2&offset=1");
        assert_eq!(code, 200);
        let page: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(page["total"].as_u64().unwrap() as usize, total);
        assert_eq!(page["items"].as_array().unwrap().len(), 2);
        assert_eq!(page["items"][0], full["items"][1]);
        // An offset past the end is a valid empty page.
        let (code, body) = get(&r, &s, &format!("/api/v1/users?offset={}", total + 5));
        assert_eq!(code, 200);
        let page: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(page["items"].as_array().unwrap().len(), 0);
        assert_eq!(page["total"].as_u64().unwrap() as usize, total);
        // Out-of-bounds values are rejected, never clamped.
        for bad in [
            "/api/v1/users?limit=0",
            "/api/v1/users?limit=1001",
            "/api/v1/users?limit=-1",
            "/api/v1/users?limit=abc",
            "/api/v1/users?offset=-1",
            "/api/v1/users?offset=x",
        ] {
            let (code, body) = get(&r, &s, bad);
            assert_eq!(code, 400, "{bad}: {body}");
            let v: serde_json::Value = serde_json::from_str(&body).unwrap();
            let code_slug = v["error"]["code"].as_str().unwrap();
            assert!(
                code_slug == "bad-limit" || code_slug == "bad-offset",
                "{bad}: {body}"
            );
        }
    }

    #[test]
    fn network_endpoint_returns_svg() {
        let s = state();
        let r = build_router();
        let uid = s.snapshot().prepared().users()[0].raw();
        let (code, body) = get(&r, &s, &format!("/api/network/{uid}"));
        assert_eq!(code, 200);
        assert!(body.starts_with("<svg"));
    }

    #[test]
    fn crowd_endpoints() {
        let s = state();
        let r = build_router();
        let (code, body) = get(&r, &s, "/api/crowd?hour=9");
        assert_eq!(code, 200);
        assert!(body.contains("\"window\":\"9-10 am\""));
        let (code, body) = get(&r, &s, "/api/crowd/map?hour=9");
        assert_eq!(code, 200);
        assert!(body.starts_with("<svg"));
        // Label-filtered view (kind index 2 = Eatery).
        let (code, body) = get(&r, &s, "/api/crowd/map?hour=12&label=2");
        assert_eq!(code, 200);
        assert!(body.starts_with("<svg"));
        let (code, _) = get(&r, &s, "/api/crowd/map?hour=12&label=zzz");
        assert_eq!(code, 400);
        let (code, body) = get(&r, &s, "/api/crowd/geojson?hour=9");
        assert_eq!(code, 200);
        assert!(body.contains("FeatureCollection"));
        let (code, _) = get(&r, &s, "/api/crowd?hour=99");
        assert_eq!(code, 400);
        let (code, body) = get(&r, &s, "/api/crowd/flows?from=9&to=10");
        assert_eq!(code, 200);
        assert!(body.starts_with('['));
    }

    #[test]
    fn figure_endpoints() {
        let s = state();
        let r = build_router();
        for fig in ["fig5", "fig6", "fig7", "fig8"] {
            let (code, body) = get(&r, &s, &format!("/api/figures/{fig}"));
            assert_eq!(code, 200, "{fig}");
            assert!(body.contains(fig));
            let (code, body) = get(&r, &s, &format!("/api/figures/{fig}/svg"));
            assert_eq!(code, 200, "{fig} svg");
            assert!(body.starts_with("<svg"));
        }
        let (code, _) = get(&r, &s, "/api/figures/fig99");
        assert_eq!(code, 404);
    }

    #[test]
    fn fig5_series_is_nonincreasing() {
        let s = state();
        let series = figure_series(&s.snapshot(), "fig5").unwrap();
        for w in series.y.windows(2) {
            assert!(w[0] >= w[1], "{:?}", series.y);
        }
    }

    #[test]
    fn upload_flow() {
        let s = state();
        let r = build_router();
        let (code, _) = get(&r, &s, "/api/upload/last");
        assert_eq!(code, 404);
        let tsv = "77\tv1\tx\tCoffee Shop\t40.75\t-73.99\t-240\tTue Apr 03 13:00:00 +0000 2012\n\
77\tv1\tx\tCoffee Shop\t40.75\t-73.99\t-240\tWed Apr 04 13:00:00 +0000 2012\n";
        let raw = format!(
            "POST /api/upload HTTP/1.1\r\nContent-Length: {}\r\n\r\n{tsv}",
            tsv.len()
        );
        let req = Request::read_from(raw.as_bytes()).unwrap();
        let resp = r.route(&s, &req);
        assert_eq!(resp.status.code(), 200);
        let body = String::from_utf8(resp.into_body_bytes()).unwrap();
        assert!(body.contains("\"checkins\":2"));
        let (code, _) = get(&r, &s, "/api/upload/last");
        assert_eq!(code, 200);
    }

    fn post(router: &Router<AppState>, state: &AppState, path: &str, body: &str) -> (u16, String) {
        let raw = format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let req = Request::read_from(raw.as_bytes()).unwrap();
        let resp = router.route(state, &req);
        (
            resp.status.code(),
            String::from_utf8(resp.into_body_bytes()).unwrap(),
        )
    }

    #[test]
    fn live_ingest_endpoints() {
        let s = state();
        let r = build_router();
        let (code, body) = get(&r, &s, "/api/ingest/stats");
        assert_eq!(code, 200);
        assert!(body.contains("\"queue_depth\":0"));
        // Submit a check-in at an existing venue, then run an epoch.
        let snap = s.snapshot();
        let c = snap.dataset().checkins()[0];
        let v = snap.dataset().venue(c.venue()).unwrap();
        let json = format!(
            "[{{\"user\":{},\"venue\":{},\"category\":\"Office\",\"lat\":{},\"lon\":{},\"tz_offset_minutes\":-240,\"time\":\"Tue Apr 03 13:00:00 +0000 2012\"}}]",
            c.user().raw(),
            serde_json::to_string(v.name()).unwrap(),
            v.location().lat(),
            v.location().lon()
        );
        drop(snap);
        let (code, body) = post(&r, &s, "/api/checkins", &json);
        assert_eq!(code, 200, "{body}");
        assert!(body.contains("\"accepted\":1"));
        let (code, body) = post(&r, &s, "/api/ingest/epoch", "");
        assert_eq!(code, 200, "{body}");
        assert!(body.contains("\"ran\":true"));
        assert!(body.contains("\"epoch\":1"));
        // Harnesses measure epoch lag from the response body alone.
        let run: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert!(run["duration_micros"].as_u64().unwrap() > 0, "{body}");
        let (code, body) = get(&r, &s, "/api/ingest/stats");
        assert_eq!(code, 200);
        assert!(body.contains("\"epochs_run\":1"));
        assert!(body.contains("\"total_applied\":1"));
        // The published snapshot advanced and still serves queries.
        assert_eq!(s.snapshot().epoch(), 1);
        let (code, _) = get(&r, &s, "/api/stats");
        assert_eq!(code, 200);
        // An epoch over an empty queue is a no-op, but still reports
        // the wall time the probe spent.
        let (code, body) = post(&r, &s, "/api/ingest/epoch", "");
        assert_eq!(code, 200);
        assert!(body.contains("\"ran\":false"));
        assert!(body.contains("\"duration_micros\""), "{body}");
    }

    /// Submits one existing check-in shifted by `step` hours and runs
    /// an epoch, so each call perturbs the crowd model deterministically.
    fn advance_epoch(router: &Router<AppState>, s: &AppState, step: usize) {
        let snap = s.snapshot();
        let c = snap.dataset().checkins()[step * 31 % snap.dataset().checkins().len()];
        let v = snap.dataset().venue(c.venue()).unwrap();
        let json = format!(
            "{{\"user\":{},\"venue\":{},\"category\":\"Office\",\"lat\":{},\"lon\":{},\
             \"tz_offset_minutes\":-240,\"time\":\"Tue Apr 03 {:02}:00:00 +0000 2012\"}}",
            c.user().raw(),
            serde_json::to_string(v.name()).unwrap(),
            v.location().lat(),
            v.location().lon(),
            10 + step % 12,
        );
        drop(snap);
        let (code, body) = post(router, s, "/api/v1/checkins", &json);
        assert_eq!(code, 200, "{body}");
        let (code, body) = post(router, s, "/api/v1/ingest/epoch", "");
        assert_eq!(code, 200, "{body}");
        assert!(body.contains("\"ran\":true"), "{body}");
    }

    #[test]
    fn time_travel_serves_retained_epochs_byte_identically() {
        let s = state();
        let r = build_router();
        // Capture the live crowd body at each epoch as it is published.
        let mut expected = vec![get(&r, &s, "/api/v1/crowd?hour=9").1];
        for step in 0..3 {
            advance_epoch(&r, &s, step);
            expected.push(get(&r, &s, "/api/v1/crowd?hour=9").1);
        }
        // Every retained epoch answers exactly as it did when latest.
        for (epoch, want) in expected.iter().enumerate() {
            let (code, body) = get(&r, &s, &format!("/api/v1/crowd?hour=9&epoch={epoch}"));
            assert_eq!(code, 200, "epoch {epoch}: {body}");
            assert_eq!(&body, want, "epoch {epoch} must be byte-identical");
        }
        // ?epoch= applies across the temporal endpoints.
        for path in [
            "/api/v1/crowd/map?hour=9&epoch=1",
            "/api/v1/crowd/geojson?hour=9&epoch=1",
            "/api/v1/crowd/flows?from=9&to=10&epoch=1",
            "/api/v1/crowd/flows/map?from=9&to=10&epoch=1",
            "/api/v1/crowd/timeline?epoch=1",
            "/api/v1/crowd/compare?a=9&b=19&epoch=1",
            "/api/v1/tiles/11/602/770?hour=9&epoch=1",
        ] {
            let (code, body) = get(&r, &s, path);
            assert_eq!(code, 200, "{path}: {body}");
        }
        // The listing covers epochs 0..=3, oldest first, each row
        // carrying identity, provenance, and retention cost.
        let (code, body) = get(&r, &s, "/api/v1/epochs");
        assert_eq!(code, 200);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["latest"].as_u64(), Some(3));
        assert!(v["capacity"].as_u64().unwrap() >= 4);
        let rows = v["epochs"].as_array().unwrap();
        assert_eq!(rows.len(), 4);
        for (n, row) in rows.iter().enumerate() {
            assert_eq!(row["epoch"].as_u64(), Some(n as u64), "{body}");
            assert!(row["unix_ms"].as_u64().is_some());
            assert!(row["resident_bytes"].as_u64().is_some());
            let kind = row["kind"].as_str().unwrap();
            assert!(kind == "full" || kind == "delta", "{kind}");
        }
        // Epoch 0 (the cold build) is always a full checkpoint; the
        // following incremental epochs are deltas under the default
        // checkpoint cadence.
        assert_eq!(rows[0]["kind"], "full");
        assert_eq!(rows[1]["kind"], "delta");
        // The diff endpoint reports the exact per-user delta; a
        // self-diff is empty.
        let (code, body) = get(&r, &s, "/api/v1/crowd/diff?a=0&b=3");
        assert_eq!(code, 200);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["a"].as_u64(), Some(0));
        assert_eq!(v["b"].as_u64(), Some(3));
        assert_eq!(
            v["users_changed"].as_u64().unwrap() as usize,
            v["changes"].as_array().unwrap().len()
        );
        let (code, body) = get(&r, &s, "/api/v1/crowd/diff?a=2&b=2");
        assert_eq!(code, 200);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["users_changed"].as_u64(), Some(0));
        // Health and ingest stats report the deepened history.
        let (_, body) = get(&r, &s, "/api/v1/healthz");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["history_depth"].as_u64(), Some(4));
        let (_, body) = get(&r, &s, "/api/v1/ingest/stats");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["history_depth"].as_u64(), Some(4));
        assert!(v["history_capacity"].as_u64().unwrap() >= 4);
    }

    #[test]
    fn checkins_endpoint_accepts_single_object_and_rejects_garbage() {
        let s = state();
        let r = build_router();
        let one = "{\"user\":7,\"venue\":\"Test Cafe\",\"lat\":40.75,\"lon\":-73.99,\
                   \"time\":\"Tue Apr 03 13:00:00 +0000 2012\"}";
        let (code, body) = post(&r, &s, "/api/checkins", one);
        assert_eq!(code, 200, "{body}");
        assert!(body.contains("\"accepted\":1"));
        assert!(body.contains("\"queue_depth\":1"));
        let (code, _) = post(&r, &s, "/api/checkins", "not json");
        assert_eq!(code, 400);
        // Out-of-range latitude.
        let bad = "{\"user\":7,\"venue\":\"x\",\"lat\":91.0,\"lon\":0.0,\
                   \"time\":\"Tue Apr 03 13:00:00 +0000 2012\"}";
        let (code, _) = post(&r, &s, "/api/checkins", bad);
        assert_eq!(code, 400);
        // Unparseable time string.
        let bad = "{\"user\":7,\"venue\":\"x\",\"lat\":40.0,\"lon\":0.0,\"time\":\"2012-04-03\"}";
        let (code, _) = post(&r, &s, "/api/checkins", bad);
        assert_eq!(code, 400);
    }

    #[test]
    fn checkins_endpoint_backpressure_returns_503() {
        let dataset = SynthConfig::small(53).generate().unwrap();
        let mut config = crowdweb_ingest::IngestConfig::default();
        config.preprocessor = config.preprocessor.min_active_days(20);
        config.queue_capacity = 1;
        let s = AppState::with_config(dataset, config).unwrap();
        let r = build_router();
        let one = "{\"user\":7,\"venue\":\"Test Cafe\",\"lat\":40.75,\"lon\":-73.99,\
                   \"time\":\"Tue Apr 03 13:00:00 +0000 2012\"}";
        let (code, _) = post(&r, &s, "/api/checkins", one);
        assert_eq!(code, 200);
        let raw = format!(
            "POST /api/checkins HTTP/1.1\r\nContent-Length: {}\r\n\r\n{one}",
            one.len()
        );
        let req = Request::read_from(raw.as_bytes()).unwrap();
        let resp = r.route(&s, &req);
        assert_eq!(resp.status.code(), 503);
        assert!(String::from_utf8(resp.body_bytes().to_vec())
            .unwrap()
            .contains("queue full"));
        // The shed response advertises a principled backoff, and the
        // header survives serialization.
        assert_eq!(resp.retry_after, Some(super::RETRY_AFTER_SECS));
        let mut wire = Vec::new();
        resp.write_to(&mut wire).unwrap();
        let wire = String::from_utf8(wire).unwrap();
        let head = &wire[..wire.find("\r\n\r\n").unwrap()];
        assert!(head.contains("Retry-After: 1"), "{head}");
    }

    #[test]
    fn uploads_endpoint_lists_history_newest_first() {
        let s = state();
        let r = build_router();
        let (code, body) = get(&r, &s, "/api/v1/uploads");
        assert_eq!(code, 200);
        assert_eq!(body, "{\"total\":0,\"items\":[],\"next_after\":null}");
        for user in [501, 502] {
            let tsv = format!(
                "{user}\tv1\tx\tCoffee Shop\t40.75\t-73.99\t-240\tTue Apr 03 13:00:00 +0000 2012\n"
            );
            let (code, _) = post(&r, &s, "/api/v1/upload", &tsv);
            assert_eq!(code, 200);
        }
        let (code, body) = get(&r, &s, "/api/v1/uploads");
        assert_eq!(code, 200);
        let page: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(page["total"].as_u64(), Some(2));
        let rows = page["items"].as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0]["users"][0].as_u64(), Some(502));
        assert_eq!(rows[1]["users"][0].as_u64(), Some(501));
        // Pagination applies to the newest-first ordering.
        let (code, body) = get(&r, &s, "/api/v1/uploads?limit=1&offset=1");
        assert_eq!(code, 200);
        let page: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(page["total"].as_u64(), Some(2));
        assert_eq!(page["items"][0]["users"][0].as_u64(), Some(501));
        let (code, _) = get(&r, &s, "/api/v1/uploads?limit=5000");
        assert_eq!(code, 400);
    }

    #[test]
    fn hotspot_and_group_endpoints() {
        let s = state();
        let r = build_router();
        let (code, body) = get(&r, &s, "/api/hotspots");
        assert_eq!(code, 200);
        assert!(body.starts_with('['));
        let (code, body) = get(&r, &s, "/api/groups?threshold=0.5");
        assert_eq!(code, 200);
        let groups: Vec<serde_json::Value> = serde_json::from_str(&body).unwrap();
        let total: usize = groups
            .iter()
            .map(|g| g["members"].as_array().unwrap().len())
            .sum();
        assert_eq!(total, s.snapshot().patterns().len());
        let (code, _) = get(&r, &s, "/api/groups?threshold=2.0");
        assert_eq!(code, 400);
    }

    #[test]
    fn heatmap_timeline_and_flow_map_endpoints() {
        let s = state();
        let r = build_router();
        for path in [
            "/api/heatmap",
            "/api/crowd/timeline",
            "/api/crowd/flows/map?from=9&to=10",
        ] {
            let (code, body) = get(&r, &s, path);
            assert_eq!(code, 200, "{path}");
            assert!(body.starts_with("<svg"), "{path}");
        }
        let uid = s.snapshot().prepared().users()[0].raw();
        let (code, body) = get(&r, &s, &format!("/api/heatmap/{uid}"));
        assert_eq!(code, 200);
        assert!(body.starts_with("<svg"));
        let (code, _) = get(&r, &s, "/api/heatmap/999999");
        assert_eq!(code, 404);
    }

    #[test]
    fn compare_endpoint() {
        let s = state();
        let r = build_router();
        let (code, body) = get(&r, &s, "/api/crowd/compare?a=9&b=19");
        assert_eq!(code, 200);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["before_window"], "9-10 am");
        assert_eq!(v["after_window"], "7-8 pm");
        assert!(v["deltas"].is_array());
        let (code, _) = get(&r, &s, "/api/crowd/compare?a=99");
        assert_eq!(code, 400);
    }

    #[test]
    fn entropy_endpoint() {
        let s = state();
        let r = build_router();
        let uid = s.snapshot().prepared().users()[0].raw();
        let (code, body) = get(&r, &s, &format!("/api/entropy/{uid}"));
        assert_eq!(code, 200);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        let pi = v["max_predictability"].as_f64().unwrap();
        assert!((0.0..=1.0).contains(&pi));
        assert!(v["visits"].as_u64().unwrap() > 0);
        let (code, _) = get(&r, &s, "/api/entropy/999999");
        assert_eq!(code, 404);
    }

    #[test]
    fn tile_endpoint_serves_slippy_tiles() {
        let s = state();
        let r = build_router();
        // The z10 tile over Manhattan.
        let (code, body) = get(&r, &s, "/api/tiles/10/301/384?hour=9");
        assert_eq!(code, 200);
        assert!(body.starts_with("<svg"));
        // A tile over the Pacific has no cells: valid empty tile.
        let (code, body) = get(&r, &s, "/api/tiles/10/100/384?hour=9");
        assert_eq!(code, 200);
        assert_eq!(body.matches("<rect").count(), 0);
        // Out-of-range coordinates are rejected.
        let (code, _) = get(&r, &s, "/api/tiles/2/9/0");
        assert_eq!(code, 400);
        let (code, _) = get(&r, &s, "/api/tiles/abc/0/0");
        assert_eq!(code, 400);
    }

    #[test]
    fn trajectory_endpoint() {
        let s = state();
        let r = build_router();
        let uid = s.snapshot().prepared().users()[0].raw();
        let (code, body) = get(&r, &s, &format!("/api/trajectory/{uid}"));
        assert_eq!(code, 200);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert!(v["points"].as_u64().unwrap() >= 1);
        assert!(v["path_m"].as_f64().unwrap() >= 0.0);
        assert!(v["polyline"].as_str().is_some());
        assert_eq!(v["geojson"]["geometry"]["type"], "LineString");
        // Explicit date selection.
        let date = v["date"].as_str().unwrap().to_owned();
        let (code, body2) = get(&r, &s, &format!("/api/trajectory/{uid}?date={date}"));
        assert_eq!(code, 200);
        let v2: serde_json::Value = serde_json::from_str(&body2).unwrap();
        assert_eq!(v2["date"], date);
        // Errors.
        let (code, _) = get(&r, &s, &format!("/api/trajectory/{uid}?date=garbage"));
        assert_eq!(code, 400);
        let (code, _) = get(&r, &s, &format!("/api/trajectory/{uid}?date=2031-01-01"));
        assert_eq!(code, 404);
        let (code, _) = get(&r, &s, "/api/trajectory/999999");
        assert_eq!(code, 404);
    }

    /// Every error the API emits — bad params, unknown resources,
    /// router 404/405 — must carry the uniform envelope:
    /// `{"error": {"code": "<kebab-slug>", "message": ..., "status": N}}`.
    #[test]
    fn every_error_response_carries_the_uniform_envelope() {
        let s = state();
        let r = build_router();
        let cases: &[(&str, u16, &str)] = &[
            ("/api/v1/patterns/not-a-number", 400, "bad-user-id"),
            ("/api/v1/patterns/999999", 404, "unknown-user"),
            ("/api/v1/network/999999", 404, "unknown-user"),
            ("/api/v1/crowd?hour=99", 400, "bad-hour"),
            ("/api/v1/crowd?epoch=zzz", 400, "bad-epoch"),
            ("/api/v1/crowd?epoch=999", 404, "unknown-epoch"),
            ("/api/v1/crowd/map?hour=12&label=zzz", 400, "bad-label"),
            ("/api/v1/crowd/flows?from=77", 400, "bad-hour"),
            ("/api/v1/crowd/flows?epoch=999", 404, "unknown-epoch"),
            ("/api/v1/crowd/diff?a=0", 400, "bad-epoch"),
            ("/api/v1/crowd/diff?a=zzz&b=0", 400, "bad-epoch"),
            ("/api/v1/crowd/diff?a=0&b=999", 404, "unknown-epoch"),
            ("/api/v1/figures/fig99", 404, "unknown-figure"),
            ("/api/v1/upload/last", 404, "no-upload"),
            ("/api/v1/users?limit=0", 400, "bad-limit"),
            ("/api/v1/users?offset=-1", 400, "bad-offset"),
            ("/api/v1/groups?threshold=2.0", 400, "bad-threshold"),
            ("/api/v1/crowd/compare?a=99", 400, "bad-hour"),
            ("/api/v1/heatmap/999999", 404, "unknown-user"),
            ("/api/v1/entropy/999999", 404, "unknown-user"),
            ("/api/v1/trajectory/999999", 404, "unknown-user"),
            ("/api/v1/tiles/abc/0/0", 400, "bad-tile"),
            ("/api/v1/tiles/2/9/0", 400, "bad-tile"),
            // Router-level errors use the status' default slug.
            ("/definitely/not/a/route", 404, "not-found"),
        ];
        for &(path, status, code_slug) in cases {
            let (code, body) = get(&r, &s, path);
            assert_eq!(code, status, "{path}: {body}");
            let v: serde_json::Value = serde_json::from_str(&body)
                .unwrap_or_else(|e| panic!("{path}: non-JSON error body {body:?}: {e}"));
            assert_eq!(v["error"]["code"].as_str(), Some(code_slug), "{path}");
            assert!(
                !v["error"]["message"].as_str().unwrap().is_empty(),
                "{path}"
            );
            assert_eq!(v["error"]["status"].as_u64(), Some(u64::from(status)));
            let slug = v["error"]["code"].as_str().unwrap();
            assert!(
                slug.bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-'),
                "{path}: code {slug:?} is not kebab-case"
            );
        }
        // Method mismatch (405) and bad POST bodies are enveloped too.
        let (code, body) = post(&r, &s, "/api/v1/users", "");
        assert_eq!(code, 405);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["error"]["code"], "method-not-allowed");
        let (code, body) = post(&r, &s, "/api/v1/checkins", "not json");
        assert_eq!(code, 400, "{body}");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["error"]["code"], "bad-checkin");
        let (code, body) = post(&r, &s, "/api/v1/upload", "not\ttsv");
        assert_eq!(code, 400);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["error"]["code"], "bad-upload");
    }

    /// The legacy `/api/...` aliases answer with byte-identical bodies
    /// to their canonical `/api/v1/...` routes — same handler, zero
    /// drift.
    #[test]
    fn legacy_aliases_return_identical_bodies() {
        let s = state();
        let r = build_router();
        let uid = s.snapshot().prepared().users()[0].raw();
        let patterns_path = format!("patterns/{uid}");
        let entropy_path = format!("entropy/{uid}");
        let suffixes: &[&str] = &[
            "stats",
            "users?limit=3&offset=1",
            &patterns_path,
            &entropy_path,
            "crowd?hour=9",
            "crowd?hour=9&epoch=0",
            "crowd/geojson?hour=9",
            "crowd/flows?from=9&to=10",
            "crowd/diff?a=0&b=0",
            "epochs",
            "figures/fig5",
            "uploads",
            "ingest/stats",
            "healthz",
            "hotspots",
            "groups?threshold=0.5",
            // Error paths alias identically as well.
            "patterns/999999",
            "crowd?hour=99",
        ];
        for suffix in suffixes {
            let (v1_code, v1_body) = get(&r, &s, &format!("/api/v1/{suffix}"));
            let (legacy_code, legacy_body) = get(&r, &s, &format!("/api/{suffix}"));
            assert_eq!(v1_code, legacy_code, "{suffix}");
            assert_eq!(v1_body, legacy_body, "{suffix}");
        }
    }

    #[test]
    fn home_serves_frontend() {
        let s = state();
        let r = build_router();
        let (code, body) = get(&r, &s, "/");
        assert_eq!(code, 200);
        assert!(body.contains("<!DOCTYPE html>"));
        assert!(body.contains("CrowdWeb"));
    }

    /// The explicit default-city spelling answers byte-identically to
    /// the bare `/api/v1/...` route — one handler serves both.
    #[test]
    fn default_city_routes_match_the_bare_v1_routes() {
        let s = state();
        let r = build_router();
        let city = s.default_city_id().to_owned();
        for suffix in [
            "stats",
            "users?limit=3&offset=1",
            "crowd?hour=9",
            "crowd/geojson?hour=9",
            "epochs",
            "healthz",
            "hotspots",
            "ingest/stats",
            // Error paths alias identically as well.
            "patterns/999999",
            "crowd?hour=99",
        ] {
            let (v1_code, v1_body) = get(&r, &s, &format!("/api/v1/{suffix}"));
            let (city_code, city_body) = get(&r, &s, &format!("/api/v1/cities/{city}/{suffix}"));
            assert_eq!(v1_code, city_code, "{suffix}");
            assert_eq!(v1_body, city_body, "{suffix}");
        }
    }

    /// Tenant routes are isolated: each city answers from its own
    /// platform, and unregistered ids get a stable 404 envelope.
    #[test]
    fn tenant_routes_serve_isolated_cities() {
        let mut s = state();
        s.add_city(
            "tokyo",
            SynthConfig::small(99).generate().unwrap(),
            crowdweb_ingest::IngestConfig::default(),
        )
        .unwrap();
        let r = build_router();
        let (code, nyc) = get(
            &r,
            &s,
            &format!("/api/v1/cities/{}/stats", s.default_city_id()),
        );
        assert_eq!(code, 200);
        let (code, tokyo) = get(&r, &s, "/api/v1/cities/tokyo/stats");
        assert_eq!(code, 200);
        assert_ne!(nyc, tokyo, "cities must not share state");
        let (code, body) = get(&r, &s, "/api/v1/cities/atlantis/stats");
        assert_eq!(code, 404);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["error"]["code"], "unknown-city");
    }

    /// `GET /api/v1/cities` lists the registry in ascending id order,
    /// flags the default city, and aliases at `/api/cities`.
    #[test]
    fn cities_listing_reports_the_registry() {
        let mut s = state();
        s.add_city(
            "tokyo",
            SynthConfig::small(99).generate().unwrap(),
            crowdweb_ingest::IngestConfig::default(),
        )
        .unwrap();
        let r = build_router();
        let (code, body) = get(&r, &s, "/api/v1/cities");
        assert_eq!(code, 200);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["total"], 2);
        let items = v["items"].as_array().unwrap();
        assert_eq!(items[0]["id"], "nyc");
        assert_eq!(items[0]["default"].as_bool(), Some(true));
        assert_eq!(items[1]["id"], "tokyo");
        assert_eq!(items[1]["default"].as_bool(), Some(false));
        assert!(items[1]["users"].as_u64().unwrap() > 0);
        assert!(items[1]["checkins"].as_u64().unwrap() > 0);
        let (_, alias) = get(&r, &s, "/api/cities");
        assert_eq!(body, alias, "legacy alias must answer identically");
    }

    /// Served city requests increment the per-city counter; unknown
    /// ids never become labels, so cardinality is bounded by the
    /// registry.
    #[test]
    fn city_requests_increment_the_bounded_per_city_counter() {
        let s = state();
        let r = build_router();
        let city = s.default_city_id().to_owned();
        get(&r, &s, &format!("/api/v1/cities/{city}/stats"));
        // The bare spelling counts against the default city too.
        get(&r, &s, "/api/v1/stats");
        // A 404 must not mint a label.
        get(&r, &s, "/api/v1/cities/atlantis/stats");
        assert_eq!(
            s.metrics()
                .counter_value("crowdweb_http_requests_by_city_total", &[("city", &city)]),
            Some(2)
        );
        assert_eq!(
            s.metrics().counter_value(
                "crowdweb_http_requests_by_city_total",
                &[("city", "atlantis")]
            ),
            None
        );
    }

    /// Routes a GET carrying extra raw header lines (each
    /// `Name: value\r\n`-terminated) — the conditional-request helper.
    fn get_with(
        router: &Router<AppState>,
        state: &AppState,
        path: &str,
        headers: &str,
    ) -> Response {
        let req =
            Request::read_from(format!("GET {path} HTTP/1.1\r\n{headers}\r\n").as_bytes()).unwrap();
        router.route(state, &req)
    }

    /// The bulk export must emit exactly one NDJSON line per dataset
    /// check-in, in record order, as a streamed body.
    #[test]
    fn export_checkins_streams_one_ndjson_line_per_record() {
        let s = state();
        let r = build_router();
        let snap = s.snapshot();
        let total = snap.dataset().checkins().len();
        let req =
            Request::read_from("GET /api/v1/export/checkins HTTP/1.1\r\n\r\n".as_bytes()).unwrap();
        let resp = r.route(&s, &req);
        assert_eq!(resp.status.code(), 200);
        assert_eq!(resp.content_type, "application/x-ndjson");
        assert!(
            matches!(resp.body, crate::http::ResponseBody::Stream(_)),
            "the export must stream, not materialize"
        );
        let body = String::from_utf8(resp.into_body_bytes()).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), total, "one line per check-in");
        // Rows are the snapshot's records joined with their venues, in
        // dataset order.
        for (i, probe) in [0, total / 2, total - 1].into_iter().enumerate() {
            let row: serde_json::Value = serde_json::from_str(lines[probe]).unwrap();
            let c = snap.dataset().checkins()[probe];
            let v = snap.dataset().venue(c.venue()).unwrap();
            assert_eq!(row["user"].as_u64(), Some(u64::from(c.user().raw())), "{i}");
            assert_eq!(row["venue"].as_str(), Some(v.name()), "{i}");
            assert_eq!(row["time_unix"].as_i64(), Some(c.time().unix_seconds()));
        }
    }

    /// Export conditional requests and epoch pinning: matching
    /// `If-None-Match` short-circuits to an empty 304; `?epoch` only
    /// accepts the live epoch (records are not retained historically).
    #[test]
    fn export_checkins_revalidates_and_pins_the_live_epoch() {
        let s = state();
        let r = build_router();
        let req =
            Request::read_from("GET /api/v1/export/checkins HTTP/1.1\r\n\r\n".as_bytes()).unwrap();
        let resp = r.route(&s, &req);
        let etag = resp.etag.clone().expect("export carries an ETag");
        assert_eq!(etag, format!("\"{}-e0\"", s.default_city_id()));
        // Strong, weak-prefixed, list-member, and wildcard candidates
        // all revalidate (weak comparison per RFC 9110 §13.1.2).
        for candidate in [
            etag.clone(),
            format!("W/{etag}"),
            format!("\"stale\", {etag}"),
            "*".to_owned(),
        ] {
            let resp = get_with(
                &r,
                &s,
                "/api/v1/export/checkins",
                &format!("If-None-Match: {candidate}\r\n"),
            );
            assert_eq!(resp.status.code(), 304, "candidate {candidate}");
            assert_eq!(resp.etag.as_deref(), Some(etag.as_str()));
            assert!(resp.into_body_bytes().is_empty(), "a 304 has no body");
        }
        // A non-matching candidate serves the stream again.
        let resp = get_with(
            &r,
            &s,
            "/api/v1/export/checkins",
            "If-None-Match: \"other-e9\"\r\n",
        );
        assert_eq!(resp.status.code(), 200);
        // The live epoch is the only exportable one.
        let (code, _) = get(&r, &s, "/api/v1/export/checkins?epoch=0");
        assert_eq!(code, 200);
        let (code, body) = get(&r, &s, "/api/v1/export/checkins?epoch=7");
        assert_eq!(code, 404, "{body}");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["error"]["code"], "unknown-epoch");
        let (code, body) = get(&r, &s, "/api/v1/export/checkins?epoch=x");
        assert_eq!(code, 400, "{body}");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["error"]["code"], "bad-epoch");
    }

    /// The temporal crowd endpoints all tag with the serving epoch and
    /// answer 304 to a matching `If-None-Match`; publishing a new epoch
    /// rotates the tag so stale validators miss.
    #[test]
    fn crowd_endpoints_revalidate_until_the_epoch_advances() {
        let s = state();
        let r = build_router();
        let tagged = [
            "/api/v1/crowd?hour=9",
            "/api/v1/crowd/map?hour=9",
            "/api/v1/crowd/geojson?hour=9",
            "/api/v1/crowd/flows?from=9&to=10",
            "/api/v1/tiles/11/602/770?hour=9",
        ];
        let expect = format!("\"{}-e0\"", s.default_city_id());
        for path in tagged {
            let req =
                Request::read_from(format!("GET {path} HTTP/1.1\r\n\r\n").as_bytes()).unwrap();
            let resp = r.route(&s, &req);
            assert_eq!(resp.status.code(), 200, "{path}");
            assert_eq!(resp.etag.as_deref(), Some(expect.as_str()), "{path}");
            let resp = get_with(&r, &s, path, &format!("If-None-Match: {expect}\r\n"));
            assert_eq!(resp.status.code(), 304, "{path}");
        }
        // A new epoch invalidates epoch-0 validators...
        advance_epoch(&r, &s, 0);
        let resp = get_with(
            &r,
            &s,
            "/api/v1/crowd?hour=9",
            &format!("If-None-Match: {expect}\r\n"),
        );
        assert_eq!(resp.status.code(), 200, "a stale validator must miss");
        assert_eq!(
            resp.etag.as_deref(),
            Some(format!("\"{}-e1\"", s.default_city_id()).as_str())
        );
        // ...but a pinned time-travel read still revalidates against
        // the old epoch's tag: the view is immutable once published.
        let resp = get_with(
            &r,
            &s,
            "/api/v1/crowd?hour=9&epoch=0",
            &format!("If-None-Match: {expect}\r\n"),
        );
        assert_eq!(resp.status.code(), 304);
    }

    /// A cursor walk over `/users` visits exactly the full listing:
    /// pages resume strictly past `after`, each non-final page names
    /// the next cursor, and the final page's cursor is null.
    #[test]
    fn users_cursor_walk_covers_the_listing_exactly() {
        let s = state();
        let r = build_router();
        let (_, body) = get(&r, &s, "/api/v1/users");
        let full: serde_json::Value = serde_json::from_str(&body).unwrap();
        let all = full["items"].as_array().unwrap().clone();
        assert!(all.len() >= 3, "need a few users to walk over");
        assert!(
            full["next_after"].is_null(),
            "offset mode never emits a cursor: {body}"
        );
        // First page plain, then follow next_after to the end.
        let (_, body) = get(&r, &s, "/api/v1/users?limit=2");
        let first: serde_json::Value = serde_json::from_str(&body).unwrap();
        let mut walked = first["items"].as_array().unwrap().clone();
        let mut cursor = walked.last().unwrap()["user"].as_u64().unwrap();
        loop {
            let (code, body) = get(&r, &s, &format!("/api/v1/users?limit=2&after={cursor}"));
            assert_eq!(code, 200, "{body}");
            let page: serde_json::Value = serde_json::from_str(&body).unwrap();
            assert_eq!(page["total"], full["total"]);
            let items = page["items"].as_array().unwrap();
            for item in items {
                assert!(
                    item["user"].as_u64().unwrap() > cursor,
                    "pages resume strictly past the cursor"
                );
            }
            walked.extend(items.iter().cloned());
            match page["next_after"].as_u64() {
                Some(next) => {
                    assert_eq!(
                        next,
                        items.last().unwrap()["user"].as_u64().unwrap(),
                        "the cursor is the page's last id"
                    );
                    cursor = next;
                }
                None => break,
            }
        }
        assert_eq!(walked, all, "the walk must visit the listing exactly");
    }

    /// Upload cursors walk the ring newest-to-oldest by sequence id,
    /// and malformed cursors get the `bad-cursor` envelope everywhere.
    #[test]
    fn uploads_cursor_pages_and_bad_cursors_are_rejected() {
        let s = state();
        let r = build_router();
        for user in 70..74 {
            let tsv = format!(
                "{user}\tv1\tx\tCoffee Shop\t40.75\t-73.99\t-240\tTue Apr 03 13:00:00 +0000 2012\n"
            );
            let raw = format!(
                "POST /api/upload HTTP/1.1\r\nContent-Length: {}\r\n\r\n{tsv}",
                tsv.len()
            );
            let req = Request::read_from(raw.as_bytes()).unwrap();
            assert_eq!(r.route(&s, &req).status.code(), 200);
        }
        let (_, body) = get(&r, &s, "/api/v1/uploads?limit=2");
        let page: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(page["total"].as_u64(), Some(4));
        let ids: Vec<u64> = page["items"]
            .as_array()
            .unwrap()
            .iter()
            .map(|i| i["id"].as_u64().unwrap())
            .collect();
        assert_eq!(ids, vec![3, 2], "newest first, by ingest sequence");
        let (code, body) = get(&r, &s, "/api/v1/uploads?limit=2&after=2");
        assert_eq!(code, 200);
        let page: serde_json::Value = serde_json::from_str(&body).unwrap();
        let ids: Vec<u64> = page["items"]
            .as_array()
            .unwrap()
            .iter()
            .map(|i| i["id"].as_u64().unwrap())
            .collect();
        assert_eq!(ids, vec![1, 0], "the cursor resumes at the next-older row");
        assert!(page["next_after"].is_null(), "{body}");
        assert!(
            page["items"][0]["users"].as_array().is_some(),
            "upload rows keep their result shape: {body}"
        );
        for bad in [
            "/api/v1/uploads?after=abc",
            "/api/v1/uploads?after=-1",
            "/api/v1/uploads?after=1&offset=1",
            "/api/v1/users?after=abc",
            "/api/v1/users?after=1&offset=1",
        ] {
            let (code, body) = get(&r, &s, bad);
            assert_eq!(code, 400, "{bad}: {body}");
            let v: serde_json::Value = serde_json::from_str(&body).unwrap();
            assert_eq!(v["error"]["code"], "bad-cursor", "{bad}: {body}");
        }
    }
}
