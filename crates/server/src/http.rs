//! Minimal HTTP/1.1 parsing and serialization.
//!
//! Supports what the CrowdWeb API needs: GET/POST, path + query string,
//! headers, `Content-Length`-framed bodies, and HTTP/1.1 persistent
//! connections (`Connection` negotiation lives here; the lifecycle —
//! budgets, idle reaping, pipelined replies — is the reactor's).
//!
//! Responses carry a [`ResponseBody`]: either a fully materialized
//! buffer served with `Content-Length` framing, or a pull-based
//! [`BodyStream`] served with `Transfer-Encoding: chunked` framing so
//! large exports never buffer whole in the reactor. Request bodies stay
//! `Content-Length`-only; upgrades are out of scope.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

/// Maximum accepted request body (4 MiB) — an upload of a full personal
/// check-in history fits comfortably.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// Maximum accepted header section (64 KiB).
pub const MAX_HEAD_BYTES: usize = 64 * 1024;

/// Maximum accepted single head line — request line or one header
/// (8 KiB). Bounding each line keeps a newline-free byte stream from
/// growing an unbounded buffer.
pub const MAX_LINE_BYTES: usize = 8 * 1024;

/// HTTP request method (only what the API uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// GET.
    Get,
    /// POST.
    Post,
}

impl Method {
    /// Parses a method token.
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            _ => None,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
        })
    }
}

/// HTTP response status codes used by the API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatusCode {
    /// 200.
    Ok,
    /// 304.
    NotModified,
    /// 400.
    BadRequest,
    /// 404.
    NotFound,
    /// 405.
    MethodNotAllowed,
    /// 413.
    PayloadTooLarge,
    /// 500.
    InternalServerError,
    /// 503.
    ServiceUnavailable,
}

impl StatusCode {
    /// Numeric code.
    pub fn code(self) -> u16 {
        match self {
            StatusCode::Ok => 200,
            StatusCode::NotModified => 304,
            StatusCode::BadRequest => 400,
            StatusCode::NotFound => 404,
            StatusCode::MethodNotAllowed => 405,
            StatusCode::PayloadTooLarge => 413,
            StatusCode::InternalServerError => 500,
            StatusCode::ServiceUnavailable => 503,
        }
    }

    /// Reason phrase.
    pub fn reason(self) -> &'static str {
        match self {
            StatusCode::Ok => "OK",
            StatusCode::NotModified => "Not Modified",
            StatusCode::BadRequest => "Bad Request",
            StatusCode::NotFound => "Not Found",
            StatusCode::MethodNotAllowed => "Method Not Allowed",
            StatusCode::PayloadTooLarge => "Payload Too Large",
            StatusCode::InternalServerError => "Internal Server Error",
            StatusCode::ServiceUnavailable => "Service Unavailable",
        }
    }

    /// The status's kebab-case error code (`"not-found"`,
    /// `"payload-too-large"`, …) — the default `code` in the error
    /// envelope when a handler doesn't supply a more specific one.
    pub fn slug(self) -> &'static str {
        match self {
            StatusCode::Ok => "ok",
            StatusCode::NotModified => "not-modified",
            StatusCode::BadRequest => "bad-request",
            StatusCode::NotFound => "not-found",
            StatusCode::MethodNotAllowed => "method-not-allowed",
            StatusCode::PayloadTooLarge => "payload-too-large",
            StatusCode::InternalServerError => "internal-server-error",
            StatusCode::ServiceUnavailable => "service-unavailable",
        }
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Decoded path without the query string, e.g. `/api/crowd`.
    pub path: String,
    /// Decoded query parameters.
    pub query: HashMap<String, String>,
    /// Header map with lowercase names.
    pub headers: HashMap<String, String>,
    /// Request body (empty for GET).
    pub body: Vec<u8>,
    /// Whether the request line said `HTTP/1.0` — flips the default
    /// connection disposition from keep-alive to close.
    pub http10: bool,
}

impl Request {
    /// A query parameter by name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.get(name).map(String::as_str)
    }

    /// The connection disposition this request negotiates (RFC 9112
    /// §9.3): `Connection: close` always closes, `Connection:
    /// keep-alive` opts a 1.0 client in, and the bare default is
    /// keep-alive for 1.1, close for 1.0. Later tokens win when a
    /// confused client sends both.
    pub fn wants_keep_alive(&self) -> bool {
        let mut keep = !self.http10;
        if let Some(value) = self.headers.get("connection") {
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    keep = false;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    keep = true;
                }
            }
        }
        keep
    }

    /// Reads and parses one request from a stream.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` errors for malformed requests, oversized
    /// heads/bodies, or unsupported methods.
    pub fn read_from<R: Read>(reader: R) -> io::Result<Request> {
        let mut reader = BufReader::new(reader);
        // Request line: bounded and validated as UTF-8, so a hostile
        // byte stream produces a 400 instead of an unbounded buffer.
        let line = read_line_bounded(&mut reader, MAX_LINE_BYTES)?;
        if line.trim_end().is_empty() {
            return Err(bad("empty request line"));
        }
        let mut parts = line.split_whitespace();
        let method = parts
            .next()
            .and_then(Method::parse)
            .ok_or_else(|| bad("unsupported method"))?;
        let target = parts.next().ok_or_else(|| bad("missing request target"))?;
        let version = parts.next().unwrap_or("HTTP/1.1");
        if !version.starts_with("HTTP/1.") {
            return Err(bad("unsupported http version"));
        }
        let http10 = version == "HTTP/1.0";

        // Headers.
        let mut headers = HashMap::new();
        let mut head_len = 0usize;
        loop {
            let hline = read_line_bounded(&mut reader, MAX_LINE_BYTES)?;
            if hline.is_empty() {
                // EOF before the blank terminator line.
                return Err(bad("connection closed mid-headers"));
            }
            head_len += hline.len();
            if head_len > MAX_HEAD_BYTES {
                return Err(bad("header section too large"));
            }
            let trimmed = hline.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_owned();
                // Folding duplicates into the map would let the last
                // Content-Length silently win — the classic
                // request-smuggling shape. Conflicting duplicates are
                // fatal; identical repeats collapse (RFC 9112 §6.3).
                if name == "content-length" && headers.get(&name).is_some_and(|prev| *prev != value)
                {
                    return Err(bad("conflicting duplicate content-length headers"));
                }
                headers.insert(name, value);
            }
        }

        // Body.
        let content_length: usize = headers
            .get("content-length")
            .map(|v| v.parse().map_err(|_| bad("bad content-length")))
            .transpose()?
            .unwrap_or(0);
        if content_length > MAX_BODY_BYTES {
            return Err(bad("body too large"));
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;

        let (path, query) = split_target(target);
        Ok(Request {
            method,
            path,
            query,
            headers,
            body,
            http10,
        })
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
}

/// Finds the end of the request head in an accumulating byte buffer:
/// the index just past the first empty (`\r\n` or bare `\n`) line, i.e.
/// where the body begins. Returns `None` while the head is incomplete.
///
/// This mirrors [`Request::read_from`]'s line discipline (lines are
/// `\n`-terminated; a trimmed-empty line ends the head) so the evented
/// reader can detect completeness without consuming the stream, then
/// hand the full bytes to the real parser.
pub fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut start = 0;
    while start < buf.len() {
        let nl = buf[start..].iter().position(|&b| b == b'\n')?;
        let line = &buf[start..start + nl];
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        // An empty first line is also "complete": the parser rejects it
        // as "empty request line", an error the caller reaches by
        // parsing the now-complete head.
        if line.is_empty() {
            return Some(start + nl + 1);
        }
        start += nl + 1;
    }
    None
}

/// Outcome of [`scan_head`]: how many body bytes to expect, or a signal
/// that the head is malformed and the authoritative parser should run
/// immediately for its 400.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadScan {
    /// The head is plausible and declares this many body bytes
    /// (0 when `Content-Length` is absent).
    BodyBytes(usize),
    /// The head cannot be trusted (conflicting/unparseable
    /// `Content-Length`, oversized or non-UTF-8 line, declared body
    /// over [`MAX_BODY_BYTES`]): do not wait for a body — hand the
    /// bytes to [`Request::read_from`] now and surface its error.
    Malformed,
}

/// Scans a *complete* head (everything before the index returned by
/// [`find_head_end`]) for the declared body length, with the same
/// duplicate-`Content-Length` discipline as the full parser. Never
/// authoritative: on [`HeadScan::Malformed`] the caller runs the real
/// parser, whose error message is the one the client sees.
pub fn scan_head(head: &[u8]) -> HeadScan {
    let mut content_length: Option<usize> = None;
    for (i, raw_line) in head.split(|&b| b == b'\n').enumerate() {
        if raw_line.len() > MAX_LINE_BYTES {
            return HeadScan::Malformed;
        }
        let Ok(line) = std::str::from_utf8(raw_line) else {
            return HeadScan::Malformed;
        };
        if i == 0 {
            continue; // the request line carries no body framing
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            continue;
        };
        if !name.trim().eq_ignore_ascii_case("content-length") {
            continue;
        }
        let Ok(n) = value.trim().parse::<usize>() else {
            return HeadScan::Malformed;
        };
        // Identical repeats collapse; conflicting duplicates are the
        // request-smuggling shape the parser rejects — don't wait for
        // either claimed body, reject now.
        if content_length.is_some_and(|prev| prev != n) {
            return HeadScan::Malformed;
        }
        if n > MAX_BODY_BYTES {
            return HeadScan::Malformed;
        }
        content_length = Some(n);
    }
    HeadScan::BodyBytes(content_length.unwrap_or(0))
}

/// Scans a complete head for the connection disposition the client
/// asked for, mirroring [`Request::wants_keep_alive`]. Used by the
/// reactor when it answers *without* running the full parser (the
/// worker-queue-full 503 shed path), so a shed response under
/// keep-alive does not kill a healthy client's pipeline. Agreement
/// with the parser is unit-tested.
pub fn scan_wants_keep_alive(head: &[u8]) -> bool {
    let mut keep = true;
    for (i, raw_line) in head.split(|&b| b == b'\n').enumerate() {
        let Ok(line) = std::str::from_utf8(raw_line) else {
            continue;
        };
        let trimmed = line.trim_end();
        if i == 0 {
            keep = !trimmed.ends_with("HTTP/1.0");
            continue;
        }
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            continue;
        };
        if !name.trim().eq_ignore_ascii_case("connection") {
            continue;
        }
        for token in value.split(',') {
            let token = token.trim();
            if token.eq_ignore_ascii_case("close") {
                keep = false;
            } else if token.eq_ignore_ascii_case("keep-alive") {
                keep = true;
            }
        }
    }
    keep
}

/// Reads one `\n`-terminated line of at most `limit` bytes. Returns an
/// empty string at EOF; errors on an over-long line or non-UTF-8 bytes.
fn read_line_bounded<R: BufRead>(reader: &mut R, limit: usize) -> io::Result<String> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            break; // EOF
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                buf.extend_from_slice(&available[..=pos]);
                reader.consume(pos + 1);
                break;
            }
            None => {
                buf.extend_from_slice(available);
                let n = available.len();
                reader.consume(n);
            }
        }
        if buf.len() > limit {
            return Err(bad("head line too long"));
        }
    }
    if buf.len() > limit {
        return Err(bad("head line too long"));
    }
    String::from_utf8(buf).map_err(|_| bad("head line is not valid utf-8"))
}

/// Splits a request target into decoded path and query map.
fn split_target(target: &str) -> (String, HashMap<String, String>) {
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let mut query = HashMap::new();
    if let Some(q) = raw_query {
        for pair in q.split('&') {
            if pair.is_empty() {
                continue;
            }
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            // Query components use the form-urlencoded convention where
            // '+' means space; paths do not (RFC 3986: '+' is literal).
            query.insert(
                percent_decode(&k.replace('+', "%20")),
                percent_decode(&v.replace('+', "%20")),
            );
        }
    }
    (percent_decode(raw_path), query)
}

/// Decodes `%XX` escapes. `+` passes through literally (RFC 3986);
/// query parsing pre-translates form-encoded `+` before calling this.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                // Valid only when two hex digits follow; otherwise the
                // '%' passes through literally.
                if let Some(hex) = bytes.get(i + 1..i + 3) {
                    if let Ok(v) = u8::from_str_radix(std::str::from_utf8(hex).unwrap_or("zz"), 16)
                    {
                        out.push(v);
                        i += 3;
                        continue;
                    }
                }
                out.push(b'%');
                i += 1;
            }
            other => {
                out.push(other);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A pull-based producer of response body chunks, served with
/// `Transfer-Encoding: chunked` framing.
///
/// The reactor polls `next_chunk` only when the socket is writable and
/// the previously encoded bytes have drained, so a stalled consumer
/// parks the producer instead of forcing the server to buffer: peak
/// per-connection buffering is bounded by the reactor's chunk budget
/// plus one chunk.
pub trait BodyStream: Send {
    /// The next chunk of body bytes, `None` when the body is complete.
    ///
    /// # Errors
    ///
    /// A mid-stream error aborts the response: the connection is torn
    /// down *without* the terminal `0\r\n\r\n` chunk, so the client's
    /// chunked decoder observes the truncation instead of silently
    /// accepting a short body.
    fn next_chunk(&mut self) -> io::Result<Option<Vec<u8>>>;
}

/// A response body: fully materialized (`Content-Length` framing,
/// today's path) or streamed chunk by chunk (`Transfer-Encoding:
/// chunked`).
pub enum ResponseBody {
    /// The whole body, length known up front.
    Full(Vec<u8>),
    /// A pull-based chunk producer; total length unknown.
    Stream(Box<dyn BodyStream>),
}

impl ResponseBody {
    /// Whether this body is streamed (chunked framing on the wire).
    pub fn is_stream(&self) -> bool {
        matches!(self, ResponseBody::Stream(_))
    }

    /// The body length known at serialization time: the buffer length
    /// for [`ResponseBody::Full`], `0` for streams (streamed bytes are
    /// accounted separately as chunks flush).
    pub fn len_hint(&self) -> usize {
        match self {
            ResponseBody::Full(bytes) => bytes.len(),
            ResponseBody::Stream(_) => 0,
        }
    }
}

impl fmt::Debug for ResponseBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResponseBody::Full(bytes) => write!(f, "Full({} bytes)", bytes.len()),
            ResponseBody::Stream(_) => f.write_str("Stream(..)"),
        }
    }
}

impl From<Vec<u8>> for ResponseBody {
    fn from(bytes: Vec<u8>) -> ResponseBody {
        ResponseBody::Full(bytes)
    }
}

/// The terminal chunk closing a chunked body: a zero-length chunk plus
/// the empty trailer section. Its absence at connection close is how a
/// client detects a truncated stream.
pub const LAST_CHUNK: &[u8] = b"0\r\n\r\n";

/// Appends one chunk of `data` to `out` in HTTP/1.1 chunked framing:
/// hex size line, data, CRLF. Callers must not pass empty data — a
/// zero-size chunk is the body terminator ([`LAST_CHUNK`]).
pub fn encode_chunk(out: &mut Vec<u8>, data: &[u8]) {
    debug_assert!(!data.is_empty(), "empty chunk would terminate the body");
    out.extend_from_slice(format!("{:x}\r\n", data.len()).as_bytes());
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
}

/// Target encoded size of one streamed chunk. Large enough to amortize
/// framing and syscalls, small enough that per-connection buffering
/// stays modest.
pub const STREAM_CHUNK_BYTES: usize = 64 * 1024;

/// A [`BodyStream`] over an already materialized buffer, yielding
/// [`STREAM_CHUNK_BYTES`]-sized windows. This ports buffer-producing
/// handlers (SVG maps, GeoJSON) onto chunked framing without rewriting
/// their renderers as incremental producers.
pub struct ChunkedBytes {
    bytes: Vec<u8>,
    at: usize,
}

impl ChunkedBytes {
    /// Wraps `bytes` for chunk-by-chunk serving.
    pub fn new(bytes: Vec<u8>) -> ChunkedBytes {
        ChunkedBytes { bytes, at: 0 }
    }
}

impl BodyStream for ChunkedBytes {
    fn next_chunk(&mut self) -> io::Result<Option<Vec<u8>>> {
        if self.at >= self.bytes.len() {
            return Ok(None);
        }
        let end = (self.at + STREAM_CHUNK_BYTES).min(self.bytes.len());
        let chunk = self.bytes[self.at..end].to_vec();
        self.at = end;
        Ok(Some(chunk))
    }
}

/// An HTTP response under construction.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: StatusCode,
    /// Content type header value.
    pub content_type: String,
    /// Optional `Retry-After` header value in seconds. Set on 503
    /// load-shedding responses (queue-full, worker_queue_full) so
    /// clients back off a principled amount instead of guessing.
    pub retry_after: Option<u32>,
    /// Optional `ETag` header value (already quoted). Temporal crowd
    /// endpoints set it from the serving snapshot's city + epoch so
    /// pollers can revalidate with `If-None-Match` instead of
    /// re-downloading identical epochs.
    pub etag: Option<String>,
    /// Response body: materialized or streamed.
    pub body: ResponseBody,
}

impl Response {
    /// A 200 response with a JSON body.
    pub fn json(body: String) -> Response {
        Response {
            status: StatusCode::Ok,
            content_type: "application/json; charset=utf-8".to_owned(),
            retry_after: None,
            etag: None,
            body: ResponseBody::Full(body.into_bytes()),
        }
    }

    /// A 200 response with an HTML body.
    pub fn html(body: String) -> Response {
        Response {
            status: StatusCode::Ok,
            content_type: "text/html; charset=utf-8".to_owned(),
            retry_after: None,
            etag: None,
            body: ResponseBody::Full(body.into_bytes()),
        }
    }

    /// A 200 response with a plain-text body (Prometheus text
    /// exposition format version 0.0.4).
    pub fn text(body: String) -> Response {
        Response {
            status: StatusCode::Ok,
            content_type: "text/plain; version=0.0.4; charset=utf-8".to_owned(),
            retry_after: None,
            etag: None,
            body: ResponseBody::Full(body.into_bytes()),
        }
    }

    /// A 200 response with an SVG body.
    pub fn svg(body: String) -> Response {
        Response {
            status: StatusCode::Ok,
            content_type: "image/svg+xml".to_owned(),
            retry_after: None,
            etag: None,
            body: ResponseBody::Full(body.into_bytes()),
        }
    }

    /// A 200 response streaming `body` with chunked framing.
    pub fn stream(content_type: &str, body: Box<dyn BodyStream>) -> Response {
        Response {
            status: StatusCode::Ok,
            content_type: content_type.to_owned(),
            retry_after: None,
            etag: None,
            body: ResponseBody::Stream(body),
        }
    }

    /// An empty 304 revalidation response carrying the matching `ETag`.
    pub fn not_modified(etag: &str) -> Response {
        Response {
            status: StatusCode::NotModified,
            content_type: "application/json; charset=utf-8".to_owned(),
            retry_after: None,
            etag: Some(etag.to_owned()),
            body: ResponseBody::Full(Vec::new()),
        }
    }

    /// An error response carrying the uniform envelope with the
    /// status's default code ([`StatusCode::slug`]). Every error body
    /// the server emits — router 404/405, reactor 400/413/503, handler
    /// errors — goes through here or [`Response::error_with_code`], so
    /// clients can always parse `error.code` / `error.message` /
    /// `error.status`.
    pub fn error(status: StatusCode, message: &str) -> Response {
        Response::error_with_code(status, status.slug(), message)
    }

    /// An error response with the uniform envelope and an explicit
    /// machine-readable code:
    ///
    /// ```json
    /// {"error": {"code": "<kebab-slug>", "message": "...", "status": 404}}
    /// ```
    pub fn error_with_code(status: StatusCode, code: &str, message: &str) -> Response {
        debug_assert!(
            !code.is_empty()
                && code
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-'),
            "error codes are kebab-case slugs, got {code:?}"
        );
        Response {
            status,
            content_type: "application/json; charset=utf-8".to_owned(),
            retry_after: None,
            etag: None,
            body: ResponseBody::Full(
                format!(
                    "{{\"error\":{{\"code\":{},\"message\":{},\"status\":{}}}}}",
                    serde_json::to_string(code).unwrap_or_else(|_| "\"error\"".into()),
                    serde_json::to_string(message).unwrap_or_else(|_| "\"error\"".into()),
                    status.code()
                )
                .into_bytes(),
            ),
        }
    }

    /// Attaches a `Retry-After` header (seconds). Used by the 503
    /// load-shedding paths so backoff is advertised, not guessed.
    #[must_use]
    pub fn with_retry_after(mut self, seconds: u32) -> Response {
        self.retry_after = Some(seconds);
        self
    }

    /// Attaches an `ETag` header value (caller supplies the quotes).
    #[must_use]
    pub fn with_etag(mut self, etag: &str) -> Response {
        self.etag = Some(etag.to_owned());
        self
    }

    /// The materialized body bytes: the buffer for
    /// [`ResponseBody::Full`], empty for streams (which have not
    /// produced anything yet).
    pub fn body_bytes(&self) -> &[u8] {
        match &self.body {
            ResponseBody::Full(bytes) => bytes,
            ResponseBody::Stream(_) => &[],
        }
    }

    /// Consumes the response and materializes its body: the buffer for
    /// [`ResponseBody::Full`], or the concatenation of every chunk for
    /// streams. Test and diagnostic convenience — the serving path
    /// never collects a stream.
    ///
    /// # Panics
    ///
    /// Panics when a streamed producer errors mid-body.
    pub fn into_body_bytes(self) -> Vec<u8> {
        match self.body {
            ResponseBody::Full(bytes) => bytes,
            ResponseBody::Stream(mut stream) => {
                let mut out = Vec::new();
                while let Some(chunk) = stream.next_chunk().expect("body stream failed") {
                    out.extend_from_slice(&chunk);
                }
                out
            }
        }
    }

    /// Serializes the response head: status line, `Content-Type`, the
    /// body framing header (`Content-Length` for [`ResponseBody::Full`],
    /// `Transfer-Encoding: chunked` for streams), `Connection`,
    /// `Access-Control-Allow-Origin`, then the optional `Retry-After` /
    /// `ETag` headers and the blank separator line.
    pub fn head_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let framing = match &self.body {
            ResponseBody::Full(bytes) => format!("Content-Length: {}", bytes.len()),
            ResponseBody::Stream(_) => "Transfer-Encoding: chunked".to_owned(),
        };
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\n{}\r\nConnection: {}\r\nAccess-Control-Allow-Origin: *\r\n",
            self.status.code(),
            self.status.reason(),
            self.content_type,
            framing,
            if keep_alive { "keep-alive" } else { "close" }
        );
        if let Some(seconds) = self.retry_after {
            head.push_str(&format!("Retry-After: {seconds}\r\n"));
        }
        if let Some(etag) = &self.etag {
            head.push_str(&format!("ETag: {etag}\r\n"));
        }
        head.push_str("\r\n");
        head.into_bytes()
    }

    /// Splits the response into its serialized head and its body for
    /// the reactor's write state machine: a `Full` body is appended to
    /// the head buffer verbatim, a `Stream` body is pulled and
    /// chunk-encoded as the socket drains.
    pub fn into_head_and_body(self, keep_alive: bool) -> (Vec<u8>, ResponseBody) {
        (self.head_bytes(keep_alive), self.body)
    }

    /// Writes the response with closing semantics (`Connection:
    /// close`) — the one-shot shape every pre-keep-alive caller
    /// expects. The reactor threads the negotiated disposition through
    /// [`Response::into_head_and_body`] instead.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the underlying stream.
    pub fn write_to<W: Write>(self, writer: W) -> io::Result<()> {
        self.write_to_with(writer, false)
    }

    /// Writes the response, announcing the negotiated connection
    /// disposition: `Connection: keep-alive` when the connection
    /// persists for another request, `Connection: close` on the final
    /// response before the server hangs up. Streamed bodies are drained
    /// synchronously in chunked framing; a producer error propagates
    /// *without* the terminal chunk, mirroring the reactor's
    /// abort-on-error contract.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the underlying stream and from a
    /// streamed body's producer.
    pub fn write_to_with<W: Write>(self, mut writer: W, keep_alive: bool) -> io::Result<()> {
        let (head, body) = self.into_head_and_body(keep_alive);
        writer.write_all(&head)?;
        match body {
            ResponseBody::Full(bytes) => writer.write_all(&bytes)?,
            ResponseBody::Stream(mut stream) => {
                let mut frame = Vec::new();
                while let Some(chunk) = stream.next_chunk()? {
                    if chunk.is_empty() {
                        continue;
                    }
                    frame.clear();
                    encode_chunk(&mut frame, &chunk);
                    writer.write_all(&frame)?;
                }
                writer.write_all(LAST_CHUNK)?;
            }
        }
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn parse(raw: &str) -> io::Result<Request> {
        Request::read_from(raw.as_bytes())
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse("GET /api/crowd?hour=9&top=5 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/api/crowd");
        assert_eq!(req.query_param("hour"), Some("9"));
        assert_eq!(req.query_param("top"), Some("5"));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(req.headers.get("host").map(String::as_str), Some("x"));
    }

    #[test]
    fn parses_post_body() {
        let req = parse("POST /api/upload HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn rejects_bad_requests() {
        assert!(parse("\r\n").is_err());
        assert!(parse("DELETE /x HTTP/1.1\r\n\r\n").is_err());
        assert!(parse("GET /x SPDY/3\r\n\r\n").is_err());
        assert!(parse("POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n").is_err());
        // Truncated body.
        assert!(parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").is_err());
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(parse(&raw).is_err());
    }

    #[test]
    fn rejects_missing_header_terminator() {
        // EOF arrives before the blank line ending the header section.
        assert!(parse("GET /x HTTP/1.1\r\nHost: x\r\n").is_err());
        assert!(parse("GET /x HTTP/1.1\r\n").is_err());
    }

    #[test]
    fn rejects_overlong_request_line() {
        // A newline-free request line must error once past the line
        // cap instead of buffering forever.
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE_BYTES));
        assert!(parse(&raw).is_err());
        // And the same stream without any newline at all.
        let raw = "G".repeat(MAX_LINE_BYTES + 100);
        assert!(parse(&raw).is_err());
    }

    #[test]
    fn rejects_non_utf8_request_line() {
        let mut raw = b"GET /\xff\xfe HTTP/1.1\r\n\r\n".to_vec();
        assert!(Request::read_from(raw.as_slice()).is_err());
        // Non-UTF-8 header line as well.
        raw = b"GET /x HTTP/1.1\r\nX-Bin: \xc3\x28\r\n\r\n".to_vec();
        assert!(Request::read_from(raw.as_slice()).is_err());
    }

    #[test]
    fn rejects_oversized_header_section() {
        let mut raw = String::from("GET /x HTTP/1.1\r\n");
        // Many individually small header lines that sum past the cap.
        for i in 0..((MAX_HEAD_BYTES / 80) + 2) {
            raw.push_str(&format!("X-Pad-{i}: {}\r\n", "p".repeat(80)));
        }
        raw.push_str("\r\n");
        assert!(parse(&raw).is_err());
    }

    #[test]
    fn percent_decoding() {
        // '+' is literal in generic decoding (RFC 3986 paths).
        assert_eq!(percent_decode("a%20b+c"), "a b+c");
        assert_eq!(percent_decode("no-escapes"), "no-escapes");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
        assert_eq!(percent_decode("%41"), "A");
        // Trailing percent.
        assert_eq!(percent_decode("x%"), "x%");
    }

    #[test]
    fn plus_is_space_in_query_but_literal_in_path() {
        let req = parse("GET /api/a+b?q=x+y HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/api/a+b");
        assert_eq!(req.query_param("q"), Some("x y"));
    }

    #[test]
    fn conflicting_duplicate_content_length_is_rejected() {
        // Pre-fix, HashMap folding let the second value silently win —
        // a request-smuggling shape where a front proxy and this parser
        // disagree on where the body ends.
        let raw = "POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 3\r\n\r\nhello";
        let err = parse(raw).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("content-length"), "{err}");
        // Identical repeats collapse harmlessly.
        let raw = "POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello";
        assert_eq!(parse(raw).unwrap().body, b"hello");
        // Other headers still last-win without error.
        let raw = "GET /x HTTP/1.1\r\nX-Tag: a\r\nX-Tag: b\r\n\r\n";
        assert_eq!(
            parse(raw).unwrap().headers.get("x-tag").map(String::as_str),
            Some("b")
        );
    }

    /// Percent-encodes every byte outside the RFC 3986 unreserved set,
    /// so decoding is an exact inverse for any input string.
    fn percent_encode(s: &str) -> String {
        let mut out = String::new();
        for &b in s.as_bytes() {
            match b {
                b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                    out.push(b as char);
                }
                _ => out.push_str(&format!("%{b:02X}")),
            }
        }
        out
    }

    /// Character palette for generated strings: unreserved, reserved,
    /// space/plus (the tricky pair), '%', and multi-byte UTF-8.
    const PALETTE: &[char] = &[
        'a', 'Z', '0', '9', '-', '_', '.', '~', ' ', '+', '%', '&', '=', '?', '/', '#', '"', 'é',
        '日',
    ];

    proptest! {
        #[test]
        fn prop_percent_encode_decode_round_trips(
            indices in proptest::collection::vec(0usize..PALETTE.len(), 0..24)
        ) {
            let original: String = indices.iter().map(|&i| PALETTE[i]).collect();
            // Generic decoding: '+' must survive literally ('+' is an
            // RFC 3986 path character, not a space).
            prop_assert_eq!(percent_decode(&percent_encode(&original)), original);
        }

        #[test]
        fn prop_split_target_round_trips_path_and_query(
            path_idx in proptest::collection::vec(0usize..PALETTE.len(), 0..16),
            value_idx in proptest::collection::vec(0usize..PALETTE.len(), 0..16)
        ) {
            let path: String = path_idx.iter().map(|&i| PALETTE[i]).collect();
            let value: String = value_idx.iter().map(|&i| PALETTE[i]).collect();
            let target = format!("/{}?k={}", percent_encode(&path), percent_encode(&value));
            let (decoded_path, query) = split_target(&target);
            prop_assert_eq!(decoded_path, format!("/{path}"));
            prop_assert_eq!(query.get("k").cloned(), Some(value.clone()));
            // Form-encoded convention: '+' in the raw query means
            // space, while %2B stays a literal plus — swapping the
            // space escapes for '+' must decode identically.
            let plus_form = format!("/x?k={}", percent_encode(&value).replace("%20", "+"));
            let (_, plus_query) = split_target(&plus_form);
            prop_assert_eq!(plus_query.get("k").cloned(), Some(value));
        }
    }

    #[test]
    fn head_end_detection_matches_the_parser() {
        // Incomplete heads.
        assert_eq!(find_head_end(b""), None);
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\nHost: x\r\n"), None);
        // Complete heads, CRLF and bare LF.
        let raw = b"GET / HTTP/1.1\r\nHost: x\r\n\r\nBODY";
        assert_eq!(find_head_end(raw), Some(raw.len() - 4));
        let raw = b"GET / HTTP/1.1\nHost: x\n\nBODY";
        assert_eq!(find_head_end(raw), Some(raw.len() - 4));
        // An empty first line is complete (the parser rejects it).
        assert_eq!(find_head_end(b"\r\nrest"), Some(2));
        // Binary junk with no newline never completes.
        assert_eq!(find_head_end(&[0xff; 64]), None);
    }

    #[test]
    fn head_scan_extracts_body_framing() {
        assert_eq!(
            scan_head(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n"),
            HeadScan::BodyBytes(0)
        );
        assert_eq!(
            scan_head(b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\n"),
            HeadScan::BodyBytes(5)
        );
        // Case-insensitive name, whitespace-tolerant value.
        assert_eq!(
            scan_head(b"POST /x HTTP/1.1\r\ncontent-length:  7 \r\n\r\n"),
            HeadScan::BodyBytes(7)
        );
        // Identical repeats collapse like the parser's.
        assert_eq!(
            scan_head(b"POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\n"),
            HeadScan::BodyBytes(5)
        );
    }

    #[test]
    fn head_scan_flags_untrustworthy_heads() {
        // Conflicting duplicates (request-smuggling shape).
        assert_eq!(
            scan_head(b"POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 3\r\n\r\n"),
            HeadScan::Malformed
        );
        // Unparseable length.
        assert_eq!(
            scan_head(b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            HeadScan::Malformed
        );
        // Declared body over the cap.
        let huge = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(scan_head(huge.as_bytes()), HeadScan::Malformed);
        // Non-UTF-8 header line.
        assert_eq!(
            scan_head(b"GET /x HTTP/1.1\r\nX-Bin: \xc3\x28\r\n\r\n"),
            HeadScan::Malformed
        );
        // A single over-long line.
        let long = format!(
            "GET /x HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "p".repeat(MAX_LINE_BYTES)
        );
        assert_eq!(scan_head(long.as_bytes()), HeadScan::Malformed);
    }

    #[test]
    fn scanned_complete_requests_parse_identically() {
        // Completeness detection + real parse must agree end to end.
        let raw = b"POST /api/upload HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let head_end = find_head_end(raw).unwrap();
        let HeadScan::BodyBytes(n) = scan_head(&raw[..head_end]) else {
            panic!("well-formed head misflagged");
        };
        assert_eq!(head_end + n, raw.len());
        let req = Request::read_from(&raw[..head_end + n]).unwrap();
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn keep_alive_negotiation_follows_version_and_header() {
        // HTTP/1.1 defaults to keep-alive; 1.0 defaults to close.
        assert!(parse("GET /x HTTP/1.1\r\n\r\n").unwrap().wants_keep_alive());
        assert!(!parse("GET /x HTTP/1.0\r\n\r\n").unwrap().wants_keep_alive());
        // Explicit headers override either default.
        assert!(!parse("GET /x HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .wants_keep_alive());
        assert!(parse("GET /x HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .wants_keep_alive());
        // Case-insensitive, token-list tolerant.
        assert!(
            !parse("GET /x HTTP/1.1\r\nConnection: Keep-Alive, Close\r\n\r\n")
                .unwrap()
                .wants_keep_alive()
        );
    }

    #[test]
    fn head_scan_agrees_with_the_parser_on_disposition() {
        for raw in [
            "GET /x HTTP/1.1\r\nHost: a\r\n\r\n",
            "GET /x HTTP/1.0\r\nHost: a\r\n\r\n",
            "GET /x HTTP/1.1\r\nConnection: close\r\n\r\n",
            "GET /x HTTP/1.0\r\nconnection: keep-alive\r\n\r\n",
            "POST /x HTTP/1.1\r\nConnection: Keep-Alive, Close\r\nContent-Length: 0\r\n\r\n",
        ] {
            let parsed = parse(raw).unwrap().wants_keep_alive();
            let scanned = scan_wants_keep_alive(raw.as_bytes());
            assert_eq!(parsed, scanned, "parser/scanner disagree on {raw:?}");
        }
    }

    #[test]
    fn response_announces_the_negotiated_disposition() {
        let mut keep = Vec::new();
        Response::json("{}".to_owned())
            .write_to_with(&mut keep, true)
            .unwrap();
        let keep = String::from_utf8(keep).unwrap();
        assert!(keep.contains("\r\nConnection: keep-alive\r\n"), "{keep}");
        let mut close = Vec::new();
        Response::json("{}".to_owned())
            .write_to_with(&mut close, false)
            .unwrap();
        let close = String::from_utf8(close).unwrap();
        assert!(close.contains("\r\nConnection: close\r\n"), "{close}");
        // The legacy entry point stays one-shot.
        let mut legacy = Vec::new();
        Response::json("{}".to_owned())
            .write_to(&mut legacy)
            .unwrap();
        assert!(String::from_utf8(legacy)
            .unwrap()
            .contains("\r\nConnection: close\r\n"));
    }

    #[test]
    fn text_response_has_prometheus_content_type() {
        let r = Response::text("metric 1\n".to_owned());
        assert_eq!(r.status, StatusCode::Ok);
        assert!(r.content_type.starts_with("text/plain"));
        assert!(r.content_type.contains("version=0.0.4"));
    }

    #[test]
    fn response_serialization() {
        let mut buf = Vec::new();
        Response::json("{\"ok\":true}".to_owned())
            .write_to(&mut buf)
            .unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("Content-Length: 11"));
        assert!(s.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn retry_after_header_is_emitted_when_set() {
        let mut buf = Vec::new();
        Response::error(StatusCode::ServiceUnavailable, "queue full")
            .with_retry_after(2)
            .write_to(&mut buf)
            .unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(s.contains("\r\nRetry-After: 2\r\n"));
        // The header belongs to the head, before the blank separator.
        let head_end = s.find("\r\n\r\n").unwrap();
        assert!(s[..head_end].contains("Retry-After: 2"));
    }

    #[test]
    fn retry_after_header_is_absent_by_default() {
        let mut buf = Vec::new();
        Response::json("{}".to_owned()).write_to(&mut buf).unwrap();
        assert!(!String::from_utf8(buf).unwrap().contains("Retry-After"));
    }

    #[test]
    fn error_response_is_enveloped_with_status_slug() {
        let r = Response::error(StatusCode::NotFound, "no such user");
        assert_eq!(r.status.code(), 404);
        let body = String::from_utf8(r.into_body_bytes()).unwrap();
        let v: serde_json::Value = serde_json::from_str(&body).expect("error body is valid JSON");
        assert_eq!(v["error"]["code"], "not-found");
        assert_eq!(v["error"]["message"], "no such user");
        assert_eq!(v["error"]["status"], 404);
    }

    #[test]
    fn error_with_code_overrides_the_slug() {
        let r = Response::error_with_code(StatusCode::BadRequest, "bad-hour", "hour must be 0-23");
        let v: serde_json::Value =
            serde_json::from_str(&String::from_utf8(r.into_body_bytes()).unwrap()).unwrap();
        assert_eq!(v["error"]["code"], "bad-hour");
        assert_eq!(v["error"]["message"], "hour must be 0-23");
        assert_eq!(v["error"]["status"], 400);
    }

    #[test]
    fn error_envelope_escapes_hostile_messages() {
        let r = Response::error(StatusCode::BadRequest, "a \"quoted\" message\nwith newline");
        let v: serde_json::Value =
            serde_json::from_str(&String::from_utf8(r.into_body_bytes()).unwrap()).unwrap();
        assert_eq!(v["error"]["message"], "a \"quoted\" message\nwith newline");
    }

    #[test]
    fn status_codes_and_reasons() {
        assert_eq!(StatusCode::Ok.code(), 200);
        assert_eq!(StatusCode::NotModified.code(), 304);
        assert_eq!(StatusCode::NotModified.reason(), "Not Modified");
        assert_eq!(StatusCode::NotModified.slug(), "not-modified");
        assert_eq!(StatusCode::BadRequest.reason(), "Bad Request");
        assert_eq!(StatusCode::PayloadTooLarge.code(), 413);
        assert_eq!(StatusCode::ServiceUnavailable.code(), 503);
        assert_eq!(
            StatusCode::ServiceUnavailable.reason(),
            "Service Unavailable"
        );
        assert_eq!(StatusCode::ServiceUnavailable.slug(), "service-unavailable");
        assert_eq!(StatusCode::MethodNotAllowed.slug(), "method-not-allowed");
    }

    #[test]
    fn chunk_encoding_uses_hex_sizes_and_crlf_framing() {
        let mut out = Vec::new();
        encode_chunk(&mut out, b"hello");
        encode_chunk(&mut out, &vec![b'x'; 255]);
        assert!(out.starts_with(b"5\r\nhello\r\nff\r\n"), "{out:?}");
        assert!(out.ends_with(b"\r\n"));
        assert_eq!(LAST_CHUNK, b"0\r\n\r\n");
    }

    #[test]
    fn chunked_bytes_yields_bounded_windows_then_none() {
        let mut s = ChunkedBytes::new(vec![7u8; STREAM_CHUNK_BYTES + 10]);
        assert_eq!(s.next_chunk().unwrap().unwrap().len(), STREAM_CHUNK_BYTES);
        assert_eq!(s.next_chunk().unwrap().unwrap().len(), 10);
        assert!(s.next_chunk().unwrap().is_none());
        // An empty buffer streams as an immediately complete body.
        assert!(ChunkedBytes::new(Vec::new())
            .next_chunk()
            .unwrap()
            .is_none());
    }

    #[test]
    fn streamed_response_head_declares_chunked_framing() {
        let r = Response::stream(
            "application/x-ndjson",
            Box::new(ChunkedBytes::new(b"{}\n".to_vec())),
        );
        let head = String::from_utf8(r.head_bytes(true)).unwrap();
        assert!(
            head.contains("\r\nTransfer-Encoding: chunked\r\n"),
            "{head}"
        );
        assert!(!head.contains("Content-Length"), "{head}");
        assert!(head.contains("\r\nConnection: keep-alive\r\n"), "{head}");
    }

    #[test]
    fn streamed_response_serializes_with_terminal_chunk() {
        let body: Vec<u8> = b"abcdef".to_vec();
        let mut buf = Vec::new();
        Response::stream("text/plain", Box::new(ChunkedBytes::new(body)))
            .write_to_with(&mut buf, false)
            .unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("\r\n\r\n6\r\nabcdef\r\n0\r\n\r\n"), "{s}");
    }

    #[test]
    fn collected_stream_body_matches_the_source_bytes() {
        let body = vec![42u8; 3 * STREAM_CHUNK_BYTES + 17];
        let r = Response::stream("text/plain", Box::new(ChunkedBytes::new(body.clone())));
        assert_eq!(r.into_body_bytes(), body);
    }

    #[test]
    fn etag_header_is_emitted_when_set_and_absent_otherwise() {
        let tagged = Response::json("{}".to_owned()).with_etag("\"nyc-e7\"");
        let head = String::from_utf8(tagged.head_bytes(true)).unwrap();
        assert!(head.contains("\r\nETag: \"nyc-e7\"\r\n"), "{head}");
        let plain = String::from_utf8(Response::json("{}".to_owned()).head_bytes(true)).unwrap();
        assert!(!plain.contains("ETag"), "{plain}");
    }

    #[test]
    fn not_modified_response_is_empty_with_etag() {
        let mut buf = Vec::new();
        Response::not_modified("\"nyc-e7\"")
            .write_to_with(&mut buf, true)
            .unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("HTTP/1.1 304 Not Modified\r\n"), "{s}");
        assert!(s.contains("\r\nContent-Length: 0\r\n"), "{s}");
        assert!(s.contains("\r\nETag: \"nyc-e7\"\r\n"), "{s}");
        assert!(s.ends_with("\r\n\r\n"), "{s}");
    }

    #[test]
    fn mid_stream_error_propagates_without_terminal_chunk() {
        struct Failing(u32);
        impl BodyStream for Failing {
            fn next_chunk(&mut self) -> io::Result<Option<Vec<u8>>> {
                self.0 += 1;
                if self.0 == 1 {
                    Ok(Some(b"partial".to_vec()))
                } else {
                    Err(io::Error::other("producer died"))
                }
            }
        }
        let mut buf = Vec::new();
        let err = Response::stream("text/plain", Box::new(Failing(0)))
            .write_to_with(&mut buf, false)
            .unwrap_err();
        assert_eq!(err.to_string(), "producer died");
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("7\r\npartial\r\n"), "{s}");
        assert!(
            !s.contains("0\r\n\r\n"),
            "terminal chunk must be absent: {s}"
        );
    }
}
