//! Application state: everything the handlers serve.

use crowdweb_crowd::{CrowdModel, PipelineDriver, TimeWindows};
use crowdweb_dataset::{Dataset, UserId};
use crowdweb_exec::Parallelism;
use crowdweb_geo::{BoundingBox, MicrocellGrid};
use crowdweb_mobility::{PatternMiner, PlaceGraph, UserPatterns};
use crowdweb_prep::{LabelScheme, Labeler, Prepared, Preprocessor, WindowChoice};
use parking_lot::RwLock;
use std::error::Error;

/// A mined upload from a booth visitor ("if any audience member is
/// willing to share their check-in history, we can upload it to the
/// platform and visualize their patterns").
#[derive(Debug, Clone)]
pub struct UploadResult {
    /// Users found in the uploaded history.
    pub users: Vec<UserId>,
    /// Their mined patterns.
    pub patterns: Vec<UserPatterns>,
    /// Check-ins parsed from the upload.
    pub checkin_count: usize,
}

/// Immutable platform state built once at startup, plus the mutable
/// visitor-upload slot.
pub struct AppState {
    dataset: Dataset,
    prepared: Prepared,
    patterns: Vec<UserPatterns>,
    grid: MicrocellGrid,
    crowd: CrowdModel,
    min_support: f64,
    last_upload: RwLock<Option<UploadResult>>,
}

impl std::fmt::Debug for AppState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppState")
            .field("users", &self.prepared.user_count())
            .field("checkins", &self.dataset.len())
            .field("min_support", &self.min_support)
            .finish()
    }
}

/// Default relative support for the platform's pattern view. Voluntary
/// check-ins are sparse, so routine items recur on a minority of active
/// days; 0.15 recovers full routines (see the paper's Fig. 5
/// sensitivity).
pub const DEFAULT_MIN_SUPPORT: f64 = 0.15;

/// Default microcell grid resolution (cells per side over NYC).
pub const DEFAULT_GRID_SIDE: u32 = 20;

impl AppState {
    /// Builds the platform state with defaults: richest-3-months window,
    /// the given activity filter, kind labels, 0.15 support, 20×20 grid.
    ///
    /// # Errors
    ///
    /// Propagates preprocessing, mining, and crowd-building failures.
    pub fn build(dataset: Dataset, min_active_days: usize) -> Result<AppState, Box<dyn Error>> {
        AppState::with_options(
            dataset,
            Preprocessor::new().min_active_days(min_active_days),
            DEFAULT_MIN_SUPPORT,
            DEFAULT_GRID_SIDE,
        )
    }

    /// Builds the platform state with explicit knobs.
    ///
    /// # Errors
    ///
    /// Propagates preprocessing, mining, and crowd-building failures.
    pub fn with_options(
        dataset: Dataset,
        preprocessor: Preprocessor,
        min_support: f64,
        grid_side: u32,
    ) -> Result<AppState, Box<dyn Error>> {
        let out = PipelineDriver::new(min_support)?
            .preprocessor(preprocessor)
            .windows(TimeWindows::hourly())
            .grid(BoundingBox::NYC, grid_side, grid_side)
            .parallelism(Parallelism::Auto)
            .run(&dataset)?;
        Ok(AppState {
            dataset,
            prepared: out.prepared,
            patterns: out.patterns,
            grid: out.grid,
            crowd: out.crowd,
            min_support,
            last_upload: RwLock::new(None),
        })
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The preprocessed pipeline output.
    pub fn prepared(&self) -> &Prepared {
        &self.prepared
    }

    /// All users' mined patterns.
    pub fn patterns(&self) -> &[UserPatterns] {
        &self.patterns
    }

    /// One user's patterns, if the user passed the filter.
    pub fn patterns_of(&self, user: UserId) -> Option<&UserPatterns> {
        self.patterns.iter().find(|p| p.user == user)
    }

    /// One user's place graph built from their daily sequences.
    pub fn place_graph_of(&self, user: UserId) -> Option<PlaceGraph> {
        self.prepared
            .seqdb()
            .view_of(user)
            .map(|view| PlaceGraph::from_sequences(user, &view.decode()))
    }

    /// The display microcell grid.
    pub fn grid(&self) -> &MicrocellGrid {
        &self.grid
    }

    /// The synchronized crowd model.
    pub fn crowd(&self) -> &CrowdModel {
        &self.crowd
    }

    /// The platform's mining support threshold.
    pub fn min_support(&self) -> f64 {
        self.min_support
    }

    /// A labeler for rendering label names.
    pub fn labeler(&self) -> Labeler<'_> {
        Labeler::new(&self.dataset, self.prepared.scheme())
    }

    /// Parses an uploaded TSV check-in history, mines its users'
    /// patterns over its full span (visitor histories are short, so no
    /// window/filter), stores and returns the result.
    ///
    /// # Errors
    ///
    /// Returns parse errors for malformed TSV and mining errors
    /// otherwise.
    pub fn ingest_upload(&self, tsv: &str) -> Result<UploadResult, Box<dyn Error>> {
        let uploaded = crowdweb_dataset::tsv::from_str(tsv)?;
        let prepared = Preprocessor::new()
            .window(WindowChoice::Full)
            .min_active_days(0)
            .label_scheme(LabelScheme::Kind)
            .prepare(&uploaded)?;
        let patterns = PatternMiner::new(self.min_support)?.detect_all(&prepared)?;
        let result = UploadResult {
            users: prepared.users().to_vec(),
            checkin_count: uploaded.len(),
            patterns,
        };
        *self.last_upload.write() = Some(result.clone());
        Ok(result)
    }

    /// The most recent visitor upload, if any.
    pub fn last_upload(&self) -> Option<UploadResult> {
        self.last_upload.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_synth::SynthConfig;

    fn state() -> AppState {
        let dataset = SynthConfig::small(51).generate().unwrap();
        AppState::build(dataset, 20).unwrap()
    }

    #[test]
    fn build_populates_everything() {
        let s = state();
        assert!(s.prepared().user_count() > 0);
        assert_eq!(s.patterns().len(), s.prepared().user_count());
        assert!(s.crowd().placement_count() > 0);
        assert_eq!(s.min_support(), DEFAULT_MIN_SUPPORT);
        assert!(!format!("{s:?}").is_empty());
    }

    #[test]
    fn per_user_lookups() {
        let s = state();
        let user = s.prepared().users()[0];
        assert!(s.patterns_of(user).is_some());
        let graph = s.place_graph_of(user).unwrap();
        assert!(!graph.is_empty());
        assert!(s.patterns_of(UserId::new(9999)).is_none());
        assert!(s.place_graph_of(UserId::new(9999)).is_none());
    }

    #[test]
    fn upload_round_trip() {
        let s = state();
        assert!(s.last_upload().is_none());
        // A tiny visitor history: same venue each morning, eatery at
        // noon, 4 days.
        let mut tsv = String::new();
        for day in 1..=4 {
            tsv.push_str(&format!(
                "9001\thomeV\tx\tHome (private)\t40.75\t-73.99\t-240\tSun Apr {:02} 11:00:00 +0000 2012\n",
                day
            ));
            tsv.push_str(&format!(
                "9001\tthaiV\tx\tThai Restaurant\t40.76\t-73.98\t-240\tSun Apr {:02} 16:30:00 +0000 2012\n",
                day
            ));
        }
        let result = s.ingest_upload(&tsv).unwrap();
        assert_eq!(result.checkin_count, 8);
        assert_eq!(result.users, vec![UserId::new(9001)]);
        let up = &result.patterns[0];
        assert!(up.pattern_count() > 0, "visitor patterns must be mined");
        assert!(s.last_upload().is_some());
    }

    #[test]
    fn upload_rejects_garbage() {
        let s = state();
        assert!(s.ingest_upload("not\ttsv").is_err());
    }
}
