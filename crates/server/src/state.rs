//! Application state: a registry of per-city platforms, each a live
//! ingest engine plus a visitor-upload ring.
//!
//! Handlers do not borrow pipeline data from the state directly.
//! Instead they call [`CityState::snapshot`] once per request and serve
//! the whole request from that immutable [`PlatformSnapshot`] — a new
//! epoch published mid-request never tears a response.
//!
//! # Tenancy
//!
//! [`AppState`] holds one [`CityState`] per registered city id. The
//! platform boots with a single **default city** (id
//! [`DEFAULT_CITY`]) serving the established `/api/v1/...` paths;
//! further cities register with [`AppState::add_city`] and are served
//! under `/api/v1/cities/{id}/...`. Each city owns its dataset, sharded
//! ingest engine, epoch history, WAL root (`<wal>/<city>/shard-<k>/`),
//! and upload ring — nothing is shared between cities except the
//! process-wide metrics registry.
//!
//! Handlers execute on the reactor's bounded worker pool (see
//! [`crate::reactor`]), so the state is shared behind an `Arc` and
//! everything reachable from it must stay `Sync`; a blocking handler
//! occupies one worker, never the event thread.

use crowdweb_dataset::{Dataset, UserId};
use crowdweb_ingest::{IngestConfig, PlatformSnapshot, ShardedIngestEngine};
use crowdweb_mobility::{PatternMiner, UserPatterns};
use crowdweb_obs::MetricsRegistry;
use crowdweb_prep::{LabelScheme, Preprocessor, WindowChoice};
use parking_lot::RwLock;
use std::collections::{BTreeMap, VecDeque};
use std::error::Error;
use std::sync::Arc;

/// A mined upload from a booth visitor ("if any audience member is
/// willing to share their check-in history, we can upload it to the
/// platform and visualize their patterns").
#[derive(Debug, Clone)]
pub struct UploadResult {
    /// Users found in the uploaded history.
    pub users: Vec<UserId>,
    /// Their mined patterns.
    pub patterns: Vec<UserPatterns>,
    /// Check-ins parsed from the upload.
    pub checkin_count: usize,
}

/// Id of the city the platform boots with, served by the un-prefixed
/// `/api/v1/...` paths (and their `/api/...` legacy aliases).
pub const DEFAULT_CITY: &str = "nyc";

/// Default relative support for the platform's pattern view. Voluntary
/// check-ins are sparse, so routine items recur on a minority of active
/// days; 0.15 recovers full routines (see the paper's Fig. 5
/// sensitivity).
pub const DEFAULT_MIN_SUPPORT: f64 = 0.15;

/// Default microcell grid resolution (cells per side over NYC).
pub const DEFAULT_GRID_SIDE: u32 = 20;

/// How many visitor uploads each city remembers (newest evicts oldest).
pub const DEFAULT_UPLOAD_HISTORY: usize = 16;

/// The capped upload ring plus the monotonic per-city sequence that
/// names its entries. An upload's sequence number is assigned at
/// ingest, never reused, and survives eviction of older entries — it
/// is the stable cursor the `/api/v1/uploads?after=<id>` pagination
/// keys on.
#[derive(Default)]
struct UploadRing {
    next_seq: u64,
    entries: VecDeque<(u64, UploadResult)>,
}

/// One city's platform: a live [`ShardedIngestEngine`] publishing
/// epoch snapshots, plus a capped ring of recent visitor uploads.
///
/// The ingest queue and WAL are partitioned across user-id-range
/// shards (`IngestConfig::shards`; 0 = one per available core), so
/// epoch re-mining fans out per shard while snapshots stay
/// byte-identical to an unsharded engine.
pub struct CityState {
    id: String,
    engine: ShardedIngestEngine,
    uploads: RwLock<UploadRing>,
}

impl std::fmt::Debug for CityState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("CityState")
            .field("id", &self.id)
            .field("epoch", &snap.epoch())
            .field("users", &snap.prepared().user_count())
            .field("checkins", &snap.dataset().len())
            .field("min_support", &snap.min_support())
            .finish()
    }
}

impl CityState {
    fn open(id: &str, dataset: Dataset, config: IngestConfig) -> Result<CityState, Box<dyn Error>> {
        let engine = ShardedIngestEngine::open(dataset, config)?;
        Ok(CityState {
            id: id.to_owned(),
            engine,
            uploads: RwLock::new(UploadRing::default()),
        })
    }

    /// The city's registered id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The city's current immutable pipeline snapshot. Handlers take
    /// one per request and serve everything from it.
    pub fn snapshot(&self) -> Arc<PlatformSnapshot> {
        self.engine.snapshot()
    }

    /// The city's live sharded ingest engine (submit, epochs, stats).
    pub fn engine(&self) -> &ShardedIngestEngine {
        &self.engine
    }

    /// The city's mining support threshold.
    pub fn min_support(&self) -> f64 {
        self.engine.config().min_support
    }

    /// Parses an uploaded TSV check-in history, mines its users'
    /// patterns over its full span (visitor histories are short, so no
    /// window/filter), stores it in the city's upload ring, and returns
    /// the result.
    ///
    /// # Errors
    ///
    /// Returns parse errors for malformed TSV and mining errors
    /// otherwise.
    pub fn ingest_upload(&self, tsv: &str) -> Result<UploadResult, Box<dyn Error>> {
        let uploaded = crowdweb_dataset::tsv::from_str(tsv)?;
        let prepared = Preprocessor::new()
            .window(WindowChoice::Full)
            .min_active_days(0)
            .label_scheme(LabelScheme::Kind)
            .prepare(&uploaded)?;
        let patterns = PatternMiner::new(self.min_support())?.detect_all(&prepared)?;
        let result = UploadResult {
            users: prepared.users().to_vec(),
            checkin_count: uploaded.len(),
            patterns,
        };
        let mut ring = self.uploads.write();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.entries.len() == DEFAULT_UPLOAD_HISTORY {
            ring.entries.pop_front();
        }
        ring.entries.push_back((seq, result.clone()));
        Ok(result)
    }

    /// The city's most recent visitor upload, if any.
    pub fn last_upload(&self) -> Option<UploadResult> {
        self.uploads.read().entries.back().map(|(_, r)| r.clone())
    }

    /// All the city's remembered visitor uploads, newest first, each
    /// with its stable sequence id (see [`UploadRing`]): ids descend
    /// with the listing order and pagination cursors key on them.
    pub fn uploads(&self) -> Vec<(u64, UploadResult)> {
        self.uploads.read().entries.iter().rev().cloned().collect()
    }
}

/// The platform state: a registry of [`CityState`]s keyed by city id,
/// plus the process-wide metrics registry.
///
/// The platform always has a default city; [`AppState`]'s accessor
/// methods ([`AppState::snapshot`], [`AppState::engine`], …) delegate
/// to it so single-city callers never need to name a city.
pub struct AppState {
    cities: BTreeMap<String, Arc<CityState>>,
    default_city: String,
    metrics: MetricsRegistry,
}

impl std::fmt::Debug for AppState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppState")
            .field("cities", &self.cities.keys().collect::<Vec<_>>())
            .field("default_city", &self.default_city)
            .field("default", self.default_city())
            .finish()
    }
}

impl AppState {
    /// Builds the platform state with defaults: richest-3-months window,
    /// the given activity filter, kind labels, 0.15 support, 20×20 grid.
    /// The dataset becomes the default city ([`DEFAULT_CITY`]).
    ///
    /// # Errors
    ///
    /// Propagates preprocessing, mining, and crowd-building failures.
    pub fn build(dataset: Dataset, min_active_days: usize) -> Result<AppState, Box<dyn Error>> {
        AppState::with_options(
            dataset,
            Preprocessor::new().min_active_days(min_active_days),
            DEFAULT_MIN_SUPPORT,
            DEFAULT_GRID_SIDE,
        )
    }

    /// Builds the platform state with explicit knobs.
    ///
    /// # Errors
    ///
    /// Propagates preprocessing, mining, and crowd-building failures.
    pub fn with_options(
        dataset: Dataset,
        preprocessor: Preprocessor,
        min_support: f64,
        grid_side: u32,
    ) -> Result<AppState, Box<dyn Error>> {
        let config = IngestConfig {
            preprocessor,
            min_support,
            grid_rows: grid_side,
            grid_cols: grid_side,
            ..IngestConfig::default()
        };
        AppState::with_config(dataset, config)
    }

    /// Builds the platform state around a fully explicit ingest
    /// configuration (WAL directory, queue bounds, epoch batching) for
    /// the default city. The default city's WAL root is used as given —
    /// un-scoped, exactly as pre-tenancy deployments laid it out; only
    /// cities registered via [`AppState::add_city`] get `<wal>/<city>/`
    /// roots.
    ///
    /// # Errors
    ///
    /// Propagates WAL recovery and pipeline failures.
    pub fn with_config(
        dataset: Dataset,
        mut config: IngestConfig,
    ) -> Result<AppState, Box<dyn Error>> {
        // Metrics are default-on in the server: install a fresh
        // registry unless the caller supplied their own.
        let metrics = match &config.metrics {
            Some(metrics) => metrics.clone(),
            None => {
                let metrics = MetricsRegistry::new();
                config.metrics = Some(metrics.clone());
                metrics
            }
        };
        let default = CityState::open(DEFAULT_CITY, dataset, config)?;
        let mut cities = BTreeMap::new();
        cities.insert(DEFAULT_CITY.to_owned(), Arc::new(default));
        Ok(AppState {
            cities,
            default_city: DEFAULT_CITY.to_owned(),
            metrics,
        })
    }

    /// Registers a further city under `id`, served at
    /// `/api/v1/cities/{id}/...`. The city gets its own dataset and
    /// ingest engine; its WAL root (when `config.wal` is set) is scoped
    /// to `<wal dir>/<id>/`, so shards land in `<wal>/<id>/shard-<k>/`
    /// and per-city recovery replays independently. The city records
    /// into the platform metrics registry unless `config.metrics` is
    /// already set.
    ///
    /// # Errors
    ///
    /// Rejects ids that are not lowercase slugs (`[a-z0-9_-]`, 1–64
    /// chars), duplicate registrations, and propagates WAL recovery and
    /// pipeline failures.
    pub fn add_city(
        &mut self,
        id: &str,
        dataset: Dataset,
        mut config: IngestConfig,
    ) -> Result<(), Box<dyn Error>> {
        validate_city_id(id)?;
        if self.cities.contains_key(id) {
            return Err(format!("city {id:?} is already registered").into());
        }
        if let Some(wal) = &mut config.wal {
            wal.dir = wal.dir.join(id);
        }
        if config.metrics.is_none() {
            config.metrics = Some(self.metrics.clone());
        }
        let city = CityState::open(id, dataset, config)?;
        self.cities.insert(id.to_owned(), Arc::new(city));
        Ok(())
    }

    /// The city registered under `id`, if any.
    pub fn city(&self, id: &str) -> Option<&CityState> {
        self.cities.get(id).map(Arc::as_ref)
    }

    /// The default city's state (always present).
    pub fn default_city(&self) -> &CityState {
        self.cities
            .get(&self.default_city)
            .expect("the default city is registered at construction")
    }

    /// The default city's id.
    pub fn default_city_id(&self) -> &str {
        &self.default_city
    }

    /// All registered city ids, in ascending order.
    pub fn city_ids(&self) -> Vec<&str> {
        self.cities.keys().map(String::as_str).collect()
    }

    /// Counts a request against a city's per-city request counter.
    /// Only registered ids reach this (the handler 404s unknown cities
    /// first), so the `city` label's cardinality is bounded by the
    /// registry size, never by what clients send.
    pub fn note_city_request(&self, id: &str) {
        debug_assert!(self.cities.contains_key(id), "label must be registered");
        self.metrics
            .counter(
                "crowdweb_http_requests_by_city_total",
                "Requests served, by registered city.",
                &[("city", id)],
            )
            .inc();
    }

    /// The current immutable pipeline snapshot of the **default city**.
    pub fn snapshot(&self) -> Arc<PlatformSnapshot> {
        self.default_city().snapshot()
    }

    /// The **default city's** live sharded ingest engine.
    pub fn engine(&self) -> &ShardedIngestEngine {
        self.default_city().engine()
    }

    /// The platform's metrics registry. Ingest and pipeline stages
    /// record into it; the server threads it through request handling
    /// and exposes it at `GET /api/metrics`. One registry serves every
    /// city.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The **default city's** mining support threshold.
    pub fn min_support(&self) -> f64 {
        self.default_city().min_support()
    }

    /// [`CityState::ingest_upload`] on the default city.
    ///
    /// # Errors
    ///
    /// Returns parse errors for malformed TSV and mining errors
    /// otherwise.
    pub fn ingest_upload(&self, tsv: &str) -> Result<UploadResult, Box<dyn Error>> {
        self.default_city().ingest_upload(tsv)
    }

    /// The default city's most recent visitor upload, if any.
    pub fn last_upload(&self) -> Option<UploadResult> {
        self.default_city().last_upload()
    }

    /// The default city's remembered visitor uploads, newest first,
    /// with their stable sequence ids.
    pub fn uploads(&self) -> Vec<(u64, UploadResult)> {
        self.default_city().uploads()
    }
}

fn validate_city_id(id: &str) -> Result<(), Box<dyn Error>> {
    if id.is_empty() || id.len() > 64 {
        return Err(format!("city id {id:?} must be 1-64 characters").into());
    }
    if !id
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-')
    {
        return Err(format!("city id {id:?} must match [a-z0-9_-]").into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_synth::SynthConfig;

    fn state() -> AppState {
        let dataset = SynthConfig::small(51).generate().unwrap();
        AppState::build(dataset, 20).unwrap()
    }

    #[test]
    fn build_populates_everything() {
        let s = state();
        let snap = s.snapshot();
        assert_eq!(snap.epoch(), 0);
        assert!(snap.prepared().user_count() > 0);
        assert_eq!(snap.patterns().len(), snap.prepared().user_count());
        assert!(snap.crowd().placement_count() > 0);
        assert_eq!(s.min_support(), DEFAULT_MIN_SUPPORT);
        assert!(!format!("{s:?}").is_empty());
        assert_eq!(s.city_ids(), vec![DEFAULT_CITY]);
        assert_eq!(s.default_city_id(), DEFAULT_CITY);
    }

    #[test]
    fn per_user_lookups() {
        let s = state();
        let snap = s.snapshot();
        let user = snap.prepared().users()[0];
        assert!(snap.patterns_of(user).is_some());
        let graph = snap.place_graph_of(user).unwrap();
        assert!(!graph.is_empty());
        assert!(snap.patterns_of(UserId::new(9999)).is_none());
        assert!(snap.place_graph_of(UserId::new(9999)).is_none());
    }

    #[test]
    fn upload_round_trip() {
        let s = state();
        assert!(s.last_upload().is_none());
        // A tiny visitor history: same venue each morning, eatery at
        // noon, 4 days.
        let mut tsv = String::new();
        for day in 1..=4 {
            tsv.push_str(&format!(
                "9001\thomeV\tx\tHome (private)\t40.75\t-73.99\t-240\tSun Apr {:02} 11:00:00 +0000 2012\n",
                day
            ));
            tsv.push_str(&format!(
                "9001\tthaiV\tx\tThai Restaurant\t40.76\t-73.98\t-240\tSun Apr {:02} 16:30:00 +0000 2012\n",
                day
            ));
        }
        let result = s.ingest_upload(&tsv).unwrap();
        assert_eq!(result.checkin_count, 8);
        assert_eq!(result.users, vec![UserId::new(9001)]);
        let up = &result.patterns[0];
        assert!(up.pattern_count() > 0, "visitor patterns must be mined");
        assert!(s.last_upload().is_some());
    }

    #[test]
    fn upload_rejects_garbage() {
        let s = state();
        assert!(s.ingest_upload("not\ttsv").is_err());
    }

    #[test]
    fn upload_ring_caps_and_orders_newest_first() {
        let s = state();
        let mk = |user: u32| {
            format!(
                "{user}\tv1\tx\tCoffee Shop\t40.75\t-73.99\t-240\tTue Apr 03 13:00:00 +0000 2012\n"
            )
        };
        for i in 0..DEFAULT_UPLOAD_HISTORY + 3 {
            s.ingest_upload(&mk(100 + i as u32)).unwrap();
        }
        let ring = s.uploads();
        assert_eq!(ring.len(), DEFAULT_UPLOAD_HISTORY);
        // Newest first: the last submitted user leads.
        let newest = 100 + (DEFAULT_UPLOAD_HISTORY + 2) as u32;
        assert_eq!(ring[0].1.users, vec![UserId::new(newest)]);
        assert_eq!(s.last_upload().unwrap().users, vec![UserId::new(newest)]);
        // The oldest three were evicted.
        let oldest_kept = ring.last().unwrap().1.users[0];
        assert_eq!(oldest_kept, UserId::new(103));
        // Sequence ids are stable across eviction: the newest entry is
        // the (DEFAULT_UPLOAD_HISTORY + 3)rd upload ever (0-based seq),
        // the oldest kept is seq 3, and ids descend with the listing.
        assert_eq!(ring[0].0, (DEFAULT_UPLOAD_HISTORY + 2) as u64);
        assert_eq!(ring.last().unwrap().0, 3);
        assert!(ring.windows(2).all(|w| w[0].0 > w[1].0));
    }

    #[test]
    fn add_city_registers_an_isolated_platform() {
        let mut s = state();
        let dataset = SynthConfig::small(77).generate().unwrap();
        s.add_city("tokyo", dataset, IngestConfig::default())
            .unwrap();
        assert_eq!(s.city_ids(), vec![DEFAULT_CITY, "tokyo"]);
        let tokyo = s.city("tokyo").unwrap();
        assert_eq!(tokyo.id(), "tokyo");
        // Different dataset, different snapshot; upload rings isolated.
        assert_ne!(
            tokyo.snapshot().dataset().len(),
            s.snapshot().dataset().len()
        );
        tokyo
            .ingest_upload(
                "42\tv\tx\tCoffee Shop\t40.75\t-73.99\t-240\tTue Apr 03 13:00:00 +0000 2012\n",
            )
            .unwrap();
        assert!(tokyo.last_upload().is_some());
        assert!(s.last_upload().is_none(), "default city ring untouched");
        assert!(s.city("osaka").is_none());
    }

    #[test]
    fn add_city_rejects_bad_and_duplicate_ids() {
        let mut s = state();
        for bad in ["", "Tokyo", "a b", "漢字", &"x".repeat(65)] {
            let dataset = SynthConfig::small(5).generate().unwrap();
            assert!(
                s.add_city(bad, dataset, IngestConfig::default()).is_err(),
                "id {bad:?} must be rejected"
            );
        }
        let dataset = SynthConfig::small(5).generate().unwrap();
        assert!(s
            .add_city(DEFAULT_CITY, dataset, IngestConfig::default())
            .is_err());
        let dataset = SynthConfig::small(5).generate().unwrap();
        s.add_city("paris", dataset, IngestConfig::default())
            .unwrap();
        let dataset = SynthConfig::small(5).generate().unwrap();
        assert!(s
            .add_city("paris", dataset, IngestConfig::default())
            .is_err());
    }

    #[test]
    fn add_city_scopes_the_wal_root() {
        use crowdweb_ingest::WalConfig;
        let dir = std::env::temp_dir().join(format!(
            "crowdweb-city-wal-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = state();
        let dataset = SynthConfig::small(9).generate().unwrap();
        let config = IngestConfig {
            wal: Some(WalConfig::new(&dir)),
            shards: 2,
            ..IngestConfig::default()
        };
        s.add_city("berlin", dataset, config).unwrap();
        // Scoped root: <wal>/berlin/shard-<k>/ exists per shard.
        assert!(dir.join("berlin").join("shard-0").is_dir());
        assert!(dir.join("berlin").join("shard-1").is_dir());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn city_request_counter_labels_by_registered_id() {
        let s = state();
        s.note_city_request(DEFAULT_CITY);
        s.note_city_request(DEFAULT_CITY);
        assert_eq!(
            s.metrics().counter_value(
                "crowdweb_http_requests_by_city_total",
                &[("city", DEFAULT_CITY)]
            ),
            Some(2)
        );
    }
}
