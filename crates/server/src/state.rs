//! Application state: the live ingest engine plus the visitor-upload
//! ring.
//!
//! Handlers do not borrow pipeline data from `AppState` directly.
//! Instead they call [`AppState::snapshot`] once per request and serve
//! the whole request from that immutable [`PlatformSnapshot`] — a new
//! epoch published mid-request never tears a response.
//!
//! Handlers execute on the reactor's bounded worker pool (see
//! [`crate::reactor`]), so the state is shared behind an `Arc` and
//! everything reachable from it must stay `Sync`; a blocking handler
//! occupies one worker, never the event thread.

use crowdweb_dataset::{Dataset, UserId};
use crowdweb_ingest::{IngestConfig, PlatformSnapshot, ShardedIngestEngine};
use crowdweb_mobility::{PatternMiner, UserPatterns};
use crowdweb_obs::MetricsRegistry;
use crowdweb_prep::{LabelScheme, Preprocessor, WindowChoice};
use parking_lot::RwLock;
use std::collections::VecDeque;
use std::error::Error;
use std::sync::Arc;

/// A mined upload from a booth visitor ("if any audience member is
/// willing to share their check-in history, we can upload it to the
/// platform and visualize their patterns").
#[derive(Debug, Clone)]
pub struct UploadResult {
    /// Users found in the uploaded history.
    pub users: Vec<UserId>,
    /// Their mined patterns.
    pub patterns: Vec<UserPatterns>,
    /// Check-ins parsed from the upload.
    pub checkin_count: usize,
}

/// The platform state: a live [`ShardedIngestEngine`] publishing
/// epoch snapshots, plus a capped ring of recent visitor uploads.
///
/// The ingest queue and WAL are partitioned across user-id-range
/// shards (`IngestConfig::shards`; 0 = one per available core), so
/// epoch re-mining fans out per shard while snapshots stay
/// byte-identical to an unsharded engine.
pub struct AppState {
    engine: ShardedIngestEngine,
    uploads: RwLock<VecDeque<UploadResult>>,
    metrics: MetricsRegistry,
}

impl std::fmt::Debug for AppState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("AppState")
            .field("epoch", &snap.epoch())
            .field("users", &snap.prepared().user_count())
            .field("checkins", &snap.dataset().len())
            .field("min_support", &snap.min_support())
            .finish()
    }
}

/// Default relative support for the platform's pattern view. Voluntary
/// check-ins are sparse, so routine items recur on a minority of active
/// days; 0.15 recovers full routines (see the paper's Fig. 5
/// sensitivity).
pub const DEFAULT_MIN_SUPPORT: f64 = 0.15;

/// Default microcell grid resolution (cells per side over NYC).
pub const DEFAULT_GRID_SIDE: u32 = 20;

/// How many visitor uploads the platform remembers (newest evicts
/// oldest).
pub const DEFAULT_UPLOAD_HISTORY: usize = 16;

impl AppState {
    /// Builds the platform state with defaults: richest-3-months window,
    /// the given activity filter, kind labels, 0.15 support, 20×20 grid.
    ///
    /// # Errors
    ///
    /// Propagates preprocessing, mining, and crowd-building failures.
    pub fn build(dataset: Dataset, min_active_days: usize) -> Result<AppState, Box<dyn Error>> {
        AppState::with_options(
            dataset,
            Preprocessor::new().min_active_days(min_active_days),
            DEFAULT_MIN_SUPPORT,
            DEFAULT_GRID_SIDE,
        )
    }

    /// Builds the platform state with explicit knobs.
    ///
    /// # Errors
    ///
    /// Propagates preprocessing, mining, and crowd-building failures.
    pub fn with_options(
        dataset: Dataset,
        preprocessor: Preprocessor,
        min_support: f64,
        grid_side: u32,
    ) -> Result<AppState, Box<dyn Error>> {
        let config = IngestConfig {
            preprocessor,
            min_support,
            grid_rows: grid_side,
            grid_cols: grid_side,
            ..IngestConfig::default()
        };
        AppState::with_config(dataset, config)
    }

    /// Builds the platform state around a fully explicit ingest
    /// configuration (WAL directory, queue bounds, epoch batching).
    ///
    /// # Errors
    ///
    /// Propagates WAL recovery and pipeline failures.
    pub fn with_config(
        dataset: Dataset,
        mut config: IngestConfig,
    ) -> Result<AppState, Box<dyn Error>> {
        // Metrics are default-on in the server: install a fresh
        // registry unless the caller supplied their own.
        let metrics = match &config.metrics {
            Some(metrics) => metrics.clone(),
            None => {
                let metrics = MetricsRegistry::new();
                config.metrics = Some(metrics.clone());
                metrics
            }
        };
        let engine = ShardedIngestEngine::open(dataset, config)?;
        Ok(AppState {
            engine,
            uploads: RwLock::new(VecDeque::new()),
            metrics,
        })
    }

    /// The current immutable pipeline snapshot. Handlers take one per
    /// request and serve everything from it.
    pub fn snapshot(&self) -> Arc<PlatformSnapshot> {
        self.engine.snapshot()
    }

    /// The live sharded ingest engine (submit, epochs, stats).
    pub fn engine(&self) -> &ShardedIngestEngine {
        &self.engine
    }

    /// The platform's metrics registry. Ingest and pipeline stages
    /// record into it; the server threads it through request handling
    /// and exposes it at `GET /api/metrics`.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The platform's mining support threshold.
    pub fn min_support(&self) -> f64 {
        self.engine.config().min_support
    }

    /// Parses an uploaded TSV check-in history, mines its users'
    /// patterns over its full span (visitor histories are short, so no
    /// window/filter), stores it in the upload ring, and returns the
    /// result.
    ///
    /// # Errors
    ///
    /// Returns parse errors for malformed TSV and mining errors
    /// otherwise.
    pub fn ingest_upload(&self, tsv: &str) -> Result<UploadResult, Box<dyn Error>> {
        let uploaded = crowdweb_dataset::tsv::from_str(tsv)?;
        let prepared = Preprocessor::new()
            .window(WindowChoice::Full)
            .min_active_days(0)
            .label_scheme(LabelScheme::Kind)
            .prepare(&uploaded)?;
        let patterns = PatternMiner::new(self.min_support())?.detect_all(&prepared)?;
        let result = UploadResult {
            users: prepared.users().to_vec(),
            checkin_count: uploaded.len(),
            patterns,
        };
        let mut ring = self.uploads.write();
        if ring.len() == DEFAULT_UPLOAD_HISTORY {
            ring.pop_front();
        }
        ring.push_back(result.clone());
        Ok(result)
    }

    /// The most recent visitor upload, if any.
    pub fn last_upload(&self) -> Option<UploadResult> {
        self.uploads.read().back().cloned()
    }

    /// All remembered visitor uploads, newest first.
    pub fn uploads(&self) -> Vec<UploadResult> {
        self.uploads.read().iter().rev().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_synth::SynthConfig;

    fn state() -> AppState {
        let dataset = SynthConfig::small(51).generate().unwrap();
        AppState::build(dataset, 20).unwrap()
    }

    #[test]
    fn build_populates_everything() {
        let s = state();
        let snap = s.snapshot();
        assert_eq!(snap.epoch(), 0);
        assert!(snap.prepared().user_count() > 0);
        assert_eq!(snap.patterns().len(), snap.prepared().user_count());
        assert!(snap.crowd().placement_count() > 0);
        assert_eq!(s.min_support(), DEFAULT_MIN_SUPPORT);
        assert!(!format!("{s:?}").is_empty());
    }

    #[test]
    fn per_user_lookups() {
        let s = state();
        let snap = s.snapshot();
        let user = snap.prepared().users()[0];
        assert!(snap.patterns_of(user).is_some());
        let graph = snap.place_graph_of(user).unwrap();
        assert!(!graph.is_empty());
        assert!(snap.patterns_of(UserId::new(9999)).is_none());
        assert!(snap.place_graph_of(UserId::new(9999)).is_none());
    }

    #[test]
    fn upload_round_trip() {
        let s = state();
        assert!(s.last_upload().is_none());
        // A tiny visitor history: same venue each morning, eatery at
        // noon, 4 days.
        let mut tsv = String::new();
        for day in 1..=4 {
            tsv.push_str(&format!(
                "9001\thomeV\tx\tHome (private)\t40.75\t-73.99\t-240\tSun Apr {:02} 11:00:00 +0000 2012\n",
                day
            ));
            tsv.push_str(&format!(
                "9001\tthaiV\tx\tThai Restaurant\t40.76\t-73.98\t-240\tSun Apr {:02} 16:30:00 +0000 2012\n",
                day
            ));
        }
        let result = s.ingest_upload(&tsv).unwrap();
        assert_eq!(result.checkin_count, 8);
        assert_eq!(result.users, vec![UserId::new(9001)]);
        let up = &result.patterns[0];
        assert!(up.pattern_count() > 0, "visitor patterns must be mined");
        assert!(s.last_upload().is_some());
    }

    #[test]
    fn upload_rejects_garbage() {
        let s = state();
        assert!(s.ingest_upload("not\ttsv").is_err());
    }

    #[test]
    fn upload_ring_caps_and_orders_newest_first() {
        let s = state();
        let mk = |user: u32| {
            format!(
                "{user}\tv1\tx\tCoffee Shop\t40.75\t-73.99\t-240\tTue Apr 03 13:00:00 +0000 2012\n"
            )
        };
        for i in 0..DEFAULT_UPLOAD_HISTORY + 3 {
            s.ingest_upload(&mk(100 + i as u32)).unwrap();
        }
        let ring = s.uploads();
        assert_eq!(ring.len(), DEFAULT_UPLOAD_HISTORY);
        // Newest first: the last submitted user leads.
        let newest = 100 + (DEFAULT_UPLOAD_HISTORY + 2) as u32;
        assert_eq!(ring[0].users, vec![UserId::new(newest)]);
        assert_eq!(s.last_upload().unwrap().users, vec![UserId::new(newest)]);
        // The oldest three were evicted.
        let oldest_kept = ring.last().unwrap().users[0];
        assert_eq!(oldest_kept, UserId::new(103));
    }
}
