//! The evented connection loop.
//!
//! One event thread owns a nonblocking listener and every open
//! connection. Each tick it accepts pending sockets, pumps bytes
//! through per-connection state machines, hands complete requests to a
//! bounded [`WorkerPool`] (where [`Router::dispatch`] and response
//! serialization run), queues finished responses for nonblocking
//! writes, and enforces read/write deadlines — so a thousand idle or
//! slow-drip (slowloris) connections cost a read syscall per tick each,
//! never a blocked thread.
//!
//! The per-connection state machine:
//!
//! ```text
//!            accept (cap-checked, else immediate 503)
//!              │
//!              ▼
//!   ┌──────── Reading ────────┐   bytes accumulate; head end and
//!   │  buf / head_end / want  │   Content-Length detected by the
//!   └──────────┬──────────────┘   scanners in `http` (the hardened
//!              │ complete | EOF    parser stays authoritative)
//!              ▼
//!          Dispatched ────────── job on the worker pool: parse with
//!              │                 `Request::read_from`, route, record
//!              │ response bytes  metrics, serialize — or `None` to
//!              ▼                 drop (panic / unparseable stream)
//!           Writing ──────────── nonblocking writes until drained,
//!              │                 then close (`Connection: close`)
//!              ▼
//!            closed
//! ```
//!
//! Deadlines are checked once per tick from the loop, not with
//! per-socket timeouts: `Reading` has a read deadline (a stalled or
//! dripping client is reaped and counted, never answered), `Writing` a
//! write deadline, and `Dispatched` none (handlers may legitimately run
//! long). Saturation is explicit at both edges: over the connection cap
//! a fresh socket gets an immediate 503, and a full worker queue bounces
//! the job back so the event thread answers 503 itself.

use crate::http::{find_head_end, scan_head, HeadScan, MAX_HEAD_BYTES, MAX_LINE_BYTES};
use crate::{AppState, Request, Response, Router, StatusCode};
use crowdweb_exec::{PoolSaturated, WorkerPool};
use crowdweb_obs::{Counter, Gauge, Histogram, MetricsRegistry, HTTP_LATENCY_BUCKETS};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Tunables for the evented connection loop. Constructed by `Server`'s
/// builder methods; defaults suit an interactive deployment.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// How long a connection may take to deliver a complete request
    /// head + body before being reaped (default 30 s).
    pub read_timeout: Duration,
    /// How long a connection may take to drain its response bytes
    /// (default 30 s).
    pub write_timeout: Duration,
    /// Open-connection cap; sockets accepted beyond it get an
    /// immediate `503` (default 1024).
    pub max_connections: usize,
    /// Worker threads executing `Router::dispatch` off the event
    /// thread (default 8).
    pub workers: usize,
    /// Bound on jobs queued for the workers; a full queue answers
    /// `503` instead of growing latency without limit (default 128).
    pub job_queue_capacity: usize,
    /// How long the loop parks when a tick moved nothing (default
    /// 500 µs) — the effective deadline-check granularity.
    pub idle_wait: Duration,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            max_connections: 1024,
            workers: 8,
            job_queue_capacity: 128,
            idle_wait: Duration::from_micros(500),
        }
    }
}

/// Token-addressed completion from a worker: the serialized response
/// bytes, or `None` when the connection should just be dropped.
type Completion = (u64, Option<Vec<u8>>);

enum ConnState {
    /// Accumulating request bytes until the head terminator and the
    /// declared body length are both satisfied.
    Reading {
        buf: Vec<u8>,
        head_end: Option<usize>,
        /// Total bytes (head + body) that make the request complete.
        want: Option<usize>,
    },
    /// A worker owns the request; the loop only waits.
    Dispatched,
    /// Serialized response bytes draining through nonblocking writes.
    Writing { buf: Vec<u8>, written: usize },
}

struct Conn {
    stream: TcpStream,
    state: ConnState,
    accepted_at: Instant,
    /// Tick-enforced deadline; `None` while a handler runs.
    deadline: Option<Instant>,
}

impl Conn {
    fn new(stream: TcpStream, read_timeout: Duration) -> Conn {
        let accepted_at = Instant::now();
        Conn {
            stream,
            state: ConnState::Reading {
                buf: Vec::new(),
                head_end: None,
                want: None,
            },
            accepted_at,
            deadline: Some(accepted_at + read_timeout),
        }
    }
}

/// Pre-registered reactor metric handles, so the hot loop never touches
/// the registry's family table.
struct ReactorMetrics {
    registry: MetricsRegistry,
    open_connections: Gauge,
    deferred_writes: Gauge,
    tick_seconds: Histogram,
    read_timeouts: Counter,
    write_timeouts: Counter,
    rejected_cap: Counter,
    rejected_busy: Counter,
}

impl ReactorMetrics {
    fn new(registry: MetricsRegistry) -> ReactorMetrics {
        ReactorMetrics {
            open_connections: registry.gauge(
                "crowdweb_server_open_connections",
                "Connections currently registered with the reactor.",
                &[],
            ),
            deferred_writes: registry.gauge(
                "crowdweb_server_deferred_writes",
                "Connections with response bytes queued but not yet fully written.",
                &[],
            ),
            tick_seconds: registry.histogram(
                "crowdweb_server_reactor_tick_seconds",
                "Wall-clock seconds per reactor tick that moved bytes or events.",
                &[],
                &HTTP_LATENCY_BUCKETS,
            ),
            read_timeouts: registry.counter(
                "crowdweb_http_timeouts_total",
                "Connections dropped at the read deadline before a complete request arrived.",
                &[],
            ),
            write_timeouts: registry.counter(
                "crowdweb_server_write_timeouts_total",
                "Connections dropped at the write deadline with a response still queued.",
                &[],
            ),
            rejected_cap: registry.counter(
                "crowdweb_server_rejected_total",
                "Connections refused with 503, by reason.",
                &[("reason", "max_connections")],
            ),
            rejected_busy: registry.counter(
                "crowdweb_server_rejected_total",
                "Connections refused with 503, by reason.",
                &[("reason", "worker_queue_full")],
            ),
            registry,
        }
    }
}

/// Shared per-tick context threaded through the state machine.
struct Ctx<'a> {
    state: &'a Arc<AppState>,
    router: &'a Arc<Router<AppState>>,
    pool: &'a WorkerPool,
    done_tx: &'a mpsc::Sender<Completion>,
    metrics: &'a ReactorMetrics,
    config: &'a ReactorConfig,
}

enum Drive {
    /// Bytes or events moved.
    Progress,
    /// Nothing to do right now.
    Idle,
    /// The connection is finished (drained, dead, or hopeless).
    Close,
}

/// Runs the event loop until `shutdown` is observed. Consumes the
/// listener; joins the worker pool before returning.
pub(crate) fn run(
    listener: TcpListener,
    state: Arc<AppState>,
    router: Arc<Router<AppState>>,
    shutdown: Arc<AtomicBool>,
    config: ReactorConfig,
) {
    listener
        .set_nonblocking(true)
        .expect("listener supports nonblocking mode");
    let metrics = ReactorMetrics::new(state.metrics().clone());
    let pool = WorkerPool::new(config.workers, config.job_queue_capacity);
    let (done_tx, done_rx) = mpsc::channel::<Completion>();
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = 0;

    while !shutdown.load(Ordering::SeqCst) {
        let tick_started = Instant::now();
        let mut progressed = false;
        let ctx = Ctx {
            state: &state,
            router: &router,
            pool: &pool,
            done_tx: &done_tx,
            metrics: &metrics,
            config: &config,
        };

        // 1. Accept every pending socket (cap-aware).
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    progressed = true;
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let mut conn = Conn::new(stream, config.read_timeout);
                    if conns.len() >= config.max_connections {
                        // Over the cap: answer 503 through the normal
                        // write path (the connection occupies a map
                        // slot only until the refusal drains).
                        metrics.rejected_cap.inc();
                        queue_response(
                            &mut conn,
                            Response::error(
                                StatusCode::ServiceUnavailable,
                                "connection limit reached",
                            ),
                            config.write_timeout,
                        );
                    }
                    conns.insert(next_token, conn);
                    next_token += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }

        // 2. Move finished worker responses into write queues.
        while let Ok((token, payload)) = done_rx.try_recv() {
            progressed = true;
            match payload {
                Some(bytes) => {
                    if let Some(conn) = conns.get_mut(&token) {
                        conn.state = ConnState::Writing {
                            buf: bytes,
                            written: 0,
                        };
                        conn.deadline = Some(Instant::now() + config.write_timeout);
                    }
                }
                None => {
                    conns.remove(&token);
                }
            }
        }

        // 3. Pump every connection's state machine.
        let mut closed: Vec<u64> = Vec::new();
        for (&token, conn) in conns.iter_mut() {
            match drive(token, conn, &ctx) {
                Drive::Progress => progressed = true,
                Drive::Idle => {}
                Drive::Close => {
                    progressed = true;
                    closed.push(token);
                }
            }
        }
        for token in &closed {
            conns.remove(token);
        }

        // 4. Deadlines, enforced by the tick instead of per-socket
        // timeouts. A reading connection past its deadline is client
        // misbehaviour: count it, never answer it.
        let now = Instant::now();
        conns.retain(|_, conn| match conn.deadline {
            Some(deadline) if now >= deadline => {
                match conn.state {
                    ConnState::Reading { .. } => metrics.read_timeouts.inc(),
                    _ => metrics.write_timeouts.inc(),
                }
                false
            }
            _ => true,
        });

        // 5. Loop-health signals, then park if the tick was empty.
        metrics.open_connections.set(conns.len() as i64);
        let deferred = conns
            .values()
            .filter(|c| matches!(c.state, ConnState::Writing { .. }))
            .count();
        metrics.deferred_writes.set(deferred as i64);
        if progressed {
            metrics
                .tick_seconds
                .observe(tick_started.elapsed().as_secs_f64());
        } else {
            std::thread::sleep(config.idle_wait);
        }
    }

    metrics.open_connections.set(0);
    metrics.deferred_writes.set(0);
    drop(conns);
    drop(pool); // drains queued jobs and joins every worker
}

/// Serializes a loop-generated response (over-cap or pool-saturated
/// 503) and moves the connection straight to `Writing`.
fn queue_response(conn: &mut Conn, response: Response, write_timeout: Duration) {
    let mut out = Vec::new();
    let _ = response.write_to(&mut out);
    conn.state = ConnState::Writing {
        buf: out,
        written: 0,
    };
    conn.deadline = Some(Instant::now() + write_timeout);
}

fn drive(token: u64, conn: &mut Conn, ctx: &Ctx<'_>) -> Drive {
    match conn.state {
        ConnState::Reading { .. } => drive_read(token, conn, ctx),
        ConnState::Dispatched => Drive::Idle,
        ConnState::Writing { .. } => drive_write(conn),
    }
}

fn drive_read(token: u64, conn: &mut Conn, ctx: &Ctx<'_>) -> Drive {
    let mut progressed = false;
    loop {
        let mut chunk = [0u8; 8192];
        match conn.stream.read(&mut chunk) {
            // EOF: the client finished (or gave up) — finalize with
            // whatever arrived. The parser decides between a request,
            // a 400, or nothing to say.
            Ok(0) => {
                dispatch(token, conn, ctx);
                return Drive::Progress;
            }
            Ok(n) => {
                progressed = true;
                if accumulate(conn, &chunk[..n]) {
                    dispatch(token, conn, ctx);
                    return Drive::Progress;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Drive::Close,
        }
    }
    if progressed {
        Drive::Progress
    } else {
        Drive::Idle
    }
}

/// Extends the read buffer and re-evaluates completeness. Returns true
/// once the buffered bytes should go to a worker.
fn accumulate(conn: &mut Conn, bytes: &[u8]) -> bool {
    let ConnState::Reading {
        buf,
        head_end,
        want,
    } = &mut conn.state
    else {
        return false;
    };
    buf.extend_from_slice(bytes);
    if head_end.is_none() {
        *head_end = find_head_end(buf);
        match *head_end {
            Some(end) => {
                *want = Some(match scan_head(&buf[..end]) {
                    HeadScan::BodyBytes(n) => end + n,
                    // Untrustworthy head: don't wait for a body that
                    // may never come — parse now for the real 400.
                    HeadScan::Malformed => end,
                });
            }
            // A head that exceeds every parser bound without ever
            // terminating gets parsed as-is; `read_line_bounded` and
            // the head-size cap turn it into the right 400.
            None if buf.len() > MAX_HEAD_BYTES + MAX_LINE_BYTES => {
                *want = Some(buf.len());
            }
            None => {}
        }
    }
    want.is_some_and(|w| buf.len() >= w)
}

/// Moves a connection to `Dispatched` and hands its buffered request to
/// the worker pool. On a saturated pool the event thread sheds load
/// itself with a 503.
fn dispatch(token: u64, conn: &mut Conn, ctx: &Ctx<'_>) {
    let ConnState::Reading { buf, want, .. } =
        std::mem::replace(&mut conn.state, ConnState::Dispatched)
    else {
        return;
    };
    conn.deadline = None;
    let take = want.unwrap_or(buf.len()).min(buf.len());
    let accepted_at = conn.accepted_at;
    let state = Arc::clone(ctx.state);
    let router = Arc::clone(ctx.router);
    let registry = ctx.metrics.registry.clone();
    let done = ctx.done_tx.clone();
    let job = move || {
        let payload = execute(&buf[..take], &state, &router, &registry, accepted_at).map(|r| {
            let mut out = Vec::with_capacity(r.body.len() + 128);
            let _ = r.write_to(&mut out);
            out
        });
        let _ = done.send((token, payload));
    };
    if let Err(PoolSaturated(job)) = ctx.pool.try_execute(job) {
        drop(job);
        ctx.metrics.rejected_busy.inc();
        queue_response(
            conn,
            Response::error(StatusCode::ServiceUnavailable, "worker queue full")
                .with_retry_after(crate::api::RETRY_AFTER_SECS),
            ctx.config.write_timeout,
        );
    }
}

/// Parses and routes one buffered request on a worker thread. Returns
/// the response to write, or `None` when the connection deserves
/// nothing (unreadable stream, panicking handler).
fn execute(
    bytes: &[u8],
    state: &AppState,
    router: &Router<AppState>,
    registry: &MetricsRegistry,
    accepted_at: Instant,
) -> Option<Response> {
    match Request::read_from(bytes) {
        Ok(request) => {
            // A panicking handler must not take the worker down or leak
            // the connection: catch, drop the connection, keep serving.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                router.dispatch(state, &request)
            }));
            match result {
                Ok((response, route)) => {
                    record_access(
                        registry,
                        &request.method.to_string(),
                        route.unwrap_or("unmatched"),
                        &response,
                        request.body.len(),
                        accepted_at,
                    );
                    Some(response)
                }
                Err(_) => {
                    eprintln!("crowdweb: connection handler panicked; worker recovered");
                    None
                }
            }
        }
        // Malformed head (InvalidData) or a body shorter than its
        // Content-Length (read_exact → UnexpectedEof): the client sent
        // a broken request and deserves a 400, not a silent drop.
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
            ) =>
        {
            let message = if e.kind() == io::ErrorKind::UnexpectedEof {
                "request body shorter than content-length".to_owned()
            } else {
                e.to_string()
            };
            let response = Response::error(StatusCode::BadRequest, &message);
            record_access(registry, "invalid", "unparsed", &response, 0, accepted_at);
            Some(response)
        }
        Err(_) => None,
    }
}

fn drive_write(conn: &mut Conn) -> Drive {
    // Discard request bytes still arriving (a refused connection never
    // had its request read): unread data at close would turn the FIN
    // into a RST and destroy the response before the client reads it.
    drain_input(&mut conn.stream);
    let ConnState::Writing { buf, written } = &mut conn.state else {
        return Drive::Idle;
    };
    let mut progressed = false;
    while *written < buf.len() {
        match conn.stream.write(&buf[*written..]) {
            Ok(0) => return Drive::Close,
            Ok(n) => {
                *written += n;
                progressed = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                return if progressed {
                    Drive::Progress
                } else {
                    Drive::Idle
                };
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Drive::Close,
        }
    }
    // Response fully drained: `Connection: close` semantics.
    let _ = conn.stream.flush();
    drain_input(&mut conn.stream);
    Drive::Close
}

/// Reads and discards whatever is waiting on the socket (bounded per
/// tick so an aggressive sender cannot pin the loop).
fn drain_input(stream: &mut TcpStream) {
    let mut scratch = [0u8; 4096];
    for _ in 0..8 {
        match stream.read(&mut scratch) {
            Ok(n) if n > 0 => continue,
            _ => break,
        }
    }
}

/// Records one access into the route-keyed request metrics. Routes are
/// labelled by registration pattern (bounded cardinality), never by raw
/// request path.
pub(crate) fn record_access(
    metrics: &MetricsRegistry,
    method: &str,
    route: &str,
    response: &Response,
    request_body_bytes: usize,
    started: Instant,
) {
    let status = response.status.code().to_string();
    metrics
        .counter(
            "crowdweb_http_requests_total",
            "HTTP requests served, by method, route pattern, and status.",
            &[("method", method), ("route", route), ("status", &status)],
        )
        .inc();
    metrics
        .histogram(
            "crowdweb_http_request_seconds",
            "Wall-clock seconds from first read to response ready, by route pattern.",
            &[("route", route)],
            &HTTP_LATENCY_BUCKETS,
        )
        .observe(started.elapsed().as_secs_f64());
    metrics
        .counter(
            "crowdweb_http_request_body_bytes_total",
            "Request body bytes received, by route pattern.",
            &[("route", route)],
        )
        .add(request_body_bytes as u64);
    metrics
        .counter(
            "crowdweb_http_response_body_bytes_total",
            "Response body bytes produced, by route pattern.",
            &[("route", route)],
        )
        .add(response.body.len() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api;
    use crowdweb_synth::SynthConfig;

    fn app() -> (Arc<AppState>, Arc<Router<AppState>>, MetricsRegistry) {
        let dataset = SynthConfig::small(71).users(10).generate().unwrap();
        let state = AppState::build(dataset, 10).unwrap();
        let registry = state.metrics().clone();
        (Arc::new(state), Arc::new(api::build_router()), registry)
    }

    #[test]
    fn execute_routes_complete_requests_and_records() {
        let (state, router, registry) = app();
        let response = execute(
            b"GET /api/stats HTTP/1.1\r\nHost: t\r\n\r\n",
            &state,
            &router,
            &registry,
            Instant::now(),
        )
        .expect("well-formed request gets a response");
        assert_eq!(response.status.code(), 200);
        // The legacy spelling folds into the canonical v1 route label.
        assert_eq!(
            registry.counter_value(
                "crowdweb_http_requests_total",
                &[
                    ("method", "GET"),
                    ("route", "/api/v1/stats"),
                    ("status", "200")
                ]
            ),
            Some(1)
        );
    }

    #[test]
    fn execute_maps_parser_errors_to_400() {
        let (state, router, registry) = app();
        let response = execute(
            b"BREW /coffee HTCPCP/1.0\r\n\r\n",
            &state,
            &router,
            &registry,
            Instant::now(),
        )
        .expect("malformed request gets a 400");
        assert_eq!(response.status.code(), 400);
        // Truncated body keeps the dedicated message.
        let response = execute(
            b"POST /api/upload HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort",
            &state,
            &router,
            &registry,
            Instant::now(),
        )
        .unwrap();
        assert_eq!(response.status.code(), 400);
        assert!(String::from_utf8(response.body)
            .unwrap()
            .contains("content-length"));
        assert_eq!(
            registry.counter_value(
                "crowdweb_http_requests_total",
                &[
                    ("method", "invalid"),
                    ("route", "unparsed"),
                    ("status", "400")
                ]
            ),
            Some(2)
        );
    }

    #[test]
    fn accumulate_tracks_head_and_body_completion() {
        let stream = TcpStream::connect(
            std::net::TcpListener::bind("127.0.0.1:0")
                .unwrap()
                .local_addr()
                .unwrap(),
        )
        .unwrap();
        let mut conn = Conn::new(stream, Duration::from_secs(1));
        assert!(!accumulate(&mut conn, b"POST /x HTTP/1.1\r\nContent-"));
        assert!(!accumulate(&mut conn, b"Length: 5\r\n\r\n"));
        assert!(!accumulate(&mut conn, b"he"));
        assert!(accumulate(&mut conn, b"llo"));
        let ConnState::Reading { buf, want, .. } = &conn.state else {
            panic!("still reading");
        };
        assert_eq!(*want, Some(buf.len()));
    }

    #[test]
    fn saturated_pool_503_advertises_retry_after() {
        let (state, router, registry) = app();
        // One worker, one queue slot: park the worker on a channel and
        // fill the slot, so the next dispatch must shed load.
        let pool = WorkerPool::new(1, 1);
        let (park_tx, park_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.try_execute(move || {
            let _ = started_tx.send(());
            let _ = park_rx.recv();
        })
        .unwrap();
        // Wait until the lone worker holds the parked job (queue now
        // empty), then fill the single queue slot: saturation is
        // deterministic from here.
        started_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("worker picks up the parked job");
        pool.try_execute(|| {}).expect("queue slot is free");
        let (done_tx, _done_rx) = mpsc::channel::<Completion>();
        let metrics = ReactorMetrics::new(registry);
        let config = ReactorConfig::default();
        let ctx = Ctx {
            state: &state,
            router: &router,
            pool: &pool,
            done_tx: &done_tx,
            metrics: &metrics,
            config: &config,
        };
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut conn = Conn::new(stream, Duration::from_secs(1));
        assert!(accumulate(&mut conn, b"GET /api/v1/stats HTTP/1.1\r\n\r\n"));
        dispatch(0, &mut conn, &ctx);
        let ConnState::Writing { buf, .. } = &conn.state else {
            panic!("shed connection should be writing its 503");
        };
        let wire = String::from_utf8_lossy(buf);
        assert!(wire.starts_with("HTTP/1.1 503 "), "{wire}");
        assert!(wire.contains("worker queue full"), "{wire}");
        let head = &wire[..wire.find("\r\n\r\n").unwrap()];
        assert!(head.contains("Retry-After: 1"), "{head}");
        let _ = park_tx.send(());
    }

    #[test]
    fn accumulate_finalizes_untrustworthy_heads_without_waiting() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut conn = Conn::new(stream, Duration::from_secs(1));
        // Conflicting Content-Length: complete immediately (no body
        // wait), so the parser can answer 400 now.
        assert!(accumulate(
            &mut conn,
            b"POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 3\r\n\r\n"
        ));
    }
}
