//! The evented connection loop.
//!
//! One event thread owns a nonblocking listener and every open
//! connection, and spends its idle time blocked in `poll(2)` (via the
//! [`crate::sys`] shim) instead of spinning a tick: the kernel wakes it
//! when a socket turns readable or writable, a self-pipe wakes it when
//! a worker finishes a dispatched response, and the poll timeout is
//! computed from the nearest per-connection deadline — so an idle
//! server costs ~zero CPU and a ready event is serviced in
//! syscall-latency, not tick-granularity, time.
//!
//! Connections are persistent (HTTP/1.1 keep-alive): after a response
//! drains, the connection returns to `Reading` and any bytes the
//! client pipelined behind the previous request are served next, in
//! arrival order. Each connection carries a request budget and an
//! idle deadline; the final response before budget exhaustion (or any
//! negotiated close) says `Connection: close`, idle connections are
//! reaped quietly, and half-sent requests are reaped as misbehaviour.
//!
//! The per-connection state machine:
//!
//! ```text
//!            accept (cap-checked, else immediate 503 + close)
//!              │
//!              ▼
//!   ┌──────── Reading ────────┐   bytes accumulate; head end and
//!   │  buf / head_end / want  │   Content-Length detected by the
//!   └──────────┬──────────────┘   scanners in `http` (the hardened
//!              │ complete | EOF    parser stays authoritative)
//!              ▼
//!          Dispatched ────────── job on the worker pool: parse with
//!              │                 `Request::read_from`, route, record
//!              │ response bytes  metrics, serialize with the
//!              ▼                 negotiated disposition
//!           Writing ──────────── nonblocking writes until drained
//!              │          │
//!              │ close    │ keep-alive: budget left & client agreed
//!              ▼          ▼
//!            closed     Reading (pipelined bytes served immediately)
//! ```
//!
//! Deadlines are enforced from the loop, never with per-socket
//! timeouts: `Reading` a fresh request has a read deadline, an idle
//! keep-alive connection an idle deadline, `Writing` a write deadline,
//! and `Dispatched` none (handlers may legitimately run long).
//! Saturation is explicit at both edges: over the connection cap a
//! fresh socket gets an immediate 503-and-close, and a full worker
//! queue bounces the job back so the event thread answers 503 itself —
//! honouring the connection's negotiated keep-alive, so shedding one
//! request does not kill a healthy client's pipeline.

use crate::http::{
    encode_chunk, find_head_end, scan_head, scan_wants_keep_alive, BodyStream, HeadScan,
    ResponseBody, LAST_CHUNK, MAX_HEAD_BYTES, MAX_LINE_BYTES,
};
use crate::sys::{self, Interest, PollSet, Readiness, Waker};
use crate::{AppState, Request, Response, Router, StatusCode};
use crowdweb_exec::{PoolSaturated, WorkerPool};
use crowdweb_obs::{Counter, Gauge, Histogram, MetricsRegistry, HTTP_LATENCY_BUCKETS};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Tunables for the evented connection loop. Constructed by `Server`'s
/// builder methods; defaults suit an interactive deployment.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// How long a connection may take to deliver a complete request
    /// head + body before being reaped (default 30 s).
    pub read_timeout: Duration,
    /// How long a connection may take to drain its response bytes
    /// (default 30 s).
    pub write_timeout: Duration,
    /// Open-connection cap; sockets accepted beyond it get an
    /// immediate `503` (default 1024).
    pub max_connections: usize,
    /// Worker threads executing `Router::dispatch` off the event
    /// thread (default 8).
    pub workers: usize,
    /// Bound on jobs queued for the workers; a full queue answers
    /// `503` instead of growing latency without limit (default 128).
    pub job_queue_capacity: usize,
    /// Requests served per connection before the server closes it
    /// (keep-alive budget, default 100; minimum 1). The last response
    /// says `Connection: close`.
    pub keep_alive_requests: u32,
    /// How long a keep-alive connection may sit idle between requests
    /// before being reaped (default 5 s).
    pub keep_alive_idle: Duration,
    /// Per-connection in-flight budget for streamed (chunked) response
    /// bodies, in encoded bytes (default 64 KiB). A stream's producer
    /// is polled only while fewer than this many encoded-but-unwritten
    /// bytes are buffered, so a stalled consumer parks the producer
    /// instead of growing server memory: peak buffering is bounded by
    /// the budget plus one chunk.
    pub stream_budget: usize,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            max_connections: 1024,
            workers: 8,
            job_queue_capacity: 128,
            keep_alive_requests: 100,
            keep_alive_idle: Duration::from_secs(5),
            stream_budget: 64 * 1024,
        }
    }
}

/// A worker's serialized response: either every byte up front
/// (`Content-Length` framing) or the head plus a live chunk producer
/// the write path pulls as the socket drains.
enum Payload {
    /// Head + body serialized into one buffer.
    Full(Vec<u8>),
    /// Serialized head (declaring `Transfer-Encoding: chunked`) and
    /// the producer of the body chunks, with the canonical route label
    /// for the streamed-bytes metrics.
    Stream {
        head: Vec<u8>,
        body: Box<dyn BodyStream>,
        route: String,
    },
}

/// Token-addressed completion from a worker: the response payload plus
/// the negotiated keep-alive disposition, or `None` when the
/// connection should just be dropped.
type Completion = (u64, Option<(Payload, bool)>);

/// What happens once a `Writing` buffer drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriteThen {
    /// `Connection: close` semantics: flush, drain, hang up.
    Close,
    /// Keep-alive: return to `Reading` and serve any pipelined bytes.
    Continue,
}

enum ConnState {
    /// Accumulating request bytes until the head terminator and the
    /// declared body length are both satisfied.
    Reading {
        buf: Vec<u8>,
        head_end: Option<usize>,
        /// Total bytes (head + body) that make the request complete.
        want: Option<usize>,
    },
    /// A worker owns the request; the loop only waits.
    Dispatched,
    /// Serialized response bytes draining through nonblocking writes.
    /// With an active `stream`, `buf` holds the encoded-but-unwritten
    /// window of a chunked body and is refilled from the producer each
    /// time it drains — never holding more than the stream budget plus
    /// one chunk.
    Writing {
        buf: Vec<u8>,
        written: usize,
        then: WriteThen,
        stream: Option<LiveStream>,
    },
}

/// A streamed body being pulled through a connection, with its
/// per-route metric handles resolved once at response start.
struct LiveStream {
    body: Box<dyn BodyStream>,
    /// Set once the producer returned `None` and the terminal chunk
    /// was appended to the write buffer.
    done: bool,
    /// A producer failure held back until the chunks encoded before it
    /// have drained: everything the producer yielded still reaches the
    /// client, *then* the connection tears down without the terminal
    /// chunk.
    failed: Option<io::Error>,
    streamed_bytes: Counter,
    streamed_chunks: Counter,
}

impl LiveStream {
    fn new(body: Box<dyn BodyStream>, route: &str, metrics: &ReactorMetrics) -> LiveStream {
        LiveStream {
            body,
            done: false,
            failed: None,
            streamed_bytes: metrics.registry.counter(
                "crowdweb_http_streamed_body_bytes_total",
                "Streamed (chunked) response body bytes produced, by route pattern.",
                &[("route", route)],
            ),
            streamed_chunks: metrics.registry.counter(
                "crowdweb_http_streamed_chunks_total",
                "Chunks produced by streamed response bodies, by route pattern.",
                &[("route", route)],
            ),
        }
    }
}

struct Conn {
    stream: TcpStream,
    state: ConnState,
    /// When the current request started arriving — the latency clock
    /// for access metrics (reset per keep-alive request).
    started: Instant,
    /// Loop-enforced deadline; `None` while a handler runs.
    deadline: Option<Instant>,
    /// Requests fully served on this connection so far.
    served: u32,
    /// Pipelined bytes received beyond the request currently being
    /// handled; become the next `Reading` buffer.
    pending: Vec<u8>,
    /// Set once the client half-closed: no further requests can
    /// arrive, so every response is final.
    saw_eof: bool,
}

impl Conn {
    fn new(stream: TcpStream, read_timeout: Duration) -> Conn {
        let accepted_at = Instant::now();
        Conn {
            stream,
            state: ConnState::Reading {
                buf: Vec::new(),
                head_end: None,
                want: None,
            },
            started: accepted_at,
            deadline: Some(accepted_at + read_timeout),
            served: 0,
            pending: Vec::new(),
            saw_eof: false,
        }
    }

    /// The poll interest for the current state.
    fn interest(&self) -> Interest {
        match self.state {
            ConnState::Reading { .. } => Interest {
                read: true,
                write: false,
            },
            // No interest while a worker runs — the self-pipe delivers
            // the completion; the kernel still reports errors/hangups.
            ConnState::Dispatched => Interest {
                read: false,
                write: false,
            },
            ConnState::Writing { .. } => Interest {
                read: false,
                write: true,
            },
        }
    }

    /// Whether this connection is parked between keep-alive requests
    /// with nothing buffered — the reap of such a connection is
    /// housekeeping, not client misbehaviour.
    fn idle_between_requests(&self) -> bool {
        matches!(&self.state, ConnState::Reading { buf, .. }
            if self.served > 0 && buf.is_empty())
    }
}

/// Pre-registered reactor metric handles, so the hot loop never touches
/// the registry's family table.
struct ReactorMetrics {
    registry: MetricsRegistry,
    open_connections: Gauge,
    deferred_writes: Gauge,
    tick_seconds: Histogram,
    read_timeouts: Counter,
    write_timeouts: Counter,
    rejected_cap: Counter,
    rejected_busy: Counter,
    keepalive_reuses: Counter,
    keepalive_reaped: Counter,
    stream_buffered: Gauge,
    stream_aborts: Counter,
}

impl ReactorMetrics {
    fn new(registry: MetricsRegistry) -> ReactorMetrics {
        ReactorMetrics {
            open_connections: registry.gauge(
                "crowdweb_server_open_connections",
                "Connections currently registered with the reactor.",
                &[],
            ),
            deferred_writes: registry.gauge(
                "crowdweb_server_deferred_writes",
                "Connections with response bytes queued but not yet fully written.",
                &[],
            ),
            tick_seconds: registry.histogram(
                "crowdweb_server_reactor_tick_seconds",
                "Wall-clock seconds per reactor wakeup that moved bytes or events.",
                &[],
                &HTTP_LATENCY_BUCKETS,
            ),
            read_timeouts: registry.counter(
                "crowdweb_http_timeouts_total",
                "Connections dropped at the read deadline before a complete request arrived.",
                &[],
            ),
            write_timeouts: registry.counter(
                "crowdweb_server_write_timeouts_total",
                "Connections dropped at the write deadline with a response still queued.",
                &[],
            ),
            rejected_cap: registry.counter(
                "crowdweb_server_rejected_total",
                "Connections refused with 503, by reason.",
                &[("reason", "max_connections")],
            ),
            rejected_busy: registry.counter(
                "crowdweb_server_rejected_total",
                "Connections refused with 503, by reason.",
                &[("reason", "worker_queue_full")],
            ),
            keepalive_reuses: registry.counter(
                "crowdweb_server_keepalive_reuses_total",
                "Requests served on an already-used (kept-alive) connection.",
                &[],
            ),
            keepalive_reaped: registry.counter(
                "crowdweb_server_keepalive_reaped_total",
                "Idle keep-alive connections reaped at the idle deadline.",
                &[],
            ),
            stream_buffered: registry.gauge(
                "crowdweb_server_stream_buffered_bytes",
                "Encoded-but-unwritten streamed body bytes across all connections.",
                &[],
            ),
            stream_aborts: registry.counter(
                "crowdweb_server_stream_aborts_total",
                "Streamed responses aborted by a mid-body producer error (connection closed without the terminal chunk).",
                &[],
            ),
            registry,
        }
    }
}

/// Shared per-wakeup context threaded through the state machine.
struct Ctx<'a> {
    state: &'a Arc<AppState>,
    router: &'a Arc<Router<AppState>>,
    pool: &'a WorkerPool,
    done_tx: &'a mpsc::Sender<Completion>,
    waker: &'a Waker,
    metrics: &'a ReactorMetrics,
    config: &'a ReactorConfig,
}

enum Drive {
    /// Bytes or events moved.
    Progress,
    /// Nothing to do right now.
    Idle,
    /// The connection is finished (drained, dead, or hopeless).
    Close,
}

/// Runs the event loop until `shutdown` is observed. Consumes the
/// listener; joins the worker pool before returning.
pub(crate) fn run(
    listener: TcpListener,
    state: Arc<AppState>,
    router: Arc<Router<AppState>>,
    shutdown: Arc<AtomicBool>,
    config: ReactorConfig,
) {
    listener
        .set_nonblocking(true)
        .expect("listener supports nonblocking mode");
    // A 10k-connection storm overflows the default accept backlog (128)
    // long before the event loop falls behind.
    sys::boost_listen_backlog(&listener, 1024);
    let metrics = ReactorMetrics::new(state.metrics().clone());
    let pool = WorkerPool::new(config.workers, config.job_queue_capacity);
    let (done_tx, done_rx) = mpsc::channel::<Completion>();
    let (waker, wake_rx) = sys::wake_pair().expect("self-pipe pair");
    let mut pollset = PollSet::new();
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = 0;

    while !shutdown.load(Ordering::SeqCst) {
        // 1. Block until the kernel has something for us: a pending
        // accept, a readable/writable connection, a worker completion
        // (self-pipe), or the nearest deadline. This wait is the whole
        // point — an idle server sits here at zero CPU.
        pollset.clear();
        pollset.register_listener(&listener);
        pollset.register_waker(&wake_rx);
        for (&token, conn) in conns.iter() {
            pollset.register(&conn.stream, token, conn.interest());
        }
        let now = Instant::now();
        let timeout = conns
            .values()
            .filter_map(|c| c.deadline)
            .min()
            .map(|deadline| deadline.saturating_duration_since(now));
        if pollset.wait(timeout).is_err() {
            // A failed poll is unrecoverable loop state; degrade to a
            // short park rather than spinning on the error.
            std::thread::sleep(Duration::from_millis(1));
        }
        wake_rx.drain();

        let woke = Instant::now();
        let mut progressed = false;
        let ctx = Ctx {
            state: &state,
            router: &router,
            pool: &pool,
            done_tx: &done_tx,
            waker: &waker,
            metrics: &metrics,
            config: &config,
        };

        // 2. Accept every pending socket (cap-aware).
        if pollset.listener_ready() {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        progressed = true;
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        // Nagle delays the second and later responses
                        // on a pipelined/kept-alive connection by up to
                        // a delayed-ACK interval (~40ms); responses are
                        // written whole, so there is nothing for Nagle
                        // to usefully coalesce.
                        let _ = stream.set_nodelay(true);
                        let mut conn = Conn::new(stream, config.read_timeout);
                        if conns.len() >= config.max_connections {
                            // Over the cap: answer 503 through the
                            // normal write path (the connection
                            // occupies a map slot only until the
                            // refusal drains). The request was never
                            // read, so the refusal always closes.
                            metrics.rejected_cap.inc();
                            queue_response(
                                &mut conn,
                                Response::error(
                                    StatusCode::ServiceUnavailable,
                                    "connection limit reached",
                                ),
                                false,
                                config.write_timeout,
                            );
                        }
                        conns.insert(next_token, conn);
                        next_token += 1;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        // 3. Move finished worker responses into write queues, then
        // immediately attempt the write — the socket is almost always
        // writable, so most responses go out without another poll.
        let mut closed: Vec<u64> = Vec::new();
        while let Ok((token, payload)) = done_rx.try_recv() {
            progressed = true;
            match payload {
                Some((payload, keep_alive)) => {
                    if let Some(conn) = conns.get_mut(&token) {
                        let keep = keep_alive && !conn.saw_eof;
                        let (buf, stream) = match payload {
                            Payload::Full(bytes) => (bytes, None),
                            Payload::Stream { head, body, route } => {
                                (head, Some(LiveStream::new(body, &route, &metrics)))
                            }
                        };
                        conn.state = ConnState::Writing {
                            buf,
                            written: 0,
                            then: if keep {
                                WriteThen::Continue
                            } else {
                                WriteThen::Close
                            },
                            stream,
                        };
                        conn.deadline = Some(Instant::now() + config.write_timeout);
                        if matches!(drive(token, conn, &ctx), Drive::Close) {
                            closed.push(token);
                        }
                    }
                }
                None => {
                    conns.remove(&token);
                }
            }
        }
        for token in closed.drain(..) {
            conns.remove(&token);
        }

        // 4. Pump every connection the kernel flagged.
        let ready: Vec<(u64, Readiness)> = pollset.ready().collect();
        for (token, readiness) in ready {
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            // A dispatched connection has no read/write interest, so
            // any readiness here is the kernel reporting the client
            // gone (POLLHUP/POLLERR) — the response has nowhere to go.
            if matches!(conn.state, ConnState::Dispatched) {
                if readiness.dead {
                    progressed = true;
                    conns.remove(&token);
                }
                continue;
            }
            match drive(token, conn, &ctx) {
                Drive::Progress => progressed = true,
                Drive::Idle => {}
                Drive::Close => {
                    progressed = true;
                    conns.remove(&token);
                }
            }
        }

        // 5. Deadlines, enforced by the loop instead of per-socket
        // timeouts. A reading connection past its deadline mid-request
        // is client misbehaviour: count it, never answer it. An idle
        // keep-alive connection is just housekeeping.
        let now = Instant::now();
        conns.retain(|_, conn| match conn.deadline {
            Some(deadline) if now >= deadline => {
                if conn.idle_between_requests() {
                    metrics.keepalive_reaped.inc();
                } else {
                    match conn.state {
                        ConnState::Reading { .. } => metrics.read_timeouts.inc(),
                        _ => metrics.write_timeouts.inc(),
                    }
                }
                false
            }
            _ => true,
        });

        // 6. Loop-health signals.
        metrics.open_connections.set(conns.len() as i64);
        let deferred = conns
            .values()
            .filter(|c| matches!(c.state, ConnState::Writing { .. }))
            .count();
        metrics.deferred_writes.set(deferred as i64);
        let stream_buffered: usize = conns
            .values()
            .map(|c| match &c.state {
                ConnState::Writing {
                    buf,
                    written,
                    stream: Some(_),
                    ..
                } => buf.len().saturating_sub(*written),
                _ => 0,
            })
            .sum();
        metrics.stream_buffered.set(stream_buffered as i64);
        if progressed {
            metrics.tick_seconds.observe(woke.elapsed().as_secs_f64());
        }
    }

    metrics.open_connections.set(0);
    metrics.deferred_writes.set(0);
    metrics.stream_buffered.set(0);
    drop(conns);
    drop(pool); // drains queued jobs and joins every worker
}

/// Serializes a loop-generated response (over-cap or pool-saturated
/// 503) and moves the connection straight to `Writing`, honouring the
/// connection's negotiated disposition.
fn queue_response(conn: &mut Conn, response: Response, keep_alive: bool, write_timeout: Duration) {
    let mut out = Vec::new();
    let _ = response.write_to_with(&mut out, keep_alive);
    conn.state = ConnState::Writing {
        buf: out,
        written: 0,
        then: if keep_alive {
            WriteThen::Continue
        } else {
            WriteThen::Close
        },
        stream: None,
    };
    conn.deadline = Some(Instant::now() + write_timeout);
}

/// Advances one connection's state machine as far as it can go without
/// another poll event: a drained keep-alive response rolls straight
/// into reading (and possibly dispatching) the next pipelined request.
fn drive(token: u64, conn: &mut Conn, ctx: &Ctx<'_>) -> Drive {
    let mut progressed = false;
    loop {
        let step = match conn.state {
            ConnState::Reading { .. } => drive_read(token, conn, ctx),
            ConnState::Dispatched => Drive::Idle,
            ConnState::Writing { .. } => drive_write(token, conn, ctx),
        };
        match step {
            Drive::Progress => {
                progressed = true;
                // A state transition may leave more work doable right
                // now (pipelined request buffered, response writable):
                // keep going until the machine genuinely blocks.
                if matches!(conn.state, ConnState::Dispatched) {
                    return Drive::Progress;
                }
            }
            Drive::Idle => {
                return if progressed {
                    Drive::Progress
                } else {
                    Drive::Idle
                };
            }
            Drive::Close => return Drive::Close,
        }
    }
}

fn drive_read(token: u64, conn: &mut Conn, ctx: &Ctx<'_>) -> Drive {
    // A pipelined request may already be complete in the buffer from
    // the previous drain — serve it before touching the socket.
    if reading_complete(conn) {
        dispatch(token, conn, ctx);
        return Drive::Progress;
    }
    let mut progressed = false;
    loop {
        let mut chunk = [0u8; 8192];
        match conn.stream.read(&mut chunk) {
            // EOF: the client finished (or gave up) — finalize with
            // whatever arrived. The parser decides between a request,
            // a 400, or nothing to say; a clean between-requests close
            // deserves silence, not an error.
            Ok(0) => {
                conn.saw_eof = true;
                let empty = matches!(&conn.state, ConnState::Reading { buf, .. } if buf.is_empty());
                if empty {
                    return Drive::Close;
                }
                dispatch(token, conn, ctx);
                return Drive::Progress;
            }
            Ok(n) => {
                progressed = true;
                // First bytes of a fresh keep-alive request: the idle
                // deadline becomes a read deadline — the client now
                // owes us a complete request.
                let was_idle = conn.idle_between_requests();
                if was_idle {
                    conn.started = Instant::now();
                    conn.deadline = Some(Instant::now() + ctx.config.read_timeout);
                }
                if accumulate(conn, &chunk[..n]) {
                    dispatch(token, conn, ctx);
                    return Drive::Progress;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Drive::Close,
        }
    }
    if progressed {
        Drive::Progress
    } else {
        Drive::Idle
    }
}

/// Whether the `Reading` buffer already holds a complete request.
fn reading_complete(conn: &mut Conn) -> bool {
    matches!(conn.state, ConnState::Reading { .. }) && accumulate(conn, &[])
}

/// Extends the read buffer and re-evaluates completeness. Returns true
/// once the buffered bytes should go to a worker.
fn accumulate(conn: &mut Conn, bytes: &[u8]) -> bool {
    let ConnState::Reading {
        buf,
        head_end,
        want,
    } = &mut conn.state
    else {
        return false;
    };
    buf.extend_from_slice(bytes);
    if head_end.is_none() {
        *head_end = find_head_end(buf);
        match *head_end {
            Some(end) => {
                *want = Some(match scan_head(&buf[..end]) {
                    HeadScan::BodyBytes(n) => end + n,
                    // Untrustworthy head: don't wait for a body that
                    // may never come — parse now for the real 400.
                    HeadScan::Malformed => end,
                });
            }
            // A head that exceeds every parser bound without ever
            // terminating gets parsed as-is; `read_line_bounded` and
            // the head-size cap turn it into the right 400.
            None if buf.len() > MAX_HEAD_BYTES + MAX_LINE_BYTES => {
                *want = Some(buf.len());
            }
            None => {}
        }
    }
    want.is_some_and(|w| buf.len() >= w)
}

/// Moves a connection to `Dispatched` and hands its buffered request to
/// the worker pool; bytes pipelined beyond the request stay behind for
/// the next round. On a saturated pool the event thread sheds load
/// itself with a 503 that honours the connection's keep-alive.
fn dispatch(token: u64, conn: &mut Conn, ctx: &Ctx<'_>) {
    let ConnState::Reading {
        mut buf,
        head_end,
        want,
    } = std::mem::replace(&mut conn.state, ConnState::Dispatched)
    else {
        return;
    };
    conn.deadline = None;
    if conn.served > 0 {
        ctx.metrics.keepalive_reuses.inc();
    }
    let take = want.unwrap_or(buf.len()).min(buf.len());
    conn.pending = buf.split_off(take);
    // The keep-alive offer this request is allowed: budget not yet
    // exhausted by this request, and the client still able to send
    // more (no half-close seen).
    let allow_keep_alive = conn.served + 1 < ctx.config.keep_alive_requests.max(1) && !conn.saw_eof;
    // The shed path answers without parsing, so its disposition comes
    // from a head scan — computed now, before `buf` moves into the job.
    let shed_keep_alive = allow_keep_alive
        && head_end.is_some_and(|end| scan_wants_keep_alive(&buf[..end.min(buf.len())]));
    let started = conn.started;
    let state = Arc::clone(ctx.state);
    let router = Arc::clone(ctx.router);
    let registry = ctx.metrics.registry.clone();
    let done = ctx.done_tx.clone();
    let waker = ctx.waker.clone();
    let job = move || {
        let payload = execute(&buf, allow_keep_alive, &state, &router, &registry, started).map(
            |(r, keep, route)| {
                let (mut head, body) = r.into_head_and_body(keep);
                let payload = match body {
                    ResponseBody::Full(bytes) => {
                        head.reserve(bytes.len());
                        head.extend_from_slice(&bytes);
                        Payload::Full(head)
                    }
                    ResponseBody::Stream(body) => Payload::Stream { head, body, route },
                };
                (payload, keep)
            },
        );
        let _ = done.send((token, payload));
        // Poke the event loop out of `poll` — without this the
        // response would wait for the next unrelated event or timeout.
        waker.wake();
    };
    if let Err(PoolSaturated(job)) = ctx.pool.try_execute(job) {
        drop(job);
        ctx.metrics.rejected_busy.inc();
        // The request was read and well-formed — shedding it must not
        // cost the client its connection if keep-alive was negotiated.
        queue_response(
            conn,
            Response::error(StatusCode::ServiceUnavailable, "worker queue full")
                .with_retry_after(crate::api::RETRY_AFTER_SECS),
            shed_keep_alive,
            ctx.config.write_timeout,
        );
    }
}

/// Parses and routes one buffered request on a worker thread. Returns
/// the response to write, the negotiated keep-alive disposition, and
/// the canonical route label (for streamed-body metrics), or `None`
/// when the connection deserves nothing (unreadable stream, panicking
/// handler).
fn execute(
    bytes: &[u8],
    allow_keep_alive: bool,
    state: &AppState,
    router: &Router<AppState>,
    registry: &MetricsRegistry,
    started: Instant,
) -> Option<(Response, bool, String)> {
    match Request::read_from(bytes) {
        Ok(request) => {
            let keep = allow_keep_alive && request.wants_keep_alive();
            // A panicking handler must not take the worker down or leak
            // the connection: catch, drop the connection, keep serving.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                router.dispatch(state, &request)
            }));
            match result {
                Ok((response, route)) => {
                    let route = route.unwrap_or("unmatched").to_owned();
                    record_access(
                        registry,
                        &request.method.to_string(),
                        &route,
                        &response,
                        request.body.len(),
                        started,
                    );
                    Some((response, keep, route))
                }
                Err(_) => {
                    eprintln!("crowdweb: connection handler panicked; worker recovered");
                    None
                }
            }
        }
        // Malformed head (InvalidData) or a body shorter than its
        // Content-Length (read_exact → UnexpectedEof): the client sent
        // a broken request and deserves a 400, not a silent drop. A
        // broken request also forfeits its framing, so the connection
        // always closes after the 400.
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
            ) =>
        {
            let message = if e.kind() == io::ErrorKind::UnexpectedEof {
                "request body shorter than content-length".to_owned()
            } else {
                e.to_string()
            };
            let response = Response::error(StatusCode::BadRequest, &message);
            record_access(registry, "invalid", "unparsed", &response, 0, started);
            Some((response, false, "unparsed".to_owned()))
        }
        Err(_) => None,
    }
}

fn drive_write(token: u64, conn: &mut Conn, ctx: &Ctx<'_>) -> Drive {
    let ConnState::Writing {
        buf,
        written,
        then,
        stream,
    } = &mut conn.state
    else {
        return Drive::Idle;
    };
    let then = *then;
    // A closing response never had (or no longer wants) its request
    // stream read: discard arriving bytes so the close is a FIN, not a
    // RST that would destroy the response before the client reads it.
    // A keep-alive connection must NOT drain — those bytes are the
    // client's next pipelined request.
    if then == WriteThen::Close {
        drain_input(&mut conn.stream);
    }
    let mut progressed = false;
    loop {
        while *written < buf.len() {
            match conn.stream.write(&buf[*written..]) {
                Ok(0) => return Drive::Close,
                Ok(n) => {
                    *written += n;
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // The socket stalled with encoded bytes still
                    // queued: the producer stays parked until this
                    // window drains — backpressure, not buffering.
                    return if progressed {
                        Drive::Progress
                    } else {
                        Drive::Idle
                    };
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Drive::Close,
            }
        }
        // Window drained. Pull the next window from an active stream;
        // a finished (or absent) stream means the response is complete.
        let Some(live) = stream.as_mut() else { break };
        if live.done {
            *stream = None;
            break;
        }
        match refill_stream(buf, written, live, ctx.config.stream_budget) {
            Ok(()) => {
                progressed = true;
                // The producer made progress, so the write deadline
                // clocks the new window — a long stream is not
                // penalized for its total size, only for stalling.
                conn.deadline = Some(Instant::now() + ctx.config.write_timeout);
            }
            Err(_) => {
                // Producer died mid-body: tear the connection down
                // WITHOUT the terminal chunk, so the client's decoder
                // sees truncation instead of a short-but-valid body.
                ctx.metrics.stream_aborts.inc();
                return Drive::Close;
            }
        }
    }
    let _ = conn.stream.flush();
    match then {
        WriteThen::Close => {
            drain_input(&mut conn.stream);
            Drive::Close
        }
        WriteThen::Continue => {
            // Response fully drained under keep-alive: back to Reading
            // with whatever the client pipelined behind the request.
            // The caller's drive loop immediately re-evaluates, so a
            // buffered complete request dispatches without waiting for
            // a poll event. `token` keeps the access path uniform.
            let _ = token;
            conn.served += 1;
            conn.started = Instant::now();
            let buffered = std::mem::take(&mut conn.pending);
            let idle = buffered.is_empty();
            conn.state = ConnState::Reading {
                buf: buffered,
                head_end: None,
                want: None,
            };
            conn.deadline = Some(
                Instant::now()
                    + if idle {
                        ctx.config.keep_alive_idle
                    } else {
                        ctx.config.read_timeout
                    },
            );
            Drive::Progress
        }
    }
}

/// Refills a drained write window from a streamed body: pulls and
/// chunk-encodes producer output until at least `budget` encoded bytes
/// are queued or the body completes (appending the terminal chunk
/// exactly once). The window therefore never exceeds the budget plus
/// one encoded chunk — the reactor's bounded-memory guarantee for
/// streams.
///
/// # Errors
///
/// Propagates a producer failure; the caller must close the connection
/// without the terminal chunk. A failure that strikes after this
/// refill already encoded chunks is held on the stream and returned by
/// the *next* refill instead, so everything the producer yielded
/// before dying still reaches the client ahead of the teardown.
fn refill_stream(
    buf: &mut Vec<u8>,
    written: &mut usize,
    live: &mut LiveStream,
    budget: usize,
) -> io::Result<()> {
    if let Some(err) = live.failed.take() {
        return Err(err);
    }
    buf.clear();
    *written = 0;
    while !live.done && buf.len() < budget.max(1) {
        match live.body.next_chunk() {
            Ok(Some(data)) if data.is_empty() => continue,
            Ok(Some(data)) => {
                live.streamed_chunks.inc();
                live.streamed_bytes.add(data.len() as u64);
                encode_chunk(buf, &data);
            }
            Ok(None) => {
                buf.extend_from_slice(LAST_CHUNK);
                live.done = true;
            }
            Err(err) if buf.is_empty() => return Err(err),
            Err(err) => {
                live.failed = Some(err);
                break;
            }
        }
    }
    Ok(())
}

/// Reads and discards whatever is waiting on the socket (bounded per
/// call so an aggressive sender cannot pin the loop).
fn drain_input(stream: &mut TcpStream) {
    let mut scratch = [0u8; 4096];
    for _ in 0..8 {
        match stream.read(&mut scratch) {
            Ok(n) if n > 0 => continue,
            _ => break,
        }
    }
}

/// Records one access into the route-keyed request metrics. Routes are
/// labelled by registration pattern (bounded cardinality), never by raw
/// request path.
pub(crate) fn record_access(
    metrics: &MetricsRegistry,
    method: &str,
    route: &str,
    response: &Response,
    request_body_bytes: usize,
    started: Instant,
) {
    let status = response.status.code().to_string();
    metrics
        .counter(
            "crowdweb_http_requests_total",
            "HTTP requests served, by method, route pattern, and status.",
            &[("method", method), ("route", route), ("status", &status)],
        )
        .inc();
    metrics
        .histogram(
            "crowdweb_http_request_seconds",
            "Wall-clock seconds from first read to response ready, by route pattern.",
            &[("route", route)],
            &HTTP_LATENCY_BUCKETS,
        )
        .observe(started.elapsed().as_secs_f64());
    metrics
        .counter(
            "crowdweb_http_request_body_bytes_total",
            "Request body bytes received, by route pattern.",
            &[("route", route)],
        )
        .add(request_body_bytes as u64);
    metrics
        .counter(
            "crowdweb_http_response_body_bytes_total",
            "Response body bytes produced, by route pattern.",
            &[("route", route)],
        )
        .add(response.body.len_hint() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api;
    use crowdweb_synth::SynthConfig;

    fn app() -> (Arc<AppState>, Arc<Router<AppState>>, MetricsRegistry) {
        let dataset = SynthConfig::small(71).users(10).generate().unwrap();
        let state = AppState::build(dataset, 10).unwrap();
        let registry = state.metrics().clone();
        (Arc::new(state), Arc::new(api::build_router()), registry)
    }

    #[test]
    fn execute_routes_complete_requests_and_records() {
        let (state, router, registry) = app();
        let (response, keep, route) = execute(
            b"GET /api/stats HTTP/1.1\r\nHost: t\r\n\r\n",
            true,
            &state,
            &router,
            &registry,
            Instant::now(),
        )
        .expect("well-formed request gets a response");
        assert_eq!(response.status.code(), 200);
        assert!(keep, "an HTTP/1.1 request with budget left keeps alive");
        assert_eq!(route, "/api/v1/stats");
        // The legacy spelling folds into the canonical v1 route label.
        assert_eq!(
            registry.counter_value(
                "crowdweb_http_requests_total",
                &[
                    ("method", "GET"),
                    ("route", "/api/v1/stats"),
                    ("status", "200")
                ]
            ),
            Some(1)
        );
    }

    #[test]
    fn execute_negotiates_connection_disposition() {
        let (state, router, registry) = app();
        // Client asks to close: honoured even with budget left.
        let (_, keep, _) = execute(
            b"GET /api/stats HTTP/1.1\r\nConnection: close\r\n\r\n",
            true,
            &state,
            &router,
            &registry,
            Instant::now(),
        )
        .unwrap();
        assert!(!keep);
        // Budget exhausted: closed even though the client would stay.
        let (_, keep, _) = execute(
            b"GET /api/stats HTTP/1.1\r\n\r\n",
            false,
            &state,
            &router,
            &registry,
            Instant::now(),
        )
        .unwrap();
        assert!(!keep);
    }

    #[test]
    fn execute_maps_parser_errors_to_400() {
        let (state, router, registry) = app();
        let (response, keep, _) = execute(
            b"BREW /coffee HTCPCP/1.0\r\n\r\n",
            true,
            &state,
            &router,
            &registry,
            Instant::now(),
        )
        .expect("malformed request gets a 400");
        assert_eq!(response.status.code(), 400);
        assert!(!keep, "a broken request forfeits its framing — close");
        // Truncated body keeps the dedicated message.
        let (response, _, _) = execute(
            b"POST /api/upload HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort",
            true,
            &state,
            &router,
            &registry,
            Instant::now(),
        )
        .unwrap();
        assert_eq!(response.status.code(), 400);
        assert!(String::from_utf8(response.into_body_bytes())
            .unwrap()
            .contains("content-length"));
        assert_eq!(
            registry.counter_value(
                "crowdweb_http_requests_total",
                &[
                    ("method", "invalid"),
                    ("route", "unparsed"),
                    ("status", "400")
                ]
            ),
            Some(2)
        );
    }

    fn idle_conn() -> Conn {
        let stream = TcpStream::connect(
            std::net::TcpListener::bind("127.0.0.1:0")
                .unwrap()
                .local_addr()
                .unwrap(),
        )
        .unwrap();
        Conn::new(stream, Duration::from_secs(1))
    }

    #[test]
    fn accumulate_tracks_head_and_body_completion() {
        let mut conn = idle_conn();
        assert!(!accumulate(&mut conn, b"POST /x HTTP/1.1\r\nContent-"));
        assert!(!accumulate(&mut conn, b"Length: 5\r\n\r\n"));
        assert!(!accumulate(&mut conn, b"he"));
        assert!(accumulate(&mut conn, b"llo"));
        let ConnState::Reading { buf, want, .. } = &conn.state else {
            panic!("still reading");
        };
        assert_eq!(*want, Some(buf.len()));
    }

    #[test]
    fn pipelined_bytes_stay_pending_after_dispatch() {
        let (state, router, registry) = app();
        let pool = WorkerPool::new(1, 8);
        let (done_tx, _done_rx) = mpsc::channel::<Completion>();
        let (waker, _wake_rx) = sys::wake_pair().unwrap();
        let metrics = ReactorMetrics::new(registry);
        let config = ReactorConfig::default();
        let ctx = Ctx {
            state: &state,
            router: &router,
            pool: &pool,
            done_tx: &done_tx,
            waker: &waker,
            metrics: &metrics,
            config: &config,
        };
        let mut conn = idle_conn();
        // Two complete requests in one segment: only the first goes to
        // the worker; the second waits in `pending`.
        assert!(accumulate(
            &mut conn,
            b"GET /api/v1/stats HTTP/1.1\r\n\r\nGET /api/v1/healthz HTTP/1.1\r\n\r\n"
        ));
        dispatch(0, &mut conn, &ctx);
        assert!(matches!(conn.state, ConnState::Dispatched));
        assert_eq!(conn.pending, b"GET /api/v1/healthz HTTP/1.1\r\n\r\n");
    }

    /// Builds a deterministically saturated pool: one parked worker,
    /// one filled queue slot. Returns the park release handle.
    fn saturated_pool() -> (WorkerPool, mpsc::Sender<()>) {
        let pool = WorkerPool::new(1, 1);
        let (park_tx, park_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.try_execute(move || {
            let _ = started_tx.send(());
            let _ = park_rx.recv();
        })
        .unwrap();
        started_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("worker picks up the parked job");
        pool.try_execute(|| {}).expect("queue slot is free");
        (pool, park_tx)
    }

    #[test]
    fn saturated_pool_503_advertises_retry_after_and_keeps_alive() {
        let (state, router, registry) = app();
        let (pool, park_tx) = saturated_pool();
        let (done_tx, _done_rx) = mpsc::channel::<Completion>();
        let (waker, _wake_rx) = sys::wake_pair().unwrap();
        let metrics = ReactorMetrics::new(registry);
        let config = ReactorConfig::default();
        let ctx = Ctx {
            state: &state,
            router: &router,
            pool: &pool,
            done_tx: &done_tx,
            waker: &waker,
            metrics: &metrics,
            config: &config,
        };
        let mut conn = idle_conn();
        assert!(accumulate(&mut conn, b"GET /api/v1/stats HTTP/1.1\r\n\r\n"));
        dispatch(0, &mut conn, &ctx);
        let ConnState::Writing { buf, then, .. } = &conn.state else {
            panic!("shed connection should be writing its 503");
        };
        let wire = String::from_utf8_lossy(buf);
        assert!(wire.starts_with("HTTP/1.1 503 "), "{wire}");
        assert!(wire.contains("worker queue full"), "{wire}");
        let head = &wire[..wire.find("\r\n\r\n").unwrap()];
        assert!(head.contains("Retry-After: 1"), "{head}");
        // The shed request negotiated keep-alive (HTTP/1.1, budget
        // left), so the 503 must not kill the client's pipeline.
        assert_eq!(*then, WriteThen::Continue);
        assert!(head.contains("Connection: keep-alive"), "{head}");
        let _ = park_tx.send(());
    }

    #[test]
    fn saturated_pool_503_honours_a_close_request() {
        let (state, router, registry) = app();
        let (pool, park_tx) = saturated_pool();
        let (done_tx, _done_rx) = mpsc::channel::<Completion>();
        let (waker, _wake_rx) = sys::wake_pair().unwrap();
        let metrics = ReactorMetrics::new(registry);
        let config = ReactorConfig::default();
        let ctx = Ctx {
            state: &state,
            router: &router,
            pool: &pool,
            done_tx: &done_tx,
            waker: &waker,
            metrics: &metrics,
            config: &config,
        };
        let mut conn = idle_conn();
        assert!(accumulate(
            &mut conn,
            b"GET /api/v1/stats HTTP/1.1\r\nConnection: close\r\n\r\n"
        ));
        dispatch(0, &mut conn, &ctx);
        let ConnState::Writing { buf, then, .. } = &conn.state else {
            panic!("shed connection should be writing its 503");
        };
        assert_eq!(*then, WriteThen::Close);
        assert!(
            String::from_utf8_lossy(buf).contains("Connection: close"),
            "client asked to close; the shed 503 must agree"
        );
        let _ = park_tx.send(());
    }

    #[test]
    fn over_cap_refusal_always_closes() {
        let mut conn = idle_conn();
        queue_response(
            &mut conn,
            Response::error(StatusCode::ServiceUnavailable, "connection limit reached"),
            false,
            Duration::from_secs(1),
        );
        let ConnState::Writing { buf, then, .. } = &conn.state else {
            panic!("refusal should be queued");
        };
        assert_eq!(*then, WriteThen::Close);
        assert!(String::from_utf8_lossy(buf).contains("Connection: close"));
    }

    #[test]
    fn accumulate_finalizes_untrustworthy_heads_without_waiting() {
        let mut conn = idle_conn();
        // Conflicting Content-Length: complete immediately (no body
        // wait), so the parser can answer 400 now.
        assert!(accumulate(
            &mut conn,
            b"POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 3\r\n\r\n"
        ));
    }

    /// A scripted producer: yields `chunks` in order, then the given
    /// terminal outcome. Counts how many times it was polled.
    struct Scripted {
        chunks: Vec<Vec<u8>>,
        polls: usize,
        fail_at_end: bool,
    }

    impl BodyStream for Scripted {
        fn next_chunk(&mut self) -> io::Result<Option<Vec<u8>>> {
            self.polls += 1;
            if self.chunks.is_empty() {
                if self.fail_at_end {
                    return Err(io::Error::other("producer died"));
                }
                return Ok(None);
            }
            Ok(Some(self.chunks.remove(0)))
        }
    }

    fn live(body: Box<dyn BodyStream>) -> LiveStream {
        let metrics = ReactorMetrics::new(MetricsRegistry::new());
        LiveStream::new(body, "/api/v1/export/checkins", &metrics)
    }

    #[test]
    fn refill_stops_at_the_budget_and_parks_the_producer() {
        // 10 chunks of 1 KiB against a 2 KiB budget: one refill must
        // pull only enough chunks to cross the budget, leaving the
        // rest unpolled (bounded memory under a stalled consumer).
        let mut stream = live(Box::new(Scripted {
            chunks: (0..10).map(|_| vec![b'x'; 1024]).collect(),
            polls: 0,
            fail_at_end: false,
        }));
        let (mut buf, mut written) = (Vec::new(), 0usize);
        refill_stream(&mut buf, &mut written, &mut stream, 2048).unwrap();
        assert!(buf.len() >= 2048, "window reaches the budget");
        assert!(
            buf.len() < 2048 + 1024 + 16,
            "window bounded by budget + one encoded chunk, got {}",
            buf.len()
        );
        assert!(!stream.done, "producer parked, not drained");
        assert_eq!(stream.streamed_chunks.get(), 2);
        assert_eq!(stream.streamed_bytes.get(), 2048);
    }

    #[test]
    fn refill_appends_the_terminal_chunk_exactly_once() {
        let mut stream = live(Box::new(Scripted {
            chunks: vec![b"ab".to_vec()],
            polls: 0,
            fail_at_end: false,
        }));
        let (mut buf, mut written) = (Vec::new(), 0usize);
        refill_stream(&mut buf, &mut written, &mut stream, 1 << 20).unwrap();
        assert!(stream.done);
        assert_eq!(buf, b"2\r\nab\r\n0\r\n\r\n");
        // A done stream refilled again would yield an empty window —
        // drive_write drops the stream before that can happen.
    }

    #[test]
    fn refill_propagates_producer_errors() {
        // An immediate failure (no chunks yielded) surfaces on the
        // first refill.
        let mut stream = live(Box::new(Scripted {
            chunks: vec![],
            polls: 0,
            fail_at_end: true,
        }));
        let (mut buf, mut written) = (Vec::new(), 0usize);
        let err = refill_stream(&mut buf, &mut written, &mut stream, 1 << 20).unwrap_err();
        assert_eq!(err.to_string(), "producer died");
        assert!(!stream.done, "an errored stream is never 'done'");
    }

    #[test]
    fn refill_holds_a_late_error_until_the_yielded_chunks_drain() {
        // A failure after a yielded chunk must not discard that chunk:
        // the first refill hands it over cleanly, the second surfaces
        // the held error (and the terminal chunk never appears).
        let mut stream = live(Box::new(Scripted {
            chunks: vec![b"ok".to_vec()],
            polls: 0,
            fail_at_end: true,
        }));
        let (mut buf, mut written) = (Vec::new(), 0usize);
        refill_stream(&mut buf, &mut written, &mut stream, 1 << 20).unwrap();
        assert_eq!(buf, b"2\r\nok\r\n", "the pre-failure chunk survives");
        assert!(!stream.done);
        let err = refill_stream(&mut buf, &mut written, &mut stream, 1 << 20).unwrap_err();
        assert_eq!(err.to_string(), "producer died");
        assert!(!stream.done, "an errored stream is never 'done'");
    }

    /// A connected TCP pair: (reactor side, client side).
    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (server, client)
    }

    #[test]
    fn mid_stream_error_closes_without_terminal_chunk() {
        let (state, router, registry) = app();
        let pool = WorkerPool::new(1, 8);
        let (done_tx, _done_rx) = mpsc::channel::<Completion>();
        let (waker, _wake_rx) = sys::wake_pair().unwrap();
        let metrics = ReactorMetrics::new(registry);
        let config = ReactorConfig::default();
        let ctx = Ctx {
            state: &state,
            router: &router,
            pool: &pool,
            done_tx: &done_tx,
            waker: &waker,
            metrics: &metrics,
            config: &config,
        };
        let (server, mut client) = socket_pair();
        let mut conn = Conn::new(server, Duration::from_secs(5));
        let body: Box<dyn BodyStream> = Box::new(Scripted {
            chunks: vec![b"first chunk".to_vec()],
            polls: 0,
            fail_at_end: true,
        });
        conn.state = ConnState::Writing {
            buf: b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
            written: 0,
            then: WriteThen::Close,
            stream: Some(LiveStream::new(body, "/x", &metrics)),
        };
        assert!(matches!(drive(0, &mut conn, &ctx), Drive::Close));
        assert_eq!(metrics.stream_aborts.get(), 1);
        drop(conn); // the reactor would remove the conn: FIN reaches the client
        let mut got = Vec::new();
        client.read_to_end(&mut got).unwrap();
        let wire = String::from_utf8_lossy(&got);
        assert!(wire.contains("b\r\nfirst chunk\r\n"), "{wire}");
        assert!(
            !wire.ends_with("0\r\n\r\n"),
            "terminal chunk must be absent so the client sees truncation: {wire}"
        );
    }

    #[test]
    fn streamed_keep_alive_response_returns_to_reading() {
        let (state, router, registry) = app();
        let pool = WorkerPool::new(1, 8);
        let (done_tx, _done_rx) = mpsc::channel::<Completion>();
        let (waker, _wake_rx) = sys::wake_pair().unwrap();
        let metrics = ReactorMetrics::new(registry);
        let config = ReactorConfig::default();
        let ctx = Ctx {
            state: &state,
            router: &router,
            pool: &pool,
            done_tx: &done_tx,
            waker: &waker,
            metrics: &metrics,
            config: &config,
        };
        let (server, mut client) = socket_pair();
        let mut conn = Conn::new(server, Duration::from_secs(5));
        let body: Box<dyn BodyStream> = Box::new(Scripted {
            chunks: vec![b"hello".to_vec(), b"world".to_vec()],
            polls: 0,
            fail_at_end: false,
        });
        conn.pending = b"GET /api/v1/healthz HTTP/1.1\r\n\r\n".to_vec();
        conn.state = ConnState::Writing {
            buf: b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
            written: 0,
            then: WriteThen::Continue,
            stream: Some(LiveStream::new(body, "/x", &metrics)),
        };
        // The drive loop drains the stream, then rolls into Reading and
        // dispatches the pipelined request (state becomes Dispatched).
        assert!(matches!(drive(0, &mut conn, &ctx), Drive::Progress));
        assert!(
            matches!(conn.state, ConnState::Dispatched),
            "pipelined follow-up dispatched after the stream drained"
        );
        assert_eq!(conn.served, 1);
        // The full chunked body, terminal chunk included, hit the wire.
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut got = vec![0u8; 1024];
        let mut len = 0;
        while !String::from_utf8_lossy(&got[..len]).contains("0\r\n\r\n") {
            let n = client.read(&mut got[len..]).unwrap();
            assert!(n > 0, "socket closed before the terminal chunk");
            len += n;
        }
        let wire = String::from_utf8_lossy(&got[..len]);
        assert!(
            wire.contains("5\r\nhello\r\n5\r\nworld\r\n0\r\n\r\n"),
            "{wire}"
        );
    }
}
