//! Thin, dependency-free shim over the OS readiness API.
//!
//! The reactor needs exactly three things the standard library does not
//! expose: a blocking *wait for readiness on many sockets at once*, a
//! way for worker threads to interrupt that wait when a dispatched
//! response becomes ready (a self-pipe, built here from a nonblocking
//! `UnixStream` pair so only the wait itself needs FFI), and a couple
//! of socket knobs (`listen(2)` backlog, `SO_RCVBUF`) for the
//! 10k-connection gate. Everything is raw `extern "C"` against the C
//! library the standard library already links — no `libc` crate, no
//! async runtime.
//!
//! The wait has two backends behind one `PollSet` facade:
//!
//! - **Linux: `epoll(7)`.** `poll(2)` is O(registered fds) *in the
//!   kernel* on every call — at 10k parked keep-alive connections each
//!   wakeup costs tens of milliseconds, which is the whole latency
//!   budget. Epoll's registration is persistent, so a wakeup costs
//!   O(ready). The facade keeps the rebuild-per-tick calling
//!   convention and diffs it against an fd-indexed mirror of the
//!   kernel set; the mirror self-heals from close-and-reuse races via
//!   `EPOLL_CTL_MOD`⇄`ADD` fallbacks (connection tokens are never
//!   reused, so a stale mirror entry can never alias a new
//!   connection).
//! - **Other Unix: `poll(2)`.** Portable, no registration state; the
//!   set is rebuilt and handed to the kernel on every wait. Also
//!   compiled (and unit-tested) on Linux so the fallback cannot rot.
//!
//! `unsafe` in this crate is confined to this module: the FFI
//! declarations and the handful of call sites that hand the kernel a
//! pointer derived from a live Rust value.
//!
//! On non-Unix targets the same API degrades to a timed park that
//! reports every registered source ready — the reactor then behaves
//! like its pre-poll busy-tick ancestor: correct, just not idle-cheap.

use std::time::Duration;

/// Readiness reported for one registered connection.
#[derive(Debug, Clone, Copy, Default)]
pub struct Readiness {
    /// Bytes (or EOF) can be read without blocking.
    pub readable: bool,
    /// The socket can accept more response bytes.
    pub writable: bool,
    /// The kernel flagged the descriptor dead (`POLLERR` / `POLLHUP` /
    /// `POLLNVAL`) — meaningful for sockets registered with no
    /// interest, where no read/write will surface the error.
    pub dead: bool,
}

/// What the caller wants to hear about for one connection.
#[derive(Debug, Clone, Copy)]
pub struct Interest {
    /// Wake when readable.
    pub read: bool,
    /// Wake when writable.
    pub write: bool,
}

/// Longest single park. Bounds how stale the loop's view of the
/// shutdown flag can get when nothing else wakes it (the shutdown
/// handle also pokes the listener, so this is a backstop, not the
/// primary wake path).
pub const MAX_PARK: Duration = Duration::from_secs(1);

// On Linux the poll backend is compiled but not selected (epoll is),
// so outside test builds its items are unused by design.
#[cfg_attr(target_os = "linux", allow(dead_code))]
#[cfg(unix)]
mod imp {
    use super::{Interest, Readiness, MAX_PARK};
    use std::io::{self, Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::raw::c_int;
    use std::os::unix::io::{AsRawFd, RawFd};
    use std::os::unix::net::UnixStream;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    /// `struct pollfd` exactly as `poll(2)` expects it.
    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    // `nfds_t` is `unsigned long` on Linux and `unsigned int` on the
    // BSD family (macOS included).
    #[cfg(target_os = "linux")]
    type Nfds = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type Nfds = std::os::raw::c_uint;

    #[allow(unsafe_code)]
    mod ffi {
        use super::{c_int, Nfds, PollFd};
        extern "C" {
            pub fn poll(fds: *mut PollFd, nfds: Nfds, timeout: c_int) -> c_int;
            pub fn listen(fd: c_int, backlog: c_int) -> c_int;
            pub fn setsockopt(
                fd: c_int,
                level: c_int,
                optname: c_int,
                optval: *const c_int,
                optlen: u32,
            ) -> c_int;
        }
    }

    /// A reusable set of descriptors to wait on. Slot 0 is the
    /// listener, slot 1 the waker; connections follow, with a parallel
    /// token array mapping poll slots back to reactor connections.
    pub struct PollSet {
        fds: Vec<PollFd>,
        tokens: Vec<u64>,
    }

    impl Default for PollSet {
        fn default() -> PollSet {
            PollSet::new()
        }
    }

    impl PollSet {
        /// An empty set; reuse one across wakeups to amortize the
        /// allocation.
        pub fn new() -> PollSet {
            PollSet {
                fds: Vec::new(),
                tokens: Vec::new(),
            }
        }

        /// Empties the set for re-registration (capacity retained).
        pub fn clear(&mut self) {
            self.fds.clear();
            self.tokens.clear();
        }

        /// Registers the accept socket; must be the first registration.
        pub fn register_listener(&mut self, listener: &TcpListener) {
            debug_assert!(self.fds.is_empty(), "listener registers first");
            self.fds.push(PollFd {
                fd: listener.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
        }

        /// Registers the self-pipe's read end; must be the second
        /// registration.
        pub fn register_waker(&mut self, waker: &WakeReceiver) {
            debug_assert_eq!(self.fds.len(), 1, "waker registers second");
            self.fds.push(PollFd {
                fd: waker.rx.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
        }

        /// Registers one connection under a caller-chosen token.
        pub fn register(&mut self, stream: &TcpStream, token: u64, interest: Interest) {
            let mut events = 0;
            if interest.read {
                events |= POLLIN;
            }
            if interest.write {
                events |= POLLOUT;
            }
            // events == 0 is still useful: the kernel reports
            // POLLERR/POLLHUP/POLLNVAL regardless of interest, which is
            // how dispatched connections learn their client vanished.
            self.fds.push(PollFd {
                fd: stream.as_raw_fd(),
                events,
                revents: 0,
            });
            self.tokens.push(token);
        }

        /// Blocks until something registered is ready or `timeout`
        /// elapses (`None` parks for [`MAX_PARK`]). Returns the number
        /// of ready descriptors (0 on timeout).
        pub fn wait(&mut self, timeout: Option<Duration>) -> io::Result<usize> {
            let timeout = timeout.unwrap_or(MAX_PARK).min(MAX_PARK);
            // Ceil to whole milliseconds: rounding down would turn a
            // 300 µs remainder into a zero-timeout spin at the tail of
            // every deadline.
            let ms: c_int = timeout
                .as_millis()
                .saturating_add(u128::from(
                    !timeout.subsec_nanos().is_multiple_of(1_000_000),
                ))
                .min(c_int::MAX as u128) as c_int;
            loop {
                // SAFETY: `fds` is a live, exclusively borrowed slice
                // of `repr(C)` pollfd structs; the kernel writes only
                // `revents` within its bounds.
                #[allow(unsafe_code)]
                let rc = unsafe { ffi::poll(self.fds.as_mut_ptr(), self.fds.len() as Nfds, ms) };
                if rc >= 0 {
                    return Ok(rc as usize);
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
        }

        /// Whether the last wait reported a pending accept.
        pub fn listener_ready(&self) -> bool {
            self.fds.first().is_some_and(|p| p.revents != 0)
        }

        /// Whether the last wait was interrupted by the self-pipe.
        pub fn waker_ready(&self) -> bool {
            self.fds.get(1).is_some_and(|p| p.revents != 0)
        }

        /// Tokens whose descriptors reported anything, with decoded
        /// readiness.
        pub fn ready(&self) -> impl Iterator<Item = (u64, Readiness)> + '_ {
            self.fds
                .iter()
                .skip(2)
                .zip(self.tokens.iter())
                .filter(|(p, _)| p.revents != 0)
                .map(|(p, &token)| {
                    (
                        token,
                        Readiness {
                            readable: p.revents & (POLLIN | POLLHUP | POLLERR) != 0,
                            writable: p.revents & (POLLOUT | POLLHUP | POLLERR) != 0,
                            dead: p.revents & (POLLERR | POLLHUP | POLLNVAL) != 0,
                        },
                    )
                })
        }
    }

    /// The write end of the self-pipe; cloned into every worker.
    pub struct Waker {
        tx: UnixStream,
    }

    impl Waker {
        /// Nudges the event loop out of `poll`. A full pipe means a
        /// wake is already pending, so `WouldBlock` is success.
        pub fn wake(&self) {
            let _ = (&self.tx).write(&[1]);
        }
    }

    impl Clone for Waker {
        fn clone(&self) -> Waker {
            Waker {
                tx: self.tx.try_clone().expect("self-pipe clones"),
            }
        }
    }

    /// The read end of the self-pipe, owned by the event loop.
    pub struct WakeReceiver {
        rx: UnixStream,
    }

    impl WakeReceiver {
        /// Discards every pending wake byte.
        pub fn drain(&self) {
            let mut sink = [0u8; 64];
            while matches!((&self.rx).read(&mut sink), Ok(n) if n > 0) {}
        }

        /// The pipe's read descriptor, for the epoll backend.
        #[cfg(target_os = "linux")]
        pub(super) fn raw_fd(&self) -> RawFd {
            self.rx.as_raw_fd()
        }
    }

    /// A connected nonblocking self-pipe pair.
    pub fn wake_pair() -> io::Result<(Waker, WakeReceiver)> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok((Waker { tx }, WakeReceiver { rx }))
    }

    /// Re-issues `listen(2)` with a deeper accept backlog than the
    /// standard library's default (128) — under a 10k-connection storm
    /// the SYN backlog overflows long before the event loop misbehaves.
    pub fn boost_listen_backlog(listener: &TcpListener, backlog: i32) {
        // SAFETY: plain syscall on a descriptor we own; no memory is
        // exchanged. Failure is harmless (the default backlog stands).
        #[allow(unsafe_code)]
        let _ = unsafe { ffi::listen(listener.as_raw_fd(), backlog) };
    }

    /// Shrinks a socket's receive buffer (`SO_RCVBUF`). Test harness
    /// lever: a tiny client-side window is the portable way to force
    /// the server into deferred (would-block) writes.
    pub fn set_recv_buffer(stream: &TcpStream, bytes: i32) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        const SOL_SOCKET: c_int = 1;
        #[cfg(target_os = "linux")]
        const SO_RCVBUF: c_int = 8;
        #[cfg(not(target_os = "linux"))]
        const SOL_SOCKET: c_int = 0xffff;
        #[cfg(not(target_os = "linux"))]
        const SO_RCVBUF: c_int = 0x1002;
        set_opt(stream.as_raw_fd(), SOL_SOCKET, SO_RCVBUF, bytes)
    }

    fn set_opt(fd: RawFd, level: c_int, name: c_int, value: c_int) -> io::Result<()> {
        // SAFETY: passes a pointer to a stack-local c_int with its
        // exact size; the kernel only reads it.
        #[allow(unsafe_code)]
        let rc = unsafe {
            ffi::setsockopt(fd, level, name, &value, std::mem::size_of::<c_int>() as u32)
        };
        if rc == 0 {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }
}

#[cfg(not(unix))]
mod imp {
    use super::{Interest, Readiness, MAX_PARK};
    use std::io;
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    /// Degraded fallback: no OS readiness, so every wait is a short
    /// park that reports everything ready. The reactor then runs as a
    /// busy tick — correct, just not idle-cheap.
    pub struct PollSet {
        tokens: Vec<(u64, Interest)>,
        listener: bool,
    }

    impl PollSet {
        /// An empty set.
        pub fn new() -> PollSet {
            PollSet {
                tokens: Vec::new(),
                listener: false,
            }
        }
        /// Empties the set for re-registration.
        pub fn clear(&mut self) {
            self.tokens.clear();
            self.listener = false;
        }
        /// Registers the accept socket.
        pub fn register_listener(&mut self, _listener: &TcpListener) {
            self.listener = true;
        }
        /// Registers the self-pipe's read end (a no-op here).
        pub fn register_waker(&mut self, _waker: &WakeReceiver) {}
        /// Registers one connection under a caller-chosen token.
        pub fn register(&mut self, _stream: &TcpStream, token: u64, interest: Interest) {
            self.tokens.push((token, interest));
        }
        /// Parks briefly and reports everything ready.
        pub fn wait(&mut self, timeout: Option<Duration>) -> io::Result<usize> {
            let park = timeout.unwrap_or(MAX_PARK).min(Duration::from_micros(500));
            std::thread::sleep(park);
            Ok(self.tokens.len() + usize::from(self.listener))
        }
        /// Always check the listener: there is no readiness signal.
        pub fn listener_ready(&self) -> bool {
            self.listener
        }
        /// Always drain the (absent) waker.
        pub fn waker_ready(&self) -> bool {
            true
        }
        /// Every registered token, marked ready per its interest.
        pub fn ready(&self) -> impl Iterator<Item = (u64, Readiness)> + '_ {
            self.tokens.iter().map(|&(token, interest)| {
                (
                    token,
                    Readiness {
                        readable: interest.read,
                        writable: interest.write,
                        dead: false,
                    },
                )
            })
        }
    }

    /// Inert waker: the short park doubles as the wake signal.
    #[derive(Clone)]
    pub struct Waker;
    impl Waker {
        /// No-op; the fallback loop wakes on its own.
        pub fn wake(&self) {}
    }

    /// Inert read end of the (absent) self-pipe.
    pub struct WakeReceiver;
    impl WakeReceiver {
        /// No-op.
        pub fn drain(&self) {}
    }

    /// An inert waker pair.
    pub fn wake_pair() -> io::Result<(Waker, WakeReceiver)> {
        Ok((Waker, WakeReceiver))
    }

    /// No backlog control without the syscall; the default stands.
    pub fn boost_listen_backlog(_listener: &TcpListener, _backlog: i32) {}

    /// No receive-buffer control; reported as success so tests that
    /// merely *try* to provoke deferred writes still run.
    pub fn set_recv_buffer(_stream: &TcpStream, _bytes: i32) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(target_os = "linux")]
mod epoll {
    use super::imp::WakeReceiver;
    use super::{Interest, Readiness, MAX_PARK};
    use std::io;
    use std::net::{TcpListener, TcpStream};
    use std::os::raw::c_int;
    use std::os::unix::io::{AsRawFd, RawFd};
    use std::time::Duration;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLL_CLOEXEC: c_int = 0x8_0000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    /// Data words reserved for the two fixed sources. Connection tokens
    /// are a monotonically increasing counter starting at zero, so they
    /// can never collide with these.
    const TOKEN_LISTENER: u64 = u64::MAX;
    const TOKEN_WAKER: u64 = u64::MAX - 1;
    /// Readiness drained per wakeup. Epoll is level-triggered here, so
    /// anything beyond this many ready descriptors simply surfaces on
    /// the next wait.
    const MAX_EVENTS: usize = 1024;

    /// `struct epoll_event` as the kernel defines it — packed on
    /// x86-64 (a 32-bit-era ABI accident the kernel preserves).
    #[derive(Clone, Copy)]
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[allow(unsafe_code)]
    mod ffi {
        use super::{c_int, EpollEvent};
        extern "C" {
            pub fn epoll_create1(flags: c_int) -> c_int;
            pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            pub fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
            pub fn close(fd: c_int) -> c_int;
        }
    }

    /// The epoll-backed [`PollSet`]: same rebuild-per-tick calling
    /// convention as the poll backend, but registrations persist in the
    /// kernel and each tick only issues `epoll_ctl` for the diff —
    /// wakeups are O(ready), not O(registered).
    pub struct PollSet {
        epfd: RawFd,
        /// Mirror of the kernel set, indexed by fd: `(token, events)`.
        reg: Vec<Option<(u64, u32)>>,
        /// Tick stamp per fd; an fd not re-registered by the current
        /// tick is stale and gets deregistered at the next wait.
        seen: Vec<u64>,
        /// Fds believed registered, so the stale sweep never scans the
        /// whole fd-indexed table.
        live: Vec<RawFd>,
        tick: u64,
        events: Vec<EpollEvent>,
        nready: usize,
        listener_hit: bool,
        waker_hit: bool,
    }

    impl Default for PollSet {
        fn default() -> PollSet {
            PollSet::new()
        }
    }

    impl PollSet {
        /// A fresh epoll instance; reuse one across wakeups.
        pub fn new() -> PollSet {
            // SAFETY: plain syscall; no memory is exchanged.
            #[allow(unsafe_code)]
            let epfd = unsafe { ffi::epoll_create1(EPOLL_CLOEXEC) };
            assert!(
                epfd >= 0,
                "epoll_create1 failed: {}",
                io::Error::last_os_error()
            );
            PollSet {
                epfd,
                reg: Vec::new(),
                seen: Vec::new(),
                live: Vec::new(),
                tick: 0,
                events: vec![EpollEvent { events: 0, data: 0 }; MAX_EVENTS],
                nready: 0,
                listener_hit: false,
                waker_hit: false,
            }
        }

        /// Starts a new registration tick. Nothing is torn down here:
        /// sources re-registered before the next [`PollSet::wait`] keep
        /// their kernel registration untouched.
        pub fn clear(&mut self) {
            self.tick += 1;
            self.nready = 0;
            self.listener_hit = false;
            self.waker_hit = false;
        }

        /// Registers the accept socket.
        pub fn register_listener(&mut self, listener: &TcpListener) {
            self.upsert(listener.as_raw_fd(), TOKEN_LISTENER, EPOLLIN);
        }

        /// Registers the self-pipe's read end.
        pub fn register_waker(&mut self, waker: &WakeReceiver) {
            self.upsert(waker.raw_fd(), TOKEN_WAKER, EPOLLIN);
        }

        /// Registers one connection under a caller-chosen token.
        pub fn register(&mut self, stream: &TcpStream, token: u64, interest: Interest) {
            let mut events = 0;
            if interest.read {
                events |= EPOLLIN;
            }
            if interest.write {
                events |= EPOLLOUT;
            }
            // events == 0 still reports EPOLLERR/EPOLLHUP — same
            // contract as the poll backend.
            self.upsert(stream.as_raw_fd(), token, events);
        }

        /// Brings the kernel set in line with one desired registration,
        /// issuing `epoll_ctl` only when the mirror disagrees.
        fn upsert(&mut self, fd: RawFd, token: u64, events: u32) {
            let idx = fd as usize;
            if self.reg.len() <= idx {
                self.reg.resize(idx + 1, None);
                self.seen.resize(idx + 1, 0);
            }
            self.seen[idx] = self.tick;
            match self.reg[idx] {
                Some((t, e)) if t == token && e == events => {}
                Some(_) => {
                    // The usual case is an interest change on a live
                    // connection. The fallback covers the fd having
                    // been closed and reused since the mirror entry was
                    // written (the kernel auto-removed it on close); a
                    // *same-token* reuse cannot happen because tokens
                    // are never reused.
                    if self.ctl(EPOLL_CTL_MOD, fd, token, events).is_err() {
                        let _ = self.ctl(EPOLL_CTL_ADD, fd, token, events);
                    }
                    self.reg[idx] = Some((token, events));
                }
                None => {
                    if self.ctl(EPOLL_CTL_ADD, fd, token, events).is_err() {
                        let _ = self.ctl(EPOLL_CTL_MOD, fd, token, events);
                    }
                    self.reg[idx] = Some((token, events));
                    self.live.push(fd);
                }
            }
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            // SAFETY: pointer to a live stack-local `repr(C)` struct;
            // the kernel only reads it.
            #[allow(unsafe_code)]
            let rc = unsafe { ffi::epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc == 0 {
                Ok(())
            } else {
                Err(io::Error::last_os_error())
            }
        }

        /// Blocks until something registered is ready or `timeout`
        /// elapses (`None` parks for [`MAX_PARK`]). Returns the number
        /// of ready descriptors (0 on timeout).
        pub fn wait(&mut self, timeout: Option<Duration>) -> io::Result<usize> {
            // Deregister everything not renewed this tick: those
            // connections were dropped. Closing an fd already removed
            // it from the kernel set, so a failing DEL is expected.
            let mut i = 0;
            while i < self.live.len() {
                let fd = self.live[i];
                if self.seen[fd as usize] == self.tick {
                    i += 1;
                    continue;
                }
                self.live.swap_remove(i);
                self.reg[fd as usize] = None;
                let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
            }
            let timeout = timeout.unwrap_or(MAX_PARK).min(MAX_PARK);
            // Ceil to whole milliseconds: rounding down would turn a
            // sub-millisecond remainder into a zero-timeout spin at the
            // tail of every deadline.
            let ms: c_int = timeout
                .as_millis()
                .saturating_add(u128::from(
                    !timeout.subsec_nanos().is_multiple_of(1_000_000),
                ))
                .min(c_int::MAX as u128) as c_int;
            loop {
                // SAFETY: `events` is a live, exclusively borrowed
                // buffer of `MAX_EVENTS` `repr(C)` structs; the kernel
                // writes at most `maxevents` entries within its bounds.
                #[allow(unsafe_code)]
                let rc = unsafe {
                    ffi::epoll_wait(
                        self.epfd,
                        self.events.as_mut_ptr(),
                        self.events.len() as c_int,
                        ms,
                    )
                };
                if rc >= 0 {
                    self.nready = rc as usize;
                    self.listener_hit = false;
                    self.waker_hit = false;
                    for ev in &self.events[..self.nready] {
                        // By-value copy first: the struct may be packed,
                        // so the field cannot be borrowed in place.
                        let data = { ev.data };
                        match data {
                            TOKEN_LISTENER => self.listener_hit = true,
                            TOKEN_WAKER => self.waker_hit = true,
                            _ => {}
                        }
                    }
                    return Ok(self.nready);
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
        }

        /// Whether the last wait reported a pending accept.
        pub fn listener_ready(&self) -> bool {
            self.listener_hit
        }

        /// Whether the last wait was interrupted by the self-pipe.
        pub fn waker_ready(&self) -> bool {
            self.waker_hit
        }

        /// Tokens whose descriptors reported anything, with decoded
        /// readiness.
        pub fn ready(&self) -> impl Iterator<Item = (u64, Readiness)> + '_ {
            self.events[..self.nready].iter().filter_map(|ev| {
                let (data, events) = ({ ev.data }, { ev.events });
                if data == TOKEN_LISTENER || data == TOKEN_WAKER {
                    return None;
                }
                Some((
                    data,
                    Readiness {
                        readable: events & (EPOLLIN | EPOLLHUP | EPOLLERR) != 0,
                        writable: events & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                        dead: events & (EPOLLERR | EPOLLHUP) != 0,
                    },
                ))
            })
        }
    }

    impl Drop for PollSet {
        fn drop(&mut self) {
            // SAFETY: closes a descriptor this struct owns exclusively.
            #[allow(unsafe_code)]
            let _ = unsafe { ffi::close(self.epfd) };
        }
    }
}

#[cfg(target_os = "linux")]
pub use epoll::PollSet;
#[cfg(all(unix, not(target_os = "linux")))]
pub use imp::PollSet;
#[cfg(not(unix))]
pub use imp::{boost_listen_backlog, set_recv_buffer, wake_pair, PollSet, WakeReceiver, Waker};
#[cfg(unix)]
pub use imp::{boost_listen_backlog, set_recv_buffer, wake_pair, WakeReceiver, Waker};

/// Current soft limit on open file descriptors, when discoverable
/// (`/proc/self/limits`). Scaling harnesses use it to size connection
/// counts instead of discovering `EMFILE` the hard way.
pub fn open_file_limit() -> Option<u64> {
    let limits = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = limits.lines().find(|l| l.starts_with("Max open files"))?;
    line.split_whitespace().nth(3)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The readiness contract, generic over the backend: on Linux the
    /// facade resolves to epoll, so the suite runs once against it and
    /// once against the poll fallback to keep both honest.
    macro_rules! readiness_suite {
        ($name:ident, $set:ty) => {
            mod $name {
                use crate::sys::{wake_pair, Interest};
                use std::io::Write;
                use std::net::{TcpListener, TcpStream};
                use std::time::{Duration, Instant};

                #[test]
                fn reports_connected_socket_writable_immediately() {
                    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                    let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
                    let (_waker, wake_rx) = wake_pair().unwrap();
                    let mut set = <$set>::new();
                    set.clear();
                    set.register_listener(&listener);
                    set.register_waker(&wake_rx);
                    set.register(
                        &stream,
                        7,
                        Interest {
                            read: false,
                            write: true,
                        },
                    );
                    let n = set.wait(Some(Duration::from_secs(2))).unwrap();
                    assert!(n >= 1, "a fresh socket's send buffer is writable");
                    let ready: Vec<_> = set.ready().collect();
                    assert!(ready.iter().any(|&(t, r)| t == 7 && r.writable));
                }

                #[test]
                fn times_out_when_nothing_is_ready() {
                    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                    let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
                    let (_accepted, _) = listener.accept().unwrap();
                    let (_waker, wake_rx) = wake_pair().unwrap();
                    let mut set = <$set>::new();
                    set.clear();
                    set.register_listener(&listener);
                    set.register_waker(&wake_rx);
                    // Read interest on a silent socket: nothing arrives.
                    set.register(
                        &stream,
                        1,
                        Interest {
                            read: true,
                            write: false,
                        },
                    );
                    let started = Instant::now();
                    set.wait(Some(Duration::from_millis(60))).unwrap();
                    // The fallback implementation parks shorter than
                    // asked; the real ones must park at least roughly
                    // the timeout.
                    if cfg!(unix) {
                        assert!(
                            started.elapsed() >= Duration::from_millis(50),
                            "wait returned after {:?} without any readiness",
                            started.elapsed()
                        );
                        assert_eq!(set.ready().count(), 0);
                    }
                }

                #[test]
                fn waker_interrupts_a_blocking_wait() {
                    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                    let (waker, wake_rx) = wake_pair().unwrap();
                    let poker = std::thread::spawn(move || {
                        std::thread::sleep(Duration::from_millis(50));
                        waker.wake();
                    });
                    let mut set = <$set>::new();
                    set.clear();
                    set.register_listener(&listener);
                    set.register_waker(&wake_rx);
                    let started = Instant::now();
                    set.wait(Some(Duration::from_secs(5))).unwrap();
                    assert!(
                        started.elapsed() < Duration::from_secs(4),
                        "wake never interrupted the park"
                    );
                    if cfg!(unix) {
                        assert!(set.waker_ready());
                    }
                    wake_rx.drain();
                    poker.join().unwrap();
                }

                #[test]
                fn listener_readiness_fires_on_pending_accept() {
                    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                    let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
                    let (_waker, wake_rx) = wake_pair().unwrap();
                    let mut set = <$set>::new();
                    set.clear();
                    set.register_listener(&listener);
                    set.register_waker(&wake_rx);
                    set.wait(Some(Duration::from_secs(2))).unwrap();
                    assert!(set.listener_ready());
                }

                #[test]
                fn readable_socket_reports_readable() {
                    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                    let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
                    let (server_side, _) = listener.accept().unwrap();
                    client.write_all(b"ping").unwrap();
                    client.flush().unwrap();
                    let (_waker, wake_rx) = wake_pair().unwrap();
                    let mut set = <$set>::new();
                    set.clear();
                    set.register_listener(&listener);
                    set.register_waker(&wake_rx);
                    set.register(
                        &server_side,
                        3,
                        Interest {
                            read: true,
                            write: false,
                        },
                    );
                    set.wait(Some(Duration::from_secs(2))).unwrap();
                    let ready: Vec<_> = set.ready().collect();
                    assert!(ready.iter().any(|&(t, r)| t == 3 && r.readable));
                }

                #[test]
                fn dropped_connection_is_forgotten_on_the_next_tick() {
                    // Register a connection, then re-register without it
                    // (the reactor's way of saying "closed"): its
                    // readiness must stop being reported even though the
                    // socket still exists client-side.
                    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                    let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
                    let (server_side, _) = listener.accept().unwrap();
                    client.write_all(b"ping").unwrap();
                    let (_waker, wake_rx) = wake_pair().unwrap();
                    let mut set = <$set>::new();
                    set.clear();
                    set.register_listener(&listener);
                    set.register_waker(&wake_rx);
                    set.register(
                        &server_side,
                        5,
                        Interest {
                            read: true,
                            write: false,
                        },
                    );
                    set.wait(Some(Duration::from_secs(2))).unwrap();
                    assert!(set.ready().any(|(t, r)| t == 5 && r.readable));
                    set.clear();
                    set.register_listener(&listener);
                    set.register_waker(&wake_rx);
                    set.wait(Some(Duration::from_millis(20))).unwrap();
                    assert_eq!(
                        set.ready().count(),
                        0,
                        "a deregistered connection must not surface readiness"
                    );
                }
            }
        };
    }

    readiness_suite!(facade, crate::sys::PollSet);
    #[cfg(target_os = "linux")]
    readiness_suite!(portable_poll, crate::sys::imp::PollSet);

    #[test]
    fn open_file_limit_is_discoverable_on_linux() {
        if cfg!(target_os = "linux") {
            let limit = open_file_limit().expect("/proc/self/limits parses");
            assert!(limit >= 64, "implausible fd limit {limit}");
        }
    }
}
