//! Individual human mobility pattern detection — the core CrowdWeb
//! library.
//!
//! This crate ties the substrates together into the paper's per-user
//! pipeline (inherited from the authors' iMAP platform):
//!
//! 1. Preprocess check-ins into per-day sequences of abstracted places
//!    (`crowdweb-prep`).
//! 2. Mine each user's *mobility patterns* with the modified PrefixSpan
//!    (`crowdweb-seqmine`) — [`PatternMiner`] / [`UserPatterns`].
//! 3. Build the user's *place graph*, the network of visited places the
//!    platform visualizes — [`PlaceGraph`].
//! 4. Baseline next-place prediction ([`predict`]) reproducing the
//!    motivation that raw-venue prediction accuracy is poor (the paper
//!    cites 8–25 %) while place abstraction makes behaviour far more
//!    predictable.
//!
//! # Examples
//!
//! ```
//! use crowdweb_mobility::PatternMiner;
//! use crowdweb_prep::Preprocessor;
//! use crowdweb_synth::SynthConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dataset = SynthConfig::small(21).generate()?;
//! let prepared = Preprocessor::new().min_active_days(20).prepare(&dataset)?;
//! let all = PatternMiner::new(0.5)?.detect_all(&prepared)?;
//! assert_eq!(all.len(), prepared.user_count());
//! // Every qualifying user has at least their daily-anchor patterns.
//! assert!(all.iter().any(|u| !u.patterns.is_empty()));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod entropy;
pub mod error;
pub mod graph;
pub mod miner;
pub mod predict;
pub mod similarity;

pub use entropy::{predictability_profile, PredictabilityProfile};
pub use error::MobilityError;
pub use graph::{PlaceEdge, PlaceGraph, PlaceNode};
pub use miner::{PatternMiner, UserPatterns};
pub use predict::{
    evaluate_pattern_predictor, evaluate_predictor, PredictionReport, PredictorKind,
};
pub use similarity::{group_users, pattern_cosine, pattern_jaccard, UserGroup};
