//! Per-user place graphs — "a graph of visited places based on their
//! historical records".
//!
//! Nodes are abstracted places; a directed edge `a → b` records how
//! often the user went from `a` to `b` within one day. The CrowdWeb UI
//! renders this network per user; the crowd engine and the Markov
//! predictor both read the same structure.

use crowdweb_dataset::UserId;
use crowdweb_prep::{PlaceLabel, SeqItem};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A node of the place graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlaceNode {
    /// The place label.
    pub label: PlaceLabel,
    /// Total visits to this place.
    pub visits: usize,
}

/// A directed edge of the place graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlaceEdge {
    /// Source place.
    pub from: PlaceLabel,
    /// Destination place.
    pub to: PlaceLabel,
    /// Number of observed same-day transitions.
    pub count: usize,
}

/// A user's directed, weighted graph of visited places.
///
/// # Examples
///
/// ```
/// use crowdweb_mobility::PlaceGraph;
/// use crowdweb_prep::{PlaceLabel, SeqItem, TimeSlot};
/// use crowdweb_dataset::UserId;
///
/// let item = |s: u8, l: u32| SeqItem { slot: TimeSlot(s), label: PlaceLabel(l) };
/// let days = vec![vec![item(3, 0), item(6, 1)], vec![item(3, 0), item(6, 1)]];
/// let graph = PlaceGraph::from_sequences(UserId::new(1), &days);
/// assert_eq!(graph.node_count(), 2);
/// assert_eq!(graph.transition_probability(PlaceLabel(0), PlaceLabel(1)), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlaceGraph {
    user: UserId,
    nodes: BTreeMap<PlaceLabel, usize>,
    edges: BTreeMap<(PlaceLabel, PlaceLabel), usize>,
}

impl PlaceGraph {
    /// Builds the graph from a user's daily sequences: every consecutive
    /// item pair within a day contributes one edge observation.
    pub fn from_sequences(user: UserId, sequences: &[Vec<SeqItem>]) -> PlaceGraph {
        let mut nodes: BTreeMap<PlaceLabel, usize> = BTreeMap::new();
        let mut edges: BTreeMap<(PlaceLabel, PlaceLabel), usize> = BTreeMap::new();
        for day in sequences {
            for item in day {
                *nodes.entry(item.label).or_insert(0) += 1;
            }
            for pair in day.windows(2) {
                *edges.entry((pair[0].label, pair[1].label)).or_insert(0) += 1;
            }
        }
        PlaceGraph { user, nodes, edges }
    }

    /// The user this graph belongs to.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// Number of distinct places.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct directed transitions.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes, sorted by label.
    pub fn nodes(&self) -> Vec<PlaceNode> {
        self.nodes
            .iter()
            .map(|(&label, &visits)| PlaceNode { label, visits })
            .collect()
    }

    /// All edges, sorted by (from, to).
    pub fn edges(&self) -> Vec<PlaceEdge> {
        self.edges
            .iter()
            .map(|(&(from, to), &count)| PlaceEdge { from, to, count })
            .collect()
    }

    /// Visit count of one place (0 if never visited).
    pub fn visits(&self, label: PlaceLabel) -> usize {
        self.nodes.get(&label).copied().unwrap_or(0)
    }

    /// Observed transition count from `from` to `to`.
    pub fn transitions(&self, from: PlaceLabel, to: PlaceLabel) -> usize {
        self.edges.get(&(from, to)).copied().unwrap_or(0)
    }

    /// Outgoing edges of a place, heaviest first.
    pub fn out_edges(&self, from: PlaceLabel) -> Vec<PlaceEdge> {
        let mut out: Vec<PlaceEdge> = self
            .edges
            .iter()
            .filter(|((f, _), _)| *f == from)
            .map(|(&(from, to), &count)| PlaceEdge { from, to, count })
            .collect();
        out.sort_by(|a, b| b.count.cmp(&a.count).then(a.to.cmp(&b.to)));
        out
    }

    /// Maximum-likelihood transition probability `P(to | from)`, 0.0 when
    /// `from` has no outgoing transitions.
    pub fn transition_probability(&self, from: PlaceLabel, to: PlaceLabel) -> f64 {
        let total: usize = self
            .edges
            .iter()
            .filter(|((f, _), _)| *f == from)
            .map(|(_, &c)| c)
            .sum();
        if total == 0 {
            0.0
        } else {
            self.transitions(from, to) as f64 / total as f64
        }
    }

    /// The most-visited place, if any (ties broken by smaller label).
    pub fn top_place(&self) -> Option<PlaceNode> {
        self.nodes
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(&label, &visits)| PlaceNode { label, visits })
    }

    /// Serializes the graph in Graphviz DOT format, with an optional
    /// label-naming function for readable node names.
    pub fn to_dot<F: Fn(PlaceLabel) -> String>(&self, name_of: F) -> String {
        let mut out = String::from("digraph places {\n");
        for (label, visits) in &self.nodes {
            out.push_str(&format!(
                "  \"{}\" [label=\"{} ({visits})\"];\n",
                label.0,
                name_of(*label)
            ));
        }
        for ((from, to), count) in &self.edges {
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"{count}\"];\n",
                from.0, to.0
            ));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_prep::TimeSlot;

    fn item(slot: u8, label: u32) -> SeqItem {
        SeqItem {
            slot: TimeSlot(slot),
            label: PlaceLabel(label),
        }
    }

    fn graph() -> PlaceGraph {
        // Day 1: 0 -> 1 -> 0; Day 2: 0 -> 2.
        PlaceGraph::from_sequences(
            UserId::new(7),
            &[
                vec![item(3, 0), item(6, 1), item(11, 0)],
                vec![item(3, 0), item(6, 2)],
            ],
        )
    }

    #[test]
    fn counts_nodes_and_edges() {
        let g = graph();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3); // 0->1, 1->0, 0->2
        assert_eq!(g.visits(PlaceLabel(0)), 3);
        assert_eq!(g.visits(PlaceLabel(9)), 0);
        assert_eq!(g.transitions(PlaceLabel(0), PlaceLabel(1)), 1);
        assert_eq!(g.transitions(PlaceLabel(1), PlaceLabel(2)), 0);
        assert_eq!(g.user(), UserId::new(7));
    }

    #[test]
    fn no_edges_across_days() {
        let g = graph();
        // Day 1 ends at 0, day 2 starts at 0: no self-loop 0->0.
        assert_eq!(g.transitions(PlaceLabel(0), PlaceLabel(0)), 0);
    }

    #[test]
    fn transition_probabilities_normalize() {
        let g = graph();
        let p1 = g.transition_probability(PlaceLabel(0), PlaceLabel(1));
        let p2 = g.transition_probability(PlaceLabel(0), PlaceLabel(2));
        assert_eq!(p1, 0.5);
        assert_eq!(p2, 0.5);
        assert_eq!(g.transition_probability(PlaceLabel(2), PlaceLabel(0)), 0.0);
    }

    #[test]
    fn out_edges_sorted_by_weight() {
        let g = PlaceGraph::from_sequences(
            UserId::new(1),
            &[
                vec![item(1, 0), item(2, 1)],
                vec![item(1, 0), item(2, 1)],
                vec![item(1, 0), item(2, 2)],
            ],
        );
        let out = g.out_edges(PlaceLabel(0));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].to, PlaceLabel(1));
        assert_eq!(out[0].count, 2);
    }

    #[test]
    fn top_place_is_most_visited() {
        let g = graph();
        assert_eq!(g.top_place().unwrap().label, PlaceLabel(0));
        let empty = PlaceGraph::from_sequences(UserId::new(1), &[]);
        assert!(empty.top_place().is_none());
        assert!(empty.is_empty());
    }

    #[test]
    fn dot_output_mentions_every_edge() {
        let g = graph();
        let dot = g.to_dot(|l| format!("place{}", l.0));
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("place0 (3)"));
        assert!(dot.contains("\"0\" -> \"1\""));
        assert!(dot.ends_with("}\n"));
    }
}
