//! Next-place prediction baselines.
//!
//! The paper motivates place abstraction by the poor accuracy of
//! next-location prediction on raw venues (8–25 % in the literature it
//! cites). These baselines reproduce that: a temporal holdout per user,
//! predicting each next item's *label* from the preceding context.
//! Evaluated over raw venue labels the accuracy is low; over coarse
//! kinds it rises sharply — exactly the motivation for CrowdWeb's
//! abstraction (benchmark `prediction_accuracy` regenerates this).

use crate::{MobilityError, PatternMiner};
use crowdweb_prep::{PlaceLabel, SeqItem, SequenceDatabase};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The baseline predictor family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredictorKind {
    /// Always predict the user's most frequent place.
    TopFrequency,
    /// Order-1 Markov chain over place labels, with top-frequency
    /// fallback for unseen contexts.
    Markov1,
    /// Order-2 Markov chain with order-1 then top-frequency fallback.
    Markov2,
}

/// Outcome of a prediction evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct PredictionReport {
    /// Number of correct next-place predictions.
    pub correct: usize,
    /// Number of predictions attempted.
    pub total: usize,
}

impl PredictionReport {
    /// Top-1 accuracy in `[0, 1]` (0 when nothing was predicted).
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: PredictionReport) {
        self.correct += other.correct;
        self.total += other.total;
    }
}

/// A per-user predictor trained on that user's early days.
#[derive(Debug, Clone)]
struct UserModel {
    kind: PredictorKind,
    top: Option<PlaceLabel>,
    unigram: HashMap<PlaceLabel, PlaceLabel>,
    bigram: HashMap<(PlaceLabel, PlaceLabel), PlaceLabel>,
}

impl UserModel {
    fn train(kind: PredictorKind, days: &[Vec<SeqItem>]) -> UserModel {
        let mut freq: HashMap<PlaceLabel, usize> = HashMap::new();
        let mut uni: HashMap<PlaceLabel, HashMap<PlaceLabel, usize>> = HashMap::new();
        let mut bi: HashMap<(PlaceLabel, PlaceLabel), HashMap<PlaceLabel, usize>> = HashMap::new();
        for day in days {
            for item in day {
                *freq.entry(item.label).or_insert(0) += 1;
            }
            for w in day.windows(2) {
                *uni.entry(w[0].label)
                    .or_default()
                    .entry(w[1].label)
                    .or_insert(0) += 1;
            }
            for w in day.windows(3) {
                *bi.entry((w[0].label, w[1].label))
                    .or_default()
                    .entry(w[2].label)
                    .or_insert(0) += 1;
            }
        }
        let argmax = |m: &HashMap<PlaceLabel, usize>| {
            m.iter()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                .map(|(&l, _)| l)
        };
        UserModel {
            kind,
            top: argmax(&freq),
            unigram: uni
                .into_iter()
                .filter_map(|(k, v)| argmax(&v).map(|best| (k, best)))
                .collect(),
            bigram: bi
                .into_iter()
                .filter_map(|(k, v)| argmax(&v).map(|best| (k, best)))
                .collect(),
        }
    }

    fn predict(&self, context: &[SeqItem]) -> Option<PlaceLabel> {
        match self.kind {
            PredictorKind::TopFrequency => self.top,
            PredictorKind::Markov1 => context
                .last()
                .and_then(|prev| self.unigram.get(&prev.label).copied())
                .or(self.top),
            PredictorKind::Markov2 => {
                let bigram_guess = if context.len() >= 2 {
                    let key = (
                        context[context.len() - 2].label,
                        context[context.len() - 1].label,
                    );
                    self.bigram.get(&key).copied()
                } else {
                    None
                };
                bigram_guess
                    .or_else(|| {
                        context
                            .last()
                            .and_then(|prev| self.unigram.get(&prev.label).copied())
                    })
                    .or(self.top)
            }
        }
    }
}

/// Evaluates a predictor over every user of a sequence database with a
/// per-user temporal split: the first `train_fraction` of each user's
/// days train the model, the rest are tested. Every item of a test day
/// after the first is a prediction target (its preceding items that day
/// are the context).
///
/// # Errors
///
/// Returns [`MobilityError::InvalidSplit`] unless
/// `0 < train_fraction < 1`.
///
/// # Examples
///
/// ```
/// use crowdweb_mobility::{evaluate_predictor, PredictorKind};
/// use crowdweb_prep::{LabelScheme, Preprocessor};
/// use crowdweb_synth::SynthConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dataset = SynthConfig::small(5).generate()?;
/// let prepared = Preprocessor::new().min_active_days(20).prepare(&dataset)?;
/// let report = evaluate_predictor(prepared.seqdb(), PredictorKind::Markov1, 0.7)?;
/// assert!(report.total > 0);
/// assert!((0.0..=1.0).contains(&report.accuracy()));
/// # Ok(())
/// # }
/// ```
pub fn evaluate_predictor(
    seqdb: &SequenceDatabase,
    kind: PredictorKind,
    train_fraction: f64,
) -> Result<PredictionReport, MobilityError> {
    if !(train_fraction.is_finite() && 0.0 < train_fraction && train_fraction < 1.0) {
        return Err(MobilityError::InvalidSplit(train_fraction));
    }
    let mut report = PredictionReport::default();
    for view in seqdb.views() {
        let days = view.decode();
        let n = days.len();
        if n < 2 {
            continue;
        }
        let split = ((n as f64 * train_fraction).floor() as usize).clamp(1, n - 1);
        let model = UserModel::train(kind, &days[..split]);
        for day in &days[split..] {
            for i in 1..day.len() {
                if let Some(guess) = model.predict(&day[..i]) {
                    report.total += 1;
                    if guess == day[i].label {
                        report.correct += 1;
                    }
                }
            }
        }
    }
    Ok(report)
}

/// Evaluates the *pattern-based* predictor: per user, mine mobility
/// patterns on the training days (modified PrefixSpan at
/// `min_support`), then predict each next place as the continuation of
/// the highest-support mined pattern whose prefix ends at the context's
/// last item — the prediction CrowdWeb's own patterns imply. Falls back
/// to the user's most frequent place when no pattern continues the
/// context.
///
/// # Errors
///
/// Returns [`MobilityError::InvalidSplit`] unless `0 < train_fraction
/// < 1`, and mining errors for an invalid `min_support`.
///
/// # Examples
///
/// ```
/// use crowdweb_mobility::evaluate_pattern_predictor;
/// use crowdweb_prep::Preprocessor;
/// use crowdweb_synth::SynthConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dataset = SynthConfig::small(5).generate()?;
/// let prepared = Preprocessor::new().min_active_days(20).prepare(&dataset)?;
/// let report = evaluate_pattern_predictor(prepared.seqdb(), 0.15, 0.7)?;
/// assert!(report.total > 0);
/// # Ok(())
/// # }
/// ```
pub fn evaluate_pattern_predictor(
    seqdb: &SequenceDatabase,
    min_support: f64,
    train_fraction: f64,
) -> Result<PredictionReport, MobilityError> {
    if !(train_fraction.is_finite() && 0.0 < train_fraction && train_fraction < 1.0) {
        return Err(MobilityError::InvalidSplit(train_fraction));
    }
    let miner = PatternMiner::new(min_support)?;
    let mut report = PredictionReport::default();
    for view in seqdb.views() {
        let days = view.decode();
        let n = days.len();
        if n < 2 {
            continue;
        }
        let split = ((n as f64 * train_fraction).floor() as usize).clamp(1, n - 1);
        let train = &days[..split];
        let mined = miner.detect(view.user(), train)?;
        // Continuation table: for each (slot, label) item, the
        // highest-support item that follows it in some mined pattern.
        let mut continuation: HashMap<SeqItem, (usize, PlaceLabel)> = HashMap::new();
        for p in mined.patterns.iter() {
            for pair in p.items.windows(2) {
                let entry = continuation
                    .entry(pair[0])
                    .or_insert((p.support, pair[1].label));
                if p.support > entry.0 {
                    *entry = (p.support, pair[1].label);
                }
            }
        }
        // Fallback: most frequent training label.
        let mut freq: HashMap<PlaceLabel, usize> = HashMap::new();
        for day in train {
            for item in day {
                *freq.entry(item.label).or_insert(0) += 1;
            }
        }
        let top = freq
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(&l, _)| l);

        for day in &days[split..] {
            for i in 1..day.len() {
                let guess = continuation
                    .get(&day[i - 1])
                    .map(|&(_, label)| label)
                    .or(top);
                if let Some(guess) = guess {
                    report.total += 1;
                    if guess == day[i].label {
                        report.correct += 1;
                    }
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_dataset::UserId;
    use crowdweb_prep::{TimeSlot, UserSequences};

    fn item(slot: u8, label: u32) -> SeqItem {
        SeqItem {
            slot: TimeSlot(slot),
            label: PlaceLabel(label),
        }
    }

    fn db(days: Vec<Vec<SeqItem>>) -> SequenceDatabase {
        vec![UserSequences {
            user: UserId::new(1),
            sequences: days,
        }]
        .into_iter()
        .collect()
    }

    /// A perfectly regular user: 0 -> 1 -> 2 every day.
    fn regular() -> SequenceDatabase {
        db((0..10)
            .map(|_| vec![item(3, 0), item(6, 1), item(11, 2)])
            .collect())
    }

    #[test]
    fn markov_is_perfect_on_regular_data() {
        let r = evaluate_predictor(&regular(), PredictorKind::Markov1, 0.5).unwrap();
        assert_eq!(r.accuracy(), 1.0);
        assert_eq!(r.total, 10); // 5 test days x 2 targets
        let r2 = evaluate_predictor(&regular(), PredictorKind::Markov2, 0.5).unwrap();
        assert_eq!(r2.accuracy(), 1.0);
    }

    #[test]
    fn top_frequency_is_weaker_than_markov_on_structured_data() {
        // 0 -> 1 -> 0 -> 2 daily: top frequency (0) is right half the
        // time; Markov-1 knows 1 -> 0 but not 0 -> {1,2} perfectly.
        let days: Vec<Vec<SeqItem>> = (0..12)
            .map(|_| vec![item(1, 0), item(4, 1), item(7, 0), item(10, 2)])
            .collect();
        let top = evaluate_predictor(&db(days.clone()), PredictorKind::TopFrequency, 0.5).unwrap();
        let markov2 = evaluate_predictor(&db(days), PredictorKind::Markov2, 0.5).unwrap();
        assert!(markov2.accuracy() > top.accuracy());
        // Markov-2 disambiguates (1,0)->2 vs (start,0)->1 contexts... the
        // first target of a day has order-1 context only.
        assert!(markov2.accuracy() >= 2.0 / 3.0);
    }

    #[test]
    fn invalid_split_errors() {
        for bad in [0.0, 1.0, -0.2, f64::NAN] {
            assert!(matches!(
                evaluate_predictor(&regular(), PredictorKind::Markov1, bad),
                Err(MobilityError::InvalidSplit(_))
            ));
        }
    }

    #[test]
    fn single_day_users_are_skipped() {
        let one = db(vec![vec![item(1, 0), item(2, 1)]]);
        let r = evaluate_predictor(&one, PredictorKind::Markov1, 0.5).unwrap();
        assert_eq!(r.total, 0);
        assert_eq!(r.accuracy(), 0.0);
    }

    #[test]
    fn unseen_context_falls_back_to_top() {
        // Train days all 0 -> 1; test day starts at unseen 5.
        let mut days: Vec<Vec<SeqItem>> = (0..4).map(|_| vec![item(1, 0), item(4, 1)]).collect();
        days.push(vec![item(2, 5), item(4, 0)]);
        let r = evaluate_predictor(&db(days), PredictorKind::Markov1, 0.8).unwrap();
        // One target (the 0 after the 5): fallback predicts top place
        // which is 0 or 1 (tie broken to smaller) => 0 is top? counts:
        // 0 x4, 1 x4 -> tie, smaller label wins: predicts 0, correct.
        assert_eq!(r.total, 1);
        assert_eq!(r.correct, 1);
    }

    #[test]
    fn pattern_predictor_is_perfect_on_regular_data() {
        let r = evaluate_pattern_predictor(&regular(), 0.5, 0.5).unwrap();
        assert_eq!(r.accuracy(), 1.0, "{r:?}");
    }

    #[test]
    fn pattern_predictor_validates_inputs() {
        assert!(matches!(
            evaluate_pattern_predictor(&regular(), 0.5, 0.0),
            Err(MobilityError::InvalidSplit(_))
        ));
        assert!(evaluate_pattern_predictor(&regular(), 0.0, 0.5).is_err());
    }

    #[test]
    fn pattern_predictor_beats_top_frequency_on_structured_data() {
        let days: Vec<Vec<SeqItem>> = (0..12)
            .map(|_| vec![item(1, 0), item(4, 1), item(7, 0), item(10, 2)])
            .collect();
        let top = evaluate_predictor(&db(days.clone()), PredictorKind::TopFrequency, 0.5).unwrap();
        let pattern = evaluate_pattern_predictor(&db(days), 0.5, 0.5).unwrap();
        assert!(
            pattern.accuracy() > top.accuracy(),
            "pattern {} <= top {}",
            pattern.accuracy(),
            top.accuracy()
        );
    }

    #[test]
    fn report_merge_accumulates() {
        let mut a = PredictionReport {
            correct: 1,
            total: 2,
        };
        a.merge(PredictionReport {
            correct: 3,
            total: 4,
        });
        assert_eq!(
            a,
            PredictionReport {
                correct: 4,
                total: 6
            }
        );
        assert!((a.accuracy() - 4.0 / 6.0).abs() < 1e-12);
    }
}
