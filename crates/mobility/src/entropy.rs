//! Predictability metrics for individual mobility.
//!
//! The paper's premise — "several studies have demonstrated that human
//! mobility is highly predictable due to the regularity of daily
//! routines" — traces to the entropy framework of Song et al. (2010).
//! This module implements it over a user's place-label visit stream:
//!
//! - [`random_entropy`] — `log2(N)` over the `N` distinct places; the
//!   entropy if every visited place were equally likely.
//! - [`uncorrelated_entropy`] — Shannon entropy of the visit-frequency
//!   distribution; captures heterogeneity but not temporal order.
//! - [`actual_entropy`] — a Lempel–Ziv estimator over the ordered visit
//!   sequence; captures temporal correlations, so
//!   `actual <= uncorrelated <= random` (up to estimator noise).
//! - [`max_predictability`] — Fano's inequality solved for the maximum
//!   achievable prediction accuracy `Π` given an entropy rate.
//! - [`regularity`] — the fraction of visits to the user's top place in
//!   each time slot (the "R" of the mobility literature).

use crowdweb_prep::{PlaceLabel, SeqItem, TimeSlot};
use std::collections::{BTreeMap, HashMap};

/// `log2(N)` over the distinct places in `visits` (0.0 for an empty or
/// single-place stream).
pub fn random_entropy(visits: &[PlaceLabel]) -> f64 {
    let mut distinct: Vec<PlaceLabel> = visits.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    if distinct.len() <= 1 {
        0.0
    } else {
        (distinct.len() as f64).log2()
    }
}

/// Shannon entropy (bits) of the visit-frequency distribution.
pub fn uncorrelated_entropy(visits: &[PlaceLabel]) -> f64 {
    if visits.is_empty() {
        return 0.0;
    }
    // BTreeMap, not HashMap: a fixed summation order keeps the result
    // bit-identical across calls (HashMap iteration order varies per
    // instance, which shifts the float sum by an ulp).
    let mut counts: BTreeMap<PlaceLabel, usize> = BTreeMap::new();
    for &v in visits {
        *counts.entry(v).or_insert(0) += 1;
    }
    let n = visits.len() as f64;
    -counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            p * p.log2()
        })
        .sum::<f64>()
}

/// Lempel–Ziv entropy-rate estimator (bits per visit) over the ordered
/// visit stream:
///
/// `S_est = (n * log2(n)) / sum(Lambda_i)`
///
/// where `Lambda_i` is the length of the shortest substring starting at
/// `i` that has not appeared in `visits[..i]` (Kontoyiannis et al.).
/// Returns 0.0 for streams shorter than 2 visits.
pub fn actual_entropy(visits: &[PlaceLabel]) -> f64 {
    let n = visits.len();
    if n < 2 {
        return 0.0;
    }
    let mut lambda_sum = 0.0f64;
    for i in 0..n {
        // Shortest substring visits[i..i+l] not seen in visits[..i].
        let mut l = 1usize;
        'grow: loop {
            if i + l > n {
                // Ran off the end without finding a novel substring:
                // conventionally Lambda = n - i + 1.
                l = n - i + 1;
                break;
            }
            let needle = &visits[i..i + l];
            let mut found = false;
            if i >= l {
                for start in 0..=(i - l) {
                    if &visits[start..start + l] == needle {
                        found = true;
                        break;
                    }
                }
            }
            if !found {
                break 'grow;
            }
            l += 1;
        }
        lambda_sum += l as f64;
    }
    (n as f64) * (n as f64).log2() / lambda_sum
}

/// Solves Fano's inequality for the maximum predictability `Π` of a
/// process with entropy rate `entropy` (bits) over `n_places` distinct
/// symbols, by bisection on
///
/// `S = H(Π) + (1 - Π) * log2(N - 1)`
///
/// Returns a value in `[1/N, 1]`; 1.0 when `entropy <= 0` and `1/N`
/// when the entropy saturates. Returns `None` if `n_places < 2`.
pub fn max_predictability(entropy: f64, n_places: usize) -> Option<f64> {
    if n_places < 2 {
        return None;
    }
    if entropy <= 0.0 {
        return Some(1.0);
    }
    let n = n_places as f64;
    let h = |p: f64| -> f64 {
        let q = 1.0 - p;
        let term = |x: f64| if x <= 0.0 { 0.0 } else { x * x.log2() };
        -(term(p) + term(q)) + q * (n - 1.0).log2()
    };
    // h is decreasing in p on [1/N, 1]; find p with h(p) = entropy.
    let (mut lo, mut hi) = (1.0 / n, 1.0);
    if entropy >= h(lo) {
        return Some(lo);
    }
    for _ in 0..64 {
        let mid = (lo + hi) / 2.0;
        if h(mid) > entropy {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some((lo + hi) / 2.0)
}

/// Per-slot regularity: for each time slot, the fraction of that slot's
/// visits going to the slot's most-visited place. Returns
/// `(slot, top_fraction, visits_in_slot)` rows for slots with at least
/// one visit, in slot order. The overall mean of `top_fraction` is the
/// "R" regularity statistic.
pub fn regularity(items: &[SeqItem]) -> Vec<(TimeSlot, f64, usize)> {
    let mut per_slot: HashMap<TimeSlot, HashMap<PlaceLabel, usize>> = HashMap::new();
    for it in items {
        *per_slot
            .entry(it.slot)
            .or_default()
            .entry(it.label)
            .or_insert(0) += 1;
    }
    let mut rows: Vec<(TimeSlot, f64, usize)> = per_slot
        .into_iter()
        .map(|(slot, counts)| {
            let total: usize = counts.values().sum();
            let top = counts.values().max().copied().unwrap_or(0);
            (slot, top as f64 / total.max(1) as f64, total)
        })
        .collect();
    rows.sort_by_key(|r| r.0);
    rows
}

/// The complete entropy/predictability profile of one user's visit
/// stream.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictabilityProfile {
    /// Number of visits.
    pub visits: usize,
    /// Number of distinct places.
    pub distinct_places: usize,
    /// `log2(N)`.
    pub random_entropy: f64,
    /// Shannon entropy of visit frequencies.
    pub uncorrelated_entropy: f64,
    /// Lempel–Ziv entropy-rate estimate.
    pub actual_entropy: f64,
    /// Fano upper bound on prediction accuracy from the actual entropy.
    pub max_predictability: f64,
}

/// Computes the full profile over a user's daily sequences
/// (concatenated in day order).
pub fn predictability_profile(sequences: &[Vec<SeqItem>]) -> PredictabilityProfile {
    let visits: Vec<PlaceLabel> = sequences.iter().flatten().map(|it| it.label).collect();
    let mut distinct = visits.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let s_rand = random_entropy(&visits);
    let s_unc = uncorrelated_entropy(&visits);
    let s_act = actual_entropy(&visits);
    let pi = max_predictability(s_act, distinct.len()).unwrap_or(1.0);
    PredictabilityProfile {
        visits: visits.len(),
        distinct_places: distinct.len(),
        random_entropy: s_rand,
        uncorrelated_entropy: s_unc,
        actual_entropy: s_act,
        max_predictability: pi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_prep::TimeSlot;
    use proptest::prelude::*;

    fn l(v: u32) -> PlaceLabel {
        PlaceLabel(v)
    }

    #[test]
    fn random_entropy_examples() {
        assert_eq!(random_entropy(&[]), 0.0);
        assert_eq!(random_entropy(&[l(1), l(1)]), 0.0);
        assert_eq!(random_entropy(&[l(1), l(2)]), 1.0);
        assert_eq!(random_entropy(&[l(1), l(2), l(3), l(4)]), 2.0);
    }

    #[test]
    fn uncorrelated_entropy_examples() {
        assert_eq!(uncorrelated_entropy(&[]), 0.0);
        assert_eq!(uncorrelated_entropy(&[l(1), l(1), l(1)]), 0.0);
        // Uniform over 2: exactly 1 bit.
        assert!((uncorrelated_entropy(&[l(1), l(2)]) - 1.0).abs() < 1e-12);
        // Skewed 3:1 is less than 1 bit.
        let skew = uncorrelated_entropy(&[l(1), l(1), l(1), l(2)]);
        assert!(skew > 0.0 && skew < 1.0);
    }

    #[test]
    fn entropy_hierarchy_on_regular_stream() {
        // A perfectly periodic stream: actual entropy should be far
        // below uncorrelated, which is at most random.
        let visits: Vec<PlaceLabel> = (0..120).map(|i| l(i % 3)).collect();
        let s_rand = random_entropy(&visits);
        let s_unc = uncorrelated_entropy(&visits);
        let s_act = actual_entropy(&visits);
        assert!(s_unc <= s_rand + 1e-9);
        assert!(s_act < s_unc, "actual {s_act} uncorrelated {s_unc}");
    }

    #[test]
    fn actual_entropy_higher_for_noisy_stream() {
        let periodic: Vec<PlaceLabel> = (0..90).map(|i| l(i % 3)).collect();
        // Deterministic but highly irregular: multiplicative hash.
        let noisy: Vec<PlaceLabel> = (0..90u32)
            .map(|i| l(i.wrapping_mul(2_654_435_761) % 3))
            .collect();
        assert!(actual_entropy(&noisy) > actual_entropy(&periodic));
    }

    #[test]
    fn max_predictability_bounds() {
        assert_eq!(max_predictability(0.5, 1), None);
        assert_eq!(max_predictability(0.0, 5), Some(1.0));
        // Saturated entropy over N places pins predictability at 1/N.
        let n = 8usize;
        let pi = max_predictability((n as f64).log2(), n).unwrap();
        assert!((pi - 1.0 / n as f64).abs() < 1e-6, "pi {pi}");
        // A typical human value: S ~ 0.8 bits over many places gives
        // high predictability (Song et al. report ~93% over N~50).
        let pi = max_predictability(0.8, 50).unwrap();
        assert!(pi > 0.85, "pi {pi}");
    }

    #[test]
    fn max_predictability_monotone_in_entropy() {
        let mut prev = 1.1f64;
        for e in [0.0, 0.5, 1.0, 1.5, 2.0, 2.5] {
            let pi = max_predictability(e, 8).unwrap();
            assert!(pi <= prev + 1e-9, "entropy {e}");
            prev = pi;
        }
    }

    #[test]
    fn regularity_rows() {
        let item = |s: u8, v: u32| SeqItem {
            slot: TimeSlot(s),
            label: l(v),
        };
        // Slot 1: three visits, two to place 0. Slot 2: one visit.
        let items = vec![item(1, 0), item(1, 0), item(1, 1), item(2, 5)];
        let rows = regularity(&items);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], (TimeSlot(1), 2.0 / 3.0, 3));
        assert_eq!(rows[1], (TimeSlot(2), 1.0, 1));
        assert!(regularity(&[]).is_empty());
    }

    #[test]
    fn profile_on_routine_user() {
        let item = |s: u8, v: u32| SeqItem {
            slot: TimeSlot(s),
            label: l(v),
        };
        let days: Vec<Vec<SeqItem>> = (0..30)
            .map(|_| vec![item(3, 0), item(4, 1), item(6, 2), item(11, 0)])
            .collect();
        let p = predictability_profile(&days);
        assert_eq!(p.visits, 120);
        assert_eq!(p.distinct_places, 3);
        // A perfectly repeating routine is almost fully predictable.
        assert!(p.max_predictability > 0.8, "{p:?}");
        assert!(p.actual_entropy < p.uncorrelated_entropy);
    }

    proptest! {
        #[test]
        fn prop_uncorrelated_below_random(
            visits in proptest::collection::vec(0u32..6, 0..80)
        ) {
            let visits: Vec<PlaceLabel> = visits.into_iter().map(l).collect();
            prop_assert!(uncorrelated_entropy(&visits) <= random_entropy(&visits) + 1e-9);
        }

        #[test]
        fn prop_predictability_in_unit_interval(
            entropy in 0.0f64..6.0, n in 2usize..40
        ) {
            let pi = max_predictability(entropy, n).unwrap();
            prop_assert!((1.0 / n as f64 - 1e-9..=1.0).contains(&pi));
        }

        #[test]
        fn prop_regularity_fractions_valid(
            items in proptest::collection::vec((0u8..12, 0u32..5), 0..60)
        ) {
            let items: Vec<SeqItem> = items
                .into_iter()
                .map(|(s, v)| SeqItem { slot: TimeSlot(s), label: l(v) })
                .collect();
            for (_, frac, total) in regularity(&items) {
                prop_assert!(frac > 0.0 && frac <= 1.0);
                prop_assert!(total >= 1);
            }
        }
    }
}
