//! Per-user mobility-pattern detection.

use crate::MobilityError;
use crowdweb_dataset::UserId;
use crowdweb_exec::{parallel_map_observed, Parallelism};
use crowdweb_obs::MetricsRegistry;
use crowdweb_prep::{Prepared, SeqItem, Symbol, UserView};
use crowdweb_seqmine::{closed_patterns, ModifiedPrefixSpan, PatternSet};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// The mined mobility patterns of one user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserPatterns {
    /// The user.
    pub user: UserId,
    /// Number of daily sequences the patterns were mined from.
    pub active_days: usize,
    /// The mined pattern set (supports are in days).
    pub patterns: PatternSet<SeqItem>,
}

impl UserPatterns {
    /// Number of mined patterns — the paper's "number of sequences
    /// extracted per user" (Figure 5).
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }

    /// Mean pattern length — the paper's "average length of sequences
    /// per user" (Figure 7).
    pub fn mean_pattern_length(&self) -> f64 {
        self.patterns.mean_length()
    }
}

/// Detects individual mobility patterns with the modified PrefixSpan
/// (C-BUILDER; [`PatternMiner::detect_all`] is the terminal method).
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, PartialEq)]
pub struct PatternMiner {
    min_support: f64,
    max_gap: Option<u32>,
    max_length: Option<usize>,
    closed_only: bool,
    parallelism: Parallelism,
    metrics: Option<MetricsRegistry>,
}

impl PatternMiner {
    /// Creates a miner with the given relative support threshold in
    /// `(0, 1]` (fraction of the user's active days).
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::Mine`] for thresholds outside `(0, 1]`.
    pub fn new(min_support: f64) -> Result<PatternMiner, MobilityError> {
        // Validate eagerly via the underlying miner's constructor.
        ModifiedPrefixSpan::new(min_support)?;
        Ok(PatternMiner {
            min_support,
            max_gap: None,
            max_length: None,
            closed_only: false,
            parallelism: Parallelism::Sequential,
            metrics: None,
        })
    }

    /// Sets how [`Self::detect_all`] fans users out over the shared
    /// pool (default sequential). The detected patterns are identical
    /// under any policy.
    pub fn parallelism(mut self, parallelism: Parallelism) -> PatternMiner {
        self.parallelism = parallelism;
        self
    }

    /// Attaches a metrics registry: [`Self::detect_all`] and
    /// [`Self::detect_updated`] record their fan-out wall time. Timing
    /// never alters the mined patterns.
    pub fn metrics(mut self, metrics: Option<MetricsRegistry>) -> PatternMiner {
        self.metrics = metrics;
        self
    }

    /// Sets the maximum slot gap between consecutive pattern items.
    pub fn max_gap(mut self, gap: Option<u32>) -> PatternMiner {
        self.max_gap = gap;
        self
    }

    /// Caps pattern length.
    pub fn max_length(mut self, len: Option<usize>) -> PatternMiner {
        self.max_length = len;
        self
    }

    /// Keeps only closed patterns (no super-pattern with equal support).
    pub fn closed_only(mut self, closed: bool) -> PatternMiner {
        self.closed_only = closed;
        self
    }

    /// The configured support threshold.
    pub fn min_support(&self) -> f64 {
        self.min_support
    }

    /// Mines the patterns of a single user's daily sequences.
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::Mine`] if `max_length` was set to zero.
    pub fn detect(
        &self,
        user: UserId,
        sequences: &[Vec<SeqItem>],
    ) -> Result<UserPatterns, MobilityError> {
        let mut miner = ModifiedPrefixSpan::new(self.min_support)?.max_gap(self.max_gap);
        if let Some(len) = self.max_length {
            miner = miner.max_length(len)?;
        }
        let mut patterns = miner.mine(sequences, |item| u32::from(item.slot.0));
        if self.closed_only {
            patterns = closed_patterns(&patterns);
        }
        Ok(UserPatterns {
            user,
            active_days: sequences.len(),
            patterns,
        })
    }

    /// Mines one user's patterns straight off the columnar store,
    /// without decoding the sequences first: the symbol slices are
    /// mined as-is and only the (far smaller) result patterns are
    /// mapped back to [`SeqItem`]s. Because the symbol table interns
    /// items in sorted order, the mined set is identical to
    /// [`Self::detect`] on the decoded sequences.
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::Mine`] if `max_length` was set to zero.
    pub fn detect_view(&self, view: UserView<'_>) -> Result<UserPatterns, MobilityError> {
        let mut miner = ModifiedPrefixSpan::new(self.min_support)?.max_gap(self.max_gap);
        if let Some(len) = self.max_length {
            miner = miner.max_length(len)?;
        }
        let table = view.symbols();
        let days: Vec<&[Symbol]> = view.days().collect();
        let symbol_patterns = miner.mine(&days, |sym| u32::from(table.resolve(*sym).slot.0));
        let mut patterns = symbol_patterns.map_items(|sym| *table.resolve(*sym));
        if self.closed_only {
            patterns = closed_patterns(&patterns);
        }
        Ok(UserPatterns {
            user: view.user(),
            active_days: days.len(),
            patterns,
        })
    }

    /// Mines every user of a prepared dataset, in user order. Users
    /// fan out over the shared pool under [`Self::parallelism`].
    ///
    /// # Errors
    ///
    /// Same as [`Self::detect`].
    pub fn detect_all(&self, prepared: &Prepared) -> Result<Vec<UserPatterns>, MobilityError> {
        let views: Vec<UserView<'_>> = prepared.seqdb().views().collect();
        parallel_map_observed(
            self.parallelism,
            &views,
            |view| self.detect_view(*view),
            self.metrics.as_ref().map(|m| (m, "mine")),
        )
        .into_iter()
        .collect()
    }

    /// Re-mines only the `dirty` users (plus any user absent from
    /// `previous`), reusing every other user's patterns, and returns
    /// the full pattern list in `prepared` user order — byte-identical
    /// to [`Self::detect_all`] on the same `prepared`, provided
    /// `previous` was mined with this miner's configuration and the
    /// non-dirty users' sequences are unchanged.
    ///
    /// # Errors
    ///
    /// Same as [`Self::detect`].
    pub fn detect_updated(
        &self,
        prepared: &Prepared,
        previous: &[UserPatterns],
        dirty: &BTreeSet<UserId>,
    ) -> Result<Vec<UserPatterns>, MobilityError> {
        let prev: HashMap<UserId, &UserPatterns> = previous.iter().map(|p| (p.user, p)).collect();
        let to_mine: Vec<UserView<'_>> = prepared
            .seqdb()
            .views()
            .filter(|v| dirty.contains(&v.user()) || !prev.contains_key(&v.user()))
            .collect();
        let mined: Vec<UserPatterns> = parallel_map_observed(
            self.parallelism,
            &to_mine,
            |view| self.detect_view(*view),
            self.metrics.as_ref().map(|m| (m, "mine_update")),
        )
        .into_iter()
        .collect::<Result<_, _>>()?;
        let mut mined_by_user: HashMap<UserId, UserPatterns> =
            mined.into_iter().map(|p| (p.user, p)).collect();
        Ok(prepared
            .seqdb()
            .user_ids()
            .iter()
            .map(|user| match mined_by_user.remove(user) {
                Some(fresh) => fresh,
                // Only reachable for users present in `previous` (the
                // filter above mined everyone else).
                None => (*prev.get(user).expect("filtered above")).clone(),
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_prep::{PlaceLabel, TimeSlot};

    fn item(slot: u8, label: u32) -> SeqItem {
        SeqItem {
            slot: TimeSlot(slot),
            label: PlaceLabel(label),
        }
    }

    /// Three synthetic "days": home(3) work(4) eatery(6) home(11).
    fn days() -> Vec<Vec<SeqItem>> {
        vec![
            vec![item(3, 0), item(4, 1), item(6, 2), item(11, 0)],
            vec![item(3, 0), item(6, 2), item(11, 0)],
            vec![item(3, 0), item(4, 1), item(11, 0)],
        ]
    }

    #[test]
    fn detect_finds_daily_anchors() {
        let up = PatternMiner::new(1.0)
            .unwrap()
            .detect(UserId::new(1), &days())
            .unwrap();
        assert_eq!(up.active_days, 3);
        // home@3 appears every day.
        assert!(up.patterns.iter().any(|p| p.items == vec![item(3, 0)]));
        // home@3 ... home@11 too.
        assert!(up
            .patterns
            .iter()
            .any(|p| p.items == vec![item(3, 0), item(11, 0)]));
        assert!(up.pattern_count() > 0);
        assert!(up.mean_pattern_length() >= 1.0);
    }

    #[test]
    fn lower_support_yields_more_patterns() {
        let hi = PatternMiner::new(1.0)
            .unwrap()
            .detect(UserId::new(1), &days())
            .unwrap();
        let lo = PatternMiner::new(0.5)
            .unwrap()
            .detect(UserId::new(1), &days())
            .unwrap();
        assert!(lo.pattern_count() > hi.pattern_count());
    }

    #[test]
    fn closed_only_shrinks_set() {
        let full = PatternMiner::new(0.5)
            .unwrap()
            .detect(UserId::new(1), &days())
            .unwrap();
        let closed = PatternMiner::new(0.5)
            .unwrap()
            .closed_only(true)
            .detect(UserId::new(1), &days())
            .unwrap();
        assert!(closed.pattern_count() < full.pattern_count());
    }

    #[test]
    fn gap_constraint_applies() {
        let free = PatternMiner::new(1.0)
            .unwrap()
            .detect(UserId::new(1), &days())
            .unwrap();
        let tight = PatternMiner::new(1.0)
            .unwrap()
            .max_gap(Some(3))
            .detect(UserId::new(1), &days())
            .unwrap();
        // home@3 -> home@11 (gap 8) pruned under gap 3.
        let pair = vec![item(3, 0), item(11, 0)];
        assert!(free.patterns.iter().any(|p| p.items == pair));
        assert!(!tight.patterns.iter().any(|p| p.items == pair));
    }

    #[test]
    fn invalid_configs_error() {
        assert!(PatternMiner::new(0.0).is_err());
        assert!(PatternMiner::new(1.5).is_err());
        let m = PatternMiner::new(0.5).unwrap().max_length(Some(0));
        assert!(m.detect(UserId::new(1), &days()).is_err());
    }

    #[test]
    fn detect_updated_matches_detect_all() {
        let d = crowdweb_synth::SynthConfig::small(31).generate().unwrap();
        let prepared = crowdweb_prep::Preprocessor::new()
            .min_active_days(15)
            .prepare(&d)
            .unwrap();
        assert!(prepared.user_count() >= 2, "need at least two users");
        let miner = PatternMiner::new(0.4).unwrap();
        let all = miner.detect_all(&prepared).unwrap();
        // Dirty half the users; pass the other half through `previous`.
        let dirty: BTreeSet<UserId> = prepared.users().iter().copied().step_by(2).collect();
        let updated = miner.detect_updated(&prepared, &all, &dirty).unwrap();
        assert_eq!(updated, all);
        // A user missing from `previous` is mined even when not dirty.
        let partial: Vec<UserPatterns> = all[1..].to_vec();
        let updated = miner
            .detect_updated(&prepared, &partial, &BTreeSet::new())
            .unwrap();
        assert_eq!(updated, all);
    }

    #[test]
    fn empty_user_has_no_patterns() {
        let up = PatternMiner::new(0.5)
            .unwrap()
            .detect(UserId::new(1), &[])
            .unwrap();
        assert_eq!(up.pattern_count(), 0);
        assert_eq!(up.mean_pattern_length(), 0.0);
    }
}
