//! User similarity and grouping.
//!
//! "Users who frequently visit a specific location at a particular time
//! are categorized together as a group" — this module provides the
//! similarity measures behind that grouping and a simple agglomerative
//! clustering over them, so the platform can colour crowds by
//! behavioural group rather than only by location.

use crate::UserPatterns;
use crowdweb_dataset::UserId;
use crowdweb_prep::SeqItem;
use std::collections::{HashMap, HashSet};

/// Jaccard similarity of two users' *pattern item* sets (which
/// `(slot, label)` visits their patterns cover). 1.0 for identical
/// sets; 0.0 when disjoint or both empty.
pub fn pattern_jaccard(a: &UserPatterns, b: &UserPatterns) -> f64 {
    let items = |u: &UserPatterns| -> HashSet<SeqItem> {
        u.patterns
            .iter()
            .flat_map(|p| p.items.iter().copied())
            .collect()
    };
    let sa = items(a);
    let sb = items(b);
    if sa.is_empty() && sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

/// Cosine similarity of two users' support-weighted pattern-item
/// vectors: each `(slot, label)` dimension weighted by the total
/// support of patterns containing it. Captures *how strongly* two
/// users share habits, not just whether.
pub fn pattern_cosine(a: &UserPatterns, b: &UserPatterns) -> f64 {
    let vector = |u: &UserPatterns| -> HashMap<SeqItem, f64> {
        let mut v: HashMap<SeqItem, f64> = HashMap::new();
        for p in u.patterns.iter() {
            for it in &p.items {
                *v.entry(*it).or_insert(0.0) += p.support as f64;
            }
        }
        v
    };
    let va = vector(a);
    let vb = vector(b);
    let dot: f64 = va
        .iter()
        .filter_map(|(k, x)| vb.get(k).map(|y| x * y))
        .sum();
    let norm = |v: &HashMap<SeqItem, f64>| v.values().map(|x| x * x).sum::<f64>().sqrt();
    let denom = norm(&va) * norm(&vb);
    if denom == 0.0 {
        0.0
    } else {
        dot / denom
    }
}

/// A behavioural group of users.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserGroup {
    /// Members, ascending by user id.
    pub members: Vec<UserId>,
}

impl UserGroup {
    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the group is empty (never produced by the clusterer).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Greedy single-link agglomerative grouping: users land in the same
/// group iff they are connected by a chain of pairwise similarities
/// `>= threshold` (using [`pattern_cosine`]). Groups come back
/// largest-first; singletons are included.
///
/// # Examples
///
/// ```
/// use crowdweb_mobility::{group_users, PatternMiner};
/// use crowdweb_prep::Preprocessor;
/// use crowdweb_synth::SynthConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dataset = SynthConfig::small(3).generate()?;
/// let prepared = Preprocessor::new().min_active_days(20).prepare(&dataset)?;
/// let patterns = PatternMiner::new(0.15)?.detect_all(&prepared)?;
/// let groups = group_users(&patterns, 0.6);
/// let total: usize = groups.iter().map(|g| g.len()).sum();
/// assert_eq!(total, patterns.len());
/// # Ok(())
/// # }
/// ```
pub fn group_users(patterns: &[UserPatterns], threshold: f64) -> Vec<UserGroup> {
    let n = patterns.len();
    // Union-find over user indices.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    #[allow(clippy::needless_range_loop)] // pairwise i < j indexing
    for i in 0..n {
        for j in (i + 1)..n {
            if pattern_cosine(&patterns[i], &patterns[j]) >= threshold {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    let mut groups: HashMap<usize, Vec<UserId>> = HashMap::new();
    for (i, up) in patterns.iter().enumerate() {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(up.user);
    }
    let mut out: Vec<UserGroup> = groups
        .into_values()
        .map(|mut members| {
            members.sort();
            UserGroup { members }
        })
        .collect();
    out.sort_by(|a, b| b.len().cmp(&a.len()).then(a.members.cmp(&b.members)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_prep::{PlaceLabel, TimeSlot};
    use crowdweb_seqmine::{Pattern, PatternSet};

    fn item(slot: u8, label: u32) -> SeqItem {
        SeqItem {
            slot: TimeSlot(slot),
            label: PlaceLabel(label),
        }
    }

    fn user(id: u32, patterns: Vec<(Vec<SeqItem>, usize)>) -> UserPatterns {
        UserPatterns {
            user: UserId::new(id),
            active_days: 30,
            patterns: PatternSet {
                patterns: patterns
                    .into_iter()
                    .map(|(items, support)| Pattern { items, support })
                    .collect(),
                db_size: 30,
            },
        }
    }

    #[test]
    fn jaccard_identical_and_disjoint() {
        let a = user(1, vec![(vec![item(3, 0), item(6, 2)], 10)]);
        let b = user(2, vec![(vec![item(3, 0), item(6, 2)], 5)]);
        let c = user(3, vec![(vec![item(9, 7)], 5)]);
        assert_eq!(pattern_jaccard(&a, &b), 1.0);
        assert_eq!(pattern_jaccard(&a, &c), 0.0);
        let empty = user(4, vec![]);
        assert_eq!(pattern_jaccard(&empty, &empty), 0.0);
        assert_eq!(pattern_jaccard(&a, &empty), 0.0);
    }

    #[test]
    fn jaccard_partial_overlap() {
        let a = user(1, vec![(vec![item(3, 0), item(6, 2)], 10)]);
        let b = user(2, vec![(vec![item(3, 0), item(9, 7)], 5)]);
        // items: a = {3@0, 6@2}, b = {3@0, 9@7}; intersection 1, union 3.
        assert!((pattern_jaccard(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_properties() {
        let a = user(1, vec![(vec![item(3, 0)], 10), (vec![item(6, 2)], 5)]);
        let same_shape = user(2, vec![(vec![item(3, 0)], 20), (vec![item(6, 2)], 10)]);
        let different = user(3, vec![(vec![item(9, 7)], 10)]);
        // Proportional vectors => cosine 1.
        assert!((pattern_cosine(&a, &same_shape) - 1.0).abs() < 1e-12);
        assert_eq!(pattern_cosine(&a, &different), 0.0);
        assert!((pattern_cosine(&a, &a) - 1.0).abs() < 1e-12);
        let empty = user(4, vec![]);
        assert_eq!(pattern_cosine(&a, &empty), 0.0);
    }

    #[test]
    fn grouping_joins_chains_and_keeps_singletons() {
        // a ~ b (identical), c alone.
        let a = user(1, vec![(vec![item(3, 0)], 10)]);
        let b = user(2, vec![(vec![item(3, 0)], 7)]);
        let c = user(3, vec![(vec![item(9, 7)], 7)]);
        let groups = group_users(&[a, b, c], 0.9);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].members, vec![UserId::new(1), UserId::new(2)]);
        assert_eq!(groups[1].members, vec![UserId::new(3)]);
        assert_eq!(groups[0].len(), 2);
        assert!(!groups[0].is_empty());
    }

    #[test]
    fn threshold_one_point_one_separates_everyone() {
        let a = user(1, vec![(vec![item(3, 0)], 10)]);
        let b = user(2, vec![(vec![item(3, 0)], 10)]);
        let groups = group_users(&[a, b], 1.1);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn grouping_partitions_users() {
        let users: Vec<UserPatterns> = (0..6)
            .map(|i| user(i, vec![(vec![item((i % 3) as u8, i % 2)], 5)]))
            .collect();
        let groups = group_users(&users, 0.5);
        let total: usize = groups.iter().map(UserGroup::len).sum();
        assert_eq!(total, 6);
        let mut seen = HashSet::new();
        for g in &groups {
            for m in &g.members {
                assert!(seen.insert(*m), "user {m} in two groups");
            }
        }
    }
}
