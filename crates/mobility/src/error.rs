//! Error type for the mobility core.

use std::error::Error;
use std::fmt;

/// Error produced by pattern detection and prediction.
#[derive(Debug)]
pub enum MobilityError {
    /// Mining configuration was invalid.
    Mine(crowdweb_seqmine::MineError),
    /// Preprocessing failed.
    Prep(crowdweb_prep::PrepError),
    /// Prediction evaluation was configured with an invalid split.
    InvalidSplit(f64),
}

impl fmt::Display for MobilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MobilityError::Mine(e) => write!(f, "mining failed: {e}"),
            MobilityError::Prep(e) => write!(f, "preprocessing failed: {e}"),
            MobilityError::InvalidSplit(v) => {
                write!(f, "train fraction {v} must be in (0, 1)")
            }
        }
    }
}

impl Error for MobilityError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MobilityError::Mine(e) => Some(e),
            MobilityError::Prep(e) => Some(e),
            MobilityError::InvalidSplit(_) => None,
        }
    }
}

impl From<crowdweb_seqmine::MineError> for MobilityError {
    fn from(e: crowdweb_seqmine::MineError) -> Self {
        MobilityError::Mine(e)
    }
}

impl From<crowdweb_prep::PrepError> for MobilityError {
    fn from(e: crowdweb_prep::PrepError) -> Self {
        MobilityError::Prep(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_traits() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MobilityError>();
        let e = MobilityError::from(crowdweb_seqmine::MineError::InvalidSupport);
        assert!(e.source().is_some());
        assert!(!e.to_string().is_empty());
    }
}
