//! Study-window selection.
//!
//! The Foursquare data is sparse, so the paper extracts the months with
//! the richest check-in records — April to June — and runs all
//! experiments inside that three-month window.

use crate::PrepError;
use crowdweb_dataset::{CheckIn, CivilDate, Dataset, DatasetStats};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An inclusive range of local calendar dates the study restricts to.
///
/// # Examples
///
/// ```
/// use crowdweb_prep::StudyWindow;
/// use crowdweb_synth::SynthConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dataset = SynthConfig::small(1).generate()?;
/// // The paper's choice: richest consecutive 3 months.
/// let window = StudyWindow::richest_months(&dataset, 3)?;
/// assert!(window.day_count() >= 28);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StudyWindow {
    first: CivilDate,
    last: CivilDate,
}

impl StudyWindow {
    /// Creates a window from inclusive first and last dates.
    ///
    /// # Errors
    ///
    /// Returns [`PrepError::InvalidConfig`] if `last < first`.
    pub fn new(first: CivilDate, last: CivilDate) -> Result<Self, PrepError> {
        if last < first {
            return Err(PrepError::InvalidConfig("window last date before first"));
        }
        Ok(StudyWindow { first, last })
    }

    /// The window covering every local date in the dataset.
    ///
    /// # Errors
    ///
    /// Returns [`PrepError::EmptyDataset`] for an empty dataset.
    pub fn full(dataset: &Dataset) -> Result<Self, PrepError> {
        let mut dates = dataset.checkins().iter().map(CheckIn::local_date);
        let first = dates.next().ok_or(PrepError::EmptyDataset)?;
        let (mut lo, mut hi) = (first, first);
        for d in dates {
            if d < lo {
                lo = d;
            }
            if d > hi {
                hi = d;
            }
        }
        Ok(StudyWindow {
            first: lo,
            last: hi,
        })
    }

    /// The richest consecutive `months`-month window, as the paper
    /// selects April–June (first day of the first month through the last
    /// day of the last month).
    ///
    /// # Errors
    ///
    /// Returns [`PrepError::EmptyDataset`] for an empty dataset and
    /// [`PrepError::InvalidConfig`] if `months == 0`.
    pub fn richest_months(dataset: &Dataset, months: usize) -> Result<Self, PrepError> {
        if months == 0 {
            return Err(PrepError::InvalidConfig("months must be positive"));
        }
        let stats = DatasetStats::compute(dataset);
        let (start, _) = stats
            .richest_window(months)
            .ok_or(PrepError::EmptyDataset)?;
        let first =
            CivilDate::new(start.year, start.month, 1).expect("month keys come from valid dates");
        let mut end_month = start;
        for _ in 1..months {
            end_month = end_month.succ();
        }
        let last_day = crowdweb_dataset::time::days_in_month(end_month.year, end_month.month);
        let last = CivilDate::new(end_month.year, end_month.month, last_day)
            .expect("last day of a month is valid");
        StudyWindow::new(first, last)
    }

    /// First date (inclusive).
    pub fn first(&self) -> CivilDate {
        self.first
    }

    /// Last date (inclusive).
    pub fn last(&self) -> CivilDate {
        self.last
    }

    /// Number of days in the window.
    pub fn day_count(&self) -> u32 {
        (self.first.days_until(self.last) + 1) as u32
    }

    /// Whether a date falls inside the window.
    pub fn contains(&self, date: CivilDate) -> bool {
        self.first <= date && date <= self.last
    }

    /// Whether a check-in's *local* date falls inside the window.
    pub fn contains_checkin(&self, checkin: &CheckIn) -> bool {
        self.contains(checkin.local_date())
    }

    /// Iterator over every date in the window.
    pub fn iter(&self) -> impl Iterator<Item = CivilDate> {
        let first = self.first.to_epoch_days();
        let last = self.last.to_epoch_days();
        (first..=last).map(CivilDate::from_epoch_days)
    }
}

impl fmt::Display for StudyWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..={}", self.first, self.last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_synth::SynthConfig;

    fn date(y: i32, m: u8, d: u8) -> CivilDate {
        CivilDate::new(y, m, d).unwrap()
    }

    #[test]
    fn new_rejects_reversed() {
        assert!(StudyWindow::new(date(2012, 6, 1), date(2012, 4, 1)).is_err());
    }

    #[test]
    fn day_count_and_contains() {
        let w = StudyWindow::new(date(2012, 4, 1), date(2012, 6, 30)).unwrap();
        assert_eq!(w.day_count(), 91);
        assert!(w.contains(date(2012, 5, 15)));
        assert!(!w.contains(date(2012, 7, 1)));
        assert!(!w.contains(date(2012, 3, 31)));
    }

    #[test]
    fn iter_covers_every_day() {
        let w = StudyWindow::new(date(2012, 4, 28), date(2012, 5, 2)).unwrap();
        let days: Vec<CivilDate> = w.iter().collect();
        assert_eq!(days.len(), 5);
        assert_eq!(days[0], date(2012, 4, 28));
        assert_eq!(days[4], date(2012, 5, 2));
    }

    #[test]
    fn full_window_spans_dataset() {
        let d = SynthConfig::small(1).generate().unwrap();
        let w = StudyWindow::full(&d).unwrap();
        for c in d.checkins() {
            assert!(w.contains_checkin(c));
        }
    }

    #[test]
    fn richest_months_is_calendar_aligned() {
        let d = SynthConfig::small(2)
            .days(330)
            .engagement_decay(0.85)
            .generate()
            .unwrap();
        let w = StudyWindow::richest_months(&d, 3).unwrap();
        assert_eq!(w.first().day(), 1);
        // With decaying engagement from an April start, the richest
        // 3-month window is April-June.
        assert_eq!((w.first().year(), w.first().month()), (2012, 4));
        assert_eq!((w.last().month(), w.last().day()), (6, 30));
        assert_eq!(w.day_count(), 91);
    }

    #[test]
    fn richest_months_rejects_zero() {
        let d = SynthConfig::small(3).generate().unwrap();
        assert!(StudyWindow::richest_months(&d, 0).is_err());
    }

    #[test]
    fn empty_dataset_errors() {
        let d = Dataset::builder().build().unwrap();
        assert_eq!(StudyWindow::full(&d), Err(PrepError::EmptyDataset));
        assert_eq!(
            StudyWindow::richest_months(&d, 3),
            Err(PrepError::EmptyDataset)
        );
    }

    #[test]
    fn display_shows_range() {
        let w = StudyWindow::new(date(2012, 4, 1), date(2012, 6, 30)).unwrap();
        assert_eq!(w.to_string(), "2012-04-01..=2012-06-30");
    }
}
