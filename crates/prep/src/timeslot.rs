//! Time-of-day discretization.
//!
//! The paper buckets check-ins at a two-hour granularity ("users with
//! less than 2 hours check-in records"); crowd views later use one-hour
//! windows. [`TimeSlotting`] supports any slot width that divides 24.

use crate::PrepError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a time-of-day slot under some [`TimeSlotting`] (0 is the slot
/// starting at midnight).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TimeSlot(pub u8);

impl fmt::Display for TimeSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot#{}", self.0)
    }
}

/// A division of the 24-hour day into equal slots.
///
/// # Examples
///
/// ```
/// use crowdweb_prep::TimeSlotting;
///
/// # fn main() -> Result<(), crowdweb_prep::PrepError> {
/// let slots = TimeSlotting::new(2)?; // the paper's 2-hour granularity
/// assert_eq!(slots.slot_count(), 12);
/// let noon = slots.slot_of_hour(12);
/// assert_eq!(slots.label(noon), "12:00-14:00");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeSlotting {
    slot_hours: u8,
}

impl Default for TimeSlotting {
    /// The paper's two-hour granularity.
    fn default() -> Self {
        TimeSlotting { slot_hours: 2 }
    }
}

impl TimeSlotting {
    /// Creates a slotting with `slot_hours`-hour slots.
    ///
    /// # Errors
    ///
    /// Returns [`PrepError::InvalidConfig`] unless `slot_hours` divides
    /// 24 evenly (1, 2, 3, 4, 6, 8, 12, or 24).
    pub fn new(slot_hours: u8) -> Result<Self, PrepError> {
        if slot_hours == 0 || 24 % slot_hours != 0 {
            return Err(PrepError::InvalidConfig("slot_hours must divide 24"));
        }
        Ok(TimeSlotting { slot_hours })
    }

    /// Width of one slot in hours.
    pub fn slot_hours(&self) -> u8 {
        self.slot_hours
    }

    /// Number of slots in a day.
    pub fn slot_count(&self) -> u8 {
        24 / self.slot_hours
    }

    /// The slot containing the given hour of day.
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24`.
    pub fn slot_of_hour(&self, hour: u8) -> TimeSlot {
        assert!(hour < 24, "hour {hour} out of range");
        TimeSlot(hour / self.slot_hours)
    }

    /// The slot containing a local civil time.
    pub fn slot_of(&self, local: crowdweb_dataset::CivilDateTime) -> TimeSlot {
        self.slot_of_hour(local.hour)
    }

    /// Start hour of a slot (wraps modulo the slot count).
    pub fn start_hour(&self, slot: TimeSlot) -> u8 {
        (slot.0 % self.slot_count()) * self.slot_hours
    }

    /// Human-readable slot label, e.g. `"12:00-14:00"`.
    pub fn label(&self, slot: TimeSlot) -> String {
        let start = self.start_hour(slot);
        let end = start + self.slot_hours;
        if end == 24 {
            format!("{start:02}:00-24:00")
        } else {
            format!("{start:02}:00-{end:02}:00")
        }
    }

    /// Iterator over all slots of the day in order.
    pub fn iter(&self) -> impl Iterator<Item = TimeSlot> {
        (0..self.slot_count()).map(TimeSlot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_accepts_divisors_of_24() {
        for h in [1u8, 2, 3, 4, 6, 8, 12, 24] {
            assert!(TimeSlotting::new(h).is_ok(), "{h}");
        }
        for h in [0u8, 5, 7, 9, 10, 25] {
            assert!(TimeSlotting::new(h).is_err(), "{h}");
        }
    }

    #[test]
    fn default_is_two_hours() {
        let s = TimeSlotting::default();
        assert_eq!(s.slot_hours(), 2);
        assert_eq!(s.slot_count(), 12);
    }

    #[test]
    fn slot_boundaries() {
        let s = TimeSlotting::new(2).unwrap();
        assert_eq!(s.slot_of_hour(0), TimeSlot(0));
        assert_eq!(s.slot_of_hour(1), TimeSlot(0));
        assert_eq!(s.slot_of_hour(2), TimeSlot(1));
        assert_eq!(s.slot_of_hour(23), TimeSlot(11));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slot_of_hour_rejects_24() {
        TimeSlotting::default().slot_of_hour(24);
    }

    #[test]
    fn labels_cover_day() {
        let s = TimeSlotting::new(2).unwrap();
        assert_eq!(s.label(TimeSlot(0)), "00:00-02:00");
        assert_eq!(s.label(TimeSlot(6)), "12:00-14:00");
        assert_eq!(s.label(TimeSlot(11)), "22:00-24:00");
    }

    #[test]
    fn iter_yields_all_slots() {
        let s = TimeSlotting::new(6).unwrap();
        let slots: Vec<TimeSlot> = s.iter().collect();
        assert_eq!(
            slots,
            vec![TimeSlot(0), TimeSlot(1), TimeSlot(2), TimeSlot(3)]
        );
    }

    #[test]
    fn slot_of_local_time() {
        let s = TimeSlotting::default();
        let t = crowdweb_dataset::Timestamp::from_civil(2012, 4, 3, 13, 30, 0).unwrap();
        assert_eq!(s.slot_of(t.to_civil_utc()), TimeSlot(6));
    }

    proptest! {
        #[test]
        fn prop_start_hour_consistent(hour in 0u8..24) {
            let s = TimeSlotting::new(2).unwrap();
            let slot = s.slot_of_hour(hour);
            let start = s.start_hour(slot);
            prop_assert!(start <= hour && hour < start + s.slot_hours());
        }
    }
}
