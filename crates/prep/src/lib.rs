//! Preprocessing pipeline: from raw check-ins to the per-user sequence
//! databases that pattern mining consumes.
//!
//! The paper's pipeline (Section I.1) is reproduced stage by stage:
//!
//! 1. **Window selection** — pick the richest three-month window
//!    (April–June for the Foursquare data) to fight sparsity
//!    ([`window`]).
//! 2. **Active-user filtering** — keep users with check-in records on
//!    more than 50 days within the window, at the 2-hour time
//!    granularity ([`filter`]).
//! 3. **Time discretization** — bucket each check-in's *local* time of
//!    day into fixed slots (default two hours) ([`timeslot`]).
//! 4. **Place abstraction** — replace raw venues with labels at a chosen
//!    abstraction level (venue / fine category / coarse kind); the coarse
//!    kind is what makes flexible patterns detectable ([`label`]).
//! 5. **Sequence-database construction** — one sequence per user per
//!    local day, of `(time slot, place label)` items ([`seqdb`]).
//!
//! [`pipeline::Preprocessor`] chains all five.
//!
//! # Examples
//!
//! ```
//! use crowdweb_prep::{LabelScheme, Preprocessor};
//! use crowdweb_synth::SynthConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dataset = SynthConfig::small(7).generate()?;
//! let prepared = Preprocessor::new()
//!     .label_scheme(LabelScheme::Kind)
//!     .min_active_days(20)
//!     .prepare(&dataset)?;
//! assert!(prepared.user_count() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod filter;
pub mod label;
pub mod pipeline;
pub mod quality;
pub mod seqdb;
pub mod staypoint;
pub mod timeslot;
pub mod window;

pub use error::PrepError;
pub use filter::ActivityFilter;
pub use label::{LabelScheme, Labeler, PlaceLabel};
pub use pipeline::{PrepUpdate, Prepared, Preprocessor, WindowChoice};
pub use quality::SeqDbQuality;
pub use seqdb::{SeqItem, SequenceDatabase, Symbol, SymbolTable, UserSequences, UserView};
pub use timeslot::{TimeSlot, TimeSlotting};
pub use window::StudyWindow;
