//! Stay-point detection (Li et al., 2008).
//!
//! GTSM check-ins are already discrete visits, but richer trajectory
//! sources (GPS traces, WiFi sensing — both named by the paper's
//! citations as crowd-sensing substrates) deliver raw position streams.
//! A *stay point* is a region where the subject lingered: all points
//! within `distance_threshold_m` of the anchor for at least
//! `duration_threshold_s`. This module turns such streams into
//! visit-like events that feed the same pipeline as check-ins.

use crowdweb_dataset::Timestamp;
use crowdweb_geo::LatLon;
use serde::{Deserialize, Serialize};

/// A timestamped position observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackPoint {
    /// Position.
    pub location: LatLon,
    /// Observation instant.
    pub time: Timestamp,
}

/// A detected stay: the subject remained near `centroid` from `arrive`
/// to `depart`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StayPoint {
    /// Mean position of the stay's observations.
    pub centroid: LatLon,
    /// First observation of the stay.
    pub arrive: Timestamp,
    /// Last observation of the stay.
    pub depart: Timestamp,
    /// Number of observations merged into the stay.
    pub points: usize,
}

impl StayPoint {
    /// Stay duration in seconds.
    pub fn duration_s(&self) -> i64 {
        self.arrive.seconds_until(self.depart)
    }
}

/// Detects stay points in a time-ordered position stream.
///
/// The classic anchor-scan algorithm: starting from each anchor point,
/// extend the window while every point stays within
/// `distance_threshold_m` of the anchor; if the window spans at least
/// `duration_threshold_s`, emit a stay at the window's centroid and
/// continue after it.
///
/// Unordered input is handled by sorting a copy by time.
///
/// # Examples
///
/// ```
/// use crowdweb_dataset::Timestamp;
/// use crowdweb_geo::LatLon;
/// use crowdweb_prep::staypoint::{detect_stay_points, TrackPoint};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let home = LatLon::new(40.75, -73.99)?;
/// // 40 minutes of jitter near home, then a far-away fix.
/// let mut track: Vec<TrackPoint> = (0..5)
///     .map(|i| TrackPoint {
///         location: home.destination(f64::from(i) * 72.0, 20.0),
///         time: Timestamp::from_unix_seconds(i64::from(i) * 600),
///     })
///     .collect();
/// track.push(TrackPoint {
///     location: LatLon::new(40.80, -73.90)?,
///     time: Timestamp::from_unix_seconds(3600),
/// });
/// let stays = detect_stay_points(&track, 150.0, 20 * 60);
/// assert_eq!(stays.len(), 1);
/// assert!(stays[0].duration_s() >= 20 * 60);
/// # Ok(())
/// # }
/// ```
pub fn detect_stay_points(
    track: &[TrackPoint],
    distance_threshold_m: f64,
    duration_threshold_s: i64,
) -> Vec<StayPoint> {
    let mut points = track.to_vec();
    points.sort_by_key(|p| p.time);

    let mut stays = Vec::new();
    let mut i = 0usize;
    while i < points.len() {
        let anchor = points[i].location;
        let mut j = i + 1;
        while j < points.len()
            && anchor.equirectangular_m(points[j].location) <= distance_threshold_m
        {
            j += 1;
        }
        // Window [i, j) is spatially coherent around the anchor.
        let duration = points[i].time.seconds_until(points[j - 1].time);
        if duration >= duration_threshold_s && j - i >= 2 {
            let n = (j - i) as f64;
            let lat = points[i..j].iter().map(|p| p.location.lat()).sum::<f64>() / n;
            let lon = points[i..j].iter().map(|p| p.location.lon()).sum::<f64>() / n;
            stays.push(StayPoint {
                centroid: LatLon::new(lat.clamp(-90.0, 90.0), lon.clamp(-180.0, 180.0))
                    .expect("mean of valid coordinates is valid"),
                arrive: points[i].time,
                depart: points[j - 1].time,
                points: j - i,
            });
            i = j;
        } else {
            i += 1;
        }
    }
    stays
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pt(lat: f64, lon: f64, secs: i64) -> TrackPoint {
        TrackPoint {
            location: LatLon::new(lat, lon).unwrap(),
            time: Timestamp::from_unix_seconds(secs),
        }
    }

    #[test]
    fn empty_and_single_point_tracks() {
        assert!(detect_stay_points(&[], 100.0, 600).is_empty());
        assert!(detect_stay_points(&[pt(40.7, -74.0, 0)], 100.0, 600).is_empty());
    }

    #[test]
    fn moving_track_has_no_stays() {
        // 1 km hops every 5 minutes: never inside the 100 m threshold.
        let track: Vec<TrackPoint> = (0..10)
            .map(|i| pt(40.70 + f64::from(i) * 0.01, -74.0, i64::from(i) * 300))
            .collect();
        assert!(detect_stay_points(&track, 100.0, 600).is_empty());
    }

    #[test]
    fn two_separate_stays_detected() {
        let mut track = Vec::new();
        // 30 min at home.
        for i in 0..4 {
            track.push(pt(40.7000, -74.0000, i * 600));
        }
        // Transit fix far away.
        track.push(pt(40.7400, -73.9700, 4 * 600));
        // 30 min at work.
        for i in 5..9 {
            track.push(pt(40.7600, -73.9800, i * 600));
        }
        let stays = detect_stay_points(&track, 150.0, 1200);
        assert_eq!(stays.len(), 2);
        assert!(stays[0].centroid.haversine_m(track[0].location) < 50.0);
        assert!(stays[1].centroid.haversine_m(track[6].location) < 50.0);
        assert_eq!(stays[0].points, 4);
        assert!(stays[0].duration_s() == 1800);
    }

    #[test]
    fn short_dwell_is_not_a_stay() {
        // Only 10 minutes within the radius.
        let track = vec![
            pt(40.70, -74.00, 0),
            pt(40.70, -74.00, 600),
            pt(40.76, -73.98, 1200),
        ];
        assert!(detect_stay_points(&track, 150.0, 1200).is_empty());
    }

    #[test]
    fn unordered_input_is_sorted() {
        let track = vec![
            pt(40.70, -74.00, 1200),
            pt(40.70, -74.00, 0),
            pt(40.70, -74.00, 600),
        ];
        let stays = detect_stay_points(&track, 150.0, 1200);
        assert_eq!(stays.len(), 1);
        assert_eq!(stays[0].arrive, Timestamp::from_unix_seconds(0));
        assert_eq!(stays[0].depart, Timestamp::from_unix_seconds(1200));
    }

    proptest! {
        #[test]
        fn prop_stays_are_temporally_ordered_and_disjoint(
            raw in proptest::collection::vec(
                (40.5f64..40.9, -74.2f64..-73.7, 0i64..50_000), 0..40),
        ) {
            let track: Vec<TrackPoint> = raw
                .into_iter()
                .map(|(lat, lon, t)| pt(lat, lon, t))
                .collect();
            let stays = detect_stay_points(&track, 500.0, 1200);
            for s in &stays {
                prop_assert!(s.arrive <= s.depart);
                prop_assert!(s.duration_s() >= 1200);
                prop_assert!(s.points >= 2);
            }
            for w in stays.windows(2) {
                prop_assert!(w[0].depart <= w[1].arrive, "overlapping stays");
            }
        }
    }
}
