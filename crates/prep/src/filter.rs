//! Active-user filtering.
//!
//! "We selected users with less than 2 hours check-in records for more
//! than 50 days within the 3-month period" — i.e. keep users whose
//! check-ins, bucketed at the 2-hour slot granularity, cover more than
//! 50 distinct days of the study window. [`ActivityFilter`] implements
//! that rule with both knobs configurable.

use crate::{StudyWindow, TimeSlotting};
use crowdweb_dataset::{Dataset, UserId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The paper's activity filter: a user qualifies if they have check-in
/// records on **more than** `min_active_days` distinct days of the
/// window.
///
/// # Examples
///
/// ```
/// use crowdweb_prep::{ActivityFilter, StudyWindow};
/// use crowdweb_synth::SynthConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dataset = SynthConfig::small(1).generate()?;
/// let window = StudyWindow::full(&dataset)?;
/// let filter = ActivityFilter::new(20);
/// let active = filter.active_users(&dataset, &window);
/// for user in &active {
///     assert!(filter.active_day_count(&dataset, &window, *user) > 20);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityFilter {
    min_active_days: usize,
    slotting: TimeSlotting,
}

impl Default for ActivityFilter {
    /// The paper's threshold: more than 50 active days at 2-hour
    /// granularity.
    fn default() -> Self {
        ActivityFilter {
            min_active_days: 50,
            slotting: TimeSlotting::default(),
        }
    }
}

impl ActivityFilter {
    /// Creates a filter requiring more than `min_active_days` active
    /// days, at the default 2-hour granularity.
    pub fn new(min_active_days: usize) -> ActivityFilter {
        ActivityFilter {
            min_active_days,
            slotting: TimeSlotting::default(),
        }
    }

    /// Sets the slot granularity used when counting records.
    pub fn slotting(mut self, slotting: TimeSlotting) -> ActivityFilter {
        self.slotting = slotting;
        self
    }

    /// The configured threshold.
    pub fn min_active_days(&self) -> usize {
        self.min_active_days
    }

    /// Number of distinct window days on which `user` has at least one
    /// check-in record (at slot granularity — multiple records in one
    /// slot of one day still count the day once).
    pub fn active_day_count(&self, dataset: &Dataset, window: &StudyWindow, user: UserId) -> usize {
        let mut days: HashSet<i64> = HashSet::new();
        for c in dataset.checkins_of(user) {
            if window.contains_checkin(c) {
                days.insert(c.local_date().to_epoch_days());
            }
        }
        days.len()
    }

    /// Whether `user` passes the filter.
    pub fn is_active(&self, dataset: &Dataset, window: &StudyWindow, user: UserId) -> bool {
        self.active_day_count(dataset, window, user) > self.min_active_days
    }

    /// All users passing the filter, in ascending id order.
    pub fn active_users(&self, dataset: &Dataset, window: &StudyWindow) -> Vec<UserId> {
        dataset
            .user_ids()
            .filter(|&u| self.is_active(dataset, window, u))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_dataset::{CategoryId, CheckIn, CivilDate, Timestamp, Venue, VenueId};
    use crowdweb_geo::LatLon;

    /// A dataset where user `u` checks in on `days` consecutive days
    /// starting 2012-04-01, `per_day` times each day.
    fn dataset(users: &[(u32, u32, u32)]) -> Dataset {
        let mut b = Dataset::builder();
        b.add_venue(Venue::new(
            VenueId::new(0),
            "v",
            LatLon::new(40.7, -74.0).unwrap(),
            CategoryId::new(0),
        ));
        for &(user, days, per_day) in users {
            for d in 0..days {
                for k in 0..per_day {
                    let base = Timestamp::from_civil(2012, 4, 1, 10, 0, 0).unwrap();
                    let t = base.plus_seconds(i64::from(d) * 86_400 + i64::from(k) * 3600);
                    b.add_checkin(CheckIn::new(UserId::new(user), VenueId::new(0), t, 0));
                }
            }
        }
        b.build().unwrap()
    }

    fn window() -> StudyWindow {
        StudyWindow::new(
            CivilDate::new(2012, 4, 1).unwrap(),
            CivilDate::new(2012, 6, 30).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn threshold_is_strictly_greater() {
        let d = dataset(&[(1, 50, 1), (2, 51, 1)]);
        let f = ActivityFilter::new(50);
        assert!(!f.is_active(&d, &window(), UserId::new(1)));
        assert!(f.is_active(&d, &window(), UserId::new(2)));
        assert_eq!(f.active_users(&d, &window()), vec![UserId::new(2)]);
    }

    #[test]
    fn multiple_records_per_day_count_once() {
        let d = dataset(&[(1, 10, 5)]);
        let f = ActivityFilter::new(0);
        assert_eq!(f.active_day_count(&d, &window(), UserId::new(1)), 10);
    }

    #[test]
    fn records_outside_window_ignored() {
        let mut b = Dataset::builder();
        b.add_venue(Venue::new(
            VenueId::new(0),
            "v",
            LatLon::new(40.7, -74.0).unwrap(),
            CategoryId::new(0),
        ));
        // One check-in inside, one in July (outside).
        b.add_checkin(CheckIn::new(
            UserId::new(1),
            VenueId::new(0),
            Timestamp::from_civil(2012, 5, 1, 10, 0, 0).unwrap(),
            0,
        ));
        b.add_checkin(CheckIn::new(
            UserId::new(1),
            VenueId::new(0),
            Timestamp::from_civil(2012, 7, 1, 10, 0, 0).unwrap(),
            0,
        ));
        let d = b.build().unwrap();
        let f = ActivityFilter::new(0);
        assert_eq!(f.active_day_count(&d, &window(), UserId::new(1)), 1);
    }

    #[test]
    fn unknown_user_has_zero_days() {
        let d = dataset(&[(1, 5, 1)]);
        let f = ActivityFilter::default();
        assert_eq!(f.active_day_count(&d, &window(), UserId::new(99)), 0);
        assert!(!f.is_active(&d, &window(), UserId::new(99)));
    }

    #[test]
    fn default_matches_paper() {
        let f = ActivityFilter::default();
        assert_eq!(f.min_active_days(), 50);
    }
}
