//! Place abstraction — mapping venues to pattern labels.
//!
//! The paper's central trick: instead of mining over raw venues (where
//! "Thai Express" and "Seasoning Thai" are different items and the lunch
//! habit is invisible), venues are abstracted to *places*. Three levels
//! are supported:
//!
//! - [`LabelScheme::Venue`] — no abstraction, raw venue identity (the
//!   strawman that makes prediction accuracy poor).
//! - [`LabelScheme::Category`] — fine-grained category ("Thai
//!   Restaurant").
//! - [`LabelScheme::Kind`] — coarse kind ("Eatery"), the paper's default.

use crate::PrepError;
use crowdweb_dataset::{CheckIn, Dataset};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Abstraction level for place labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum LabelScheme {
    /// Raw venue identity (no abstraction).
    Venue,
    /// Fine-grained category name.
    Category,
    /// Coarse category kind — the paper's place abstraction.
    #[default]
    Kind,
}

impl fmt::Display for LabelScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LabelScheme::Venue => "venue",
            LabelScheme::Category => "category",
            LabelScheme::Kind => "kind",
        };
        f.write_str(s)
    }
}

/// A place label: a dense integer in the label space of one scheme.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PlaceLabel(pub u32);

impl fmt::Display for PlaceLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "place#{}", self.0)
    }
}

/// Maps check-ins to [`PlaceLabel`]s under a chosen [`LabelScheme`],
/// with reverse lookup of human-readable names.
#[derive(Debug, Clone, Copy)]
pub struct Labeler<'a> {
    dataset: &'a Dataset,
    scheme: LabelScheme,
}

impl<'a> Labeler<'a> {
    /// Creates a labeler over a dataset.
    pub fn new(dataset: &'a Dataset, scheme: LabelScheme) -> Labeler<'a> {
        Labeler { dataset, scheme }
    }

    /// The scheme in use.
    pub fn scheme(&self) -> LabelScheme {
        self.scheme
    }

    /// The label of a check-in.
    ///
    /// # Errors
    ///
    /// Returns [`PrepError::MissingVenue`] if the check-in references a
    /// venue absent from the dataset (cannot happen for datasets built
    /// through [`Dataset::builder`]).
    pub fn label_of(&self, checkin: &CheckIn) -> Result<PlaceLabel, PrepError> {
        let venue = self
            .dataset
            .venue(checkin.venue())
            .ok_or(PrepError::MissingVenue(checkin.venue()))?;
        Ok(match self.scheme {
            LabelScheme::Venue => PlaceLabel(venue.id().raw()),
            LabelScheme::Category => PlaceLabel(venue.category().raw()),
            LabelScheme::Kind => {
                let kind = self
                    .dataset
                    .taxonomy()
                    .kind_of(venue.category())
                    .unwrap_or(crowdweb_dataset::CategoryKind::Professional);
                PlaceLabel(kind.index() as u32)
            }
        })
    }

    /// Human-readable name of a label under this scheme, or `None` if
    /// the label is out of range.
    pub fn name_of(&self, label: PlaceLabel) -> Option<String> {
        match self.scheme {
            LabelScheme::Venue => self
                .dataset
                .venue(crowdweb_dataset::VenueId::new(label.0))
                .map(|v| v.name().to_owned()),
            LabelScheme::Category => self
                .dataset
                .taxonomy()
                .name_of(crowdweb_dataset::CategoryId::new(label.0))
                .map(str::to_owned),
            LabelScheme::Kind => crowdweb_dataset::CategoryKind::ALL
                .get(label.0 as usize)
                .map(|k| k.label().to_owned()),
        }
    }

    /// Size of the label space (number of distinct possible labels).
    pub fn label_space(&self) -> usize {
        match self.scheme {
            LabelScheme::Venue => self.dataset.venue_count(),
            LabelScheme::Category => self.dataset.taxonomy().len(),
            LabelScheme::Kind => crowdweb_dataset::CategoryKind::ALL.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_synth::SynthConfig;

    fn dataset() -> Dataset {
        SynthConfig::small(11).generate().unwrap()
    }

    #[test]
    fn kind_labels_are_dense_small_space() {
        let d = dataset();
        let labeler = Labeler::new(&d, LabelScheme::Kind);
        assert_eq!(labeler.label_space(), 9);
        for c in d.checkins().iter().take(200) {
            let l = labeler.label_of(c).unwrap();
            assert!((l.0 as usize) < 9);
            assert!(labeler.name_of(l).is_some());
        }
    }

    #[test]
    fn venue_scheme_is_identity() {
        let d = dataset();
        let labeler = Labeler::new(&d, LabelScheme::Venue);
        let c = &d.checkins()[0];
        assert_eq!(labeler.label_of(c).unwrap().0, c.venue().raw());
    }

    #[test]
    fn category_scheme_matches_taxonomy() {
        let d = dataset();
        let labeler = Labeler::new(&d, LabelScheme::Category);
        let c = &d.checkins()[0];
        let v = d.venue(c.venue()).unwrap();
        let l = labeler.label_of(c).unwrap();
        assert_eq!(l.0, v.category().raw());
        assert_eq!(
            labeler.name_of(l).as_deref(),
            d.taxonomy().name_of(v.category())
        );
    }

    #[test]
    fn coarser_schemes_have_smaller_spaces() {
        let d = dataset();
        let venue = Labeler::new(&d, LabelScheme::Venue).label_space();
        let cat = Labeler::new(&d, LabelScheme::Category).label_space();
        let kind = Labeler::new(&d, LabelScheme::Kind).label_space();
        assert!(kind < cat && cat < venue, "{kind} {cat} {venue}");
    }

    #[test]
    fn abstraction_merges_flexible_venues() {
        // Two different eatery venues must map to the same Kind label.
        let d = dataset();
        let kind_labeler = Labeler::new(&d, LabelScheme::Kind);
        let eatery_idx = crowdweb_dataset::CategoryKind::Eatery.index() as u32;
        let mut eatery_venues = std::collections::HashSet::new();
        for c in d.checkins() {
            if kind_labeler.label_of(c).unwrap().0 == eatery_idx {
                eatery_venues.insert(c.venue());
            }
        }
        assert!(
            eatery_venues.len() >= 2,
            "expected many venues sharing the Eatery label"
        );
    }

    #[test]
    fn out_of_range_names_are_none() {
        let d = dataset();
        let labeler = Labeler::new(&d, LabelScheme::Kind);
        assert!(labeler.name_of(PlaceLabel(99)).is_none());
    }

    #[test]
    fn scheme_display() {
        assert_eq!(LabelScheme::Kind.to_string(), "kind");
        assert_eq!(LabelScheme::default(), LabelScheme::Kind);
    }
}
