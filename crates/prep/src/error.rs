//! Error type for preprocessing.

use std::error::Error;
use std::fmt;

/// Error produced by the preprocessing pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PrepError {
    /// A configuration value was out of range.
    InvalidConfig(&'static str),
    /// The dataset is empty, so no window can be chosen.
    EmptyDataset,
    /// A check-in referenced a venue missing from the dataset (dataset
    /// invariants were violated).
    MissingVenue(crowdweb_dataset::VenueId),
}

impl fmt::Display for PrepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrepError::InvalidConfig(what) => write!(f, "invalid preprocessing config: {what}"),
            PrepError::EmptyDataset => write!(f, "dataset has no check-ins"),
            PrepError::MissingVenue(v) => write!(f, "check-in references missing venue {v}"),
        }
    }
}

impl Error for PrepError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PrepError>();
    }

    #[test]
    fn display_nonempty() {
        assert!(!PrepError::EmptyDataset.to_string().is_empty());
    }
}
