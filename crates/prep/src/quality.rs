//! Sequence-database quality statistics.
//!
//! Before mining, it pays to know what the preprocessing produced: how
//! long daily sequences are, how the label alphabet is covered, and how
//! much signal the activity filter retained. These statistics validate
//! the synthetic data against the real data's character and surface
//! pathological configurations (e.g. a slotting so coarse every day
//! collapses to one item).

use crate::{PlaceLabel, SequenceDatabase};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Quality statistics over a [`SequenceDatabase`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeqDbQuality {
    /// Number of users.
    pub users: usize,
    /// Total daily sequences.
    pub sequences: usize,
    /// Total items across all sequences.
    pub items: usize,
    /// Mean items per daily sequence (0 when empty).
    pub mean_sequence_length: f64,
    /// Longest daily sequence.
    pub max_sequence_length: usize,
    /// Mean daily sequences per user (0 when empty).
    pub mean_days_per_user: f64,
    /// Item count per place label.
    pub label_counts: BTreeMap<PlaceLabel, usize>,
}

impl SeqDbQuality {
    /// Computes the statistics.
    pub fn compute(db: &SequenceDatabase) -> SeqDbQuality {
        let users = db.user_count();
        let sequences = db.total_sequences();
        let items = db.total_items();
        // Count per dense symbol first (one cache-friendly array pass),
        // then aggregate the tiny symbol alphabet by label.
        let mut symbol_counts = vec![0usize; db.symbols().len()];
        let mut max_len = 0usize;
        for view in db.views() {
            for day in view.days() {
                max_len = max_len.max(day.len());
                for &sym in day {
                    symbol_counts[sym.index()] += 1;
                }
            }
        }
        let mut label_counts: BTreeMap<PlaceLabel, usize> = BTreeMap::new();
        for (sym, item) in db.symbols().iter() {
            let n = symbol_counts[sym.index()];
            if n > 0 {
                *label_counts.entry(item.label).or_insert(0) += n;
            }
        }
        SeqDbQuality {
            users,
            sequences,
            items,
            mean_sequence_length: if sequences == 0 {
                0.0
            } else {
                items as f64 / sequences as f64
            },
            max_sequence_length: max_len,
            mean_days_per_user: if users == 0 {
                0.0
            } else {
                sequences as f64 / users as f64
            },
            label_counts,
        }
    }

    /// Number of distinct labels actually used.
    pub fn distinct_labels(&self) -> usize {
        self.label_counts.len()
    }

    /// The most frequent label and its item count, if any.
    pub fn dominant_label(&self) -> Option<(PlaceLabel, usize)> {
        self.label_counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(&l, &c)| (l, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeqItem, TimeSlot, UserSequences};
    use crowdweb_dataset::UserId;

    fn item(slot: u8, label: u32) -> SeqItem {
        SeqItem {
            slot: TimeSlot(slot),
            label: PlaceLabel(label),
        }
    }

    fn db() -> SequenceDatabase {
        vec![
            UserSequences {
                user: UserId::new(1),
                sequences: vec![vec![item(3, 0), item(6, 2), item(11, 0)], vec![item(3, 0)]],
            },
            UserSequences {
                user: UserId::new(2),
                sequences: vec![vec![item(4, 1), item(6, 2)]],
            },
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn counts_are_exact() {
        let q = SeqDbQuality::compute(&db());
        assert_eq!(q.users, 2);
        assert_eq!(q.sequences, 3);
        assert_eq!(q.items, 6);
        assert_eq!(q.mean_sequence_length, 2.0);
        assert_eq!(q.max_sequence_length, 3);
        assert_eq!(q.mean_days_per_user, 1.5);
    }

    #[test]
    fn label_accounting() {
        let q = SeqDbQuality::compute(&db());
        assert_eq!(q.distinct_labels(), 3);
        assert_eq!(q.label_counts[&PlaceLabel(0)], 3);
        assert_eq!(q.label_counts[&PlaceLabel(2)], 2);
        assert_eq!(q.dominant_label(), Some((PlaceLabel(0), 3)));
    }

    #[test]
    fn empty_database() {
        let q = SeqDbQuality::compute(&SequenceDatabase::default());
        assert_eq!(q.users, 0);
        assert_eq!(q.mean_sequence_length, 0.0);
        assert_eq!(q.mean_days_per_user, 0.0);
        assert_eq!(q.dominant_label(), None);
    }

    #[test]
    fn real_pipeline_quality_is_sane() {
        use crate::Preprocessor;
        let d = crowdweb_synth::SynthConfig::small(19).generate().unwrap();
        let prepared = Preprocessor::new().min_active_days(20).prepare(&d).unwrap();
        let q = SeqDbQuality::compute(prepared.seqdb());
        assert!(q.users > 0);
        // Daily sequences average at least one item, and no day can
        // exceed the number of slots x labels.
        assert!(q.mean_sequence_length >= 1.0);
        assert!(q.max_sequence_length <= 12 * 9);
        // Kind labels: at most 9 distinct.
        assert!(q.distinct_labels() <= 9);
    }
}
