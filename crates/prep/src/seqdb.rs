//! Sequence-database construction and columnar storage.
//!
//! Pattern mining consumes, per user, one *sequence per local day*: the
//! time-ordered list of `(time slot, place label)` items derived from
//! that day's check-ins. Consecutive duplicate items within a day are
//! collapsed (staying at work all afternoon is one item, not five).
//!
//! # Columnar layout
//!
//! The database interns every distinct [`SeqItem`] into a
//! [`SymbolTable`] and stores all sequences as one flat [`Symbol`]
//! buffer plus two offset columns (sequence bounds, user bounds). The
//! miners walk `&[Symbol]` slices — dense `u32` comparisons instead of
//! struct comparisons, and zero per-sequence allocations. Items are
//! interned in **sorted order**, so symbol order agrees with item order
//! and decoded pattern sets keep the miners' `(length, items)` sort.

use crate::{LabelScheme, Labeler, PlaceLabel, PrepError, StudyWindow, TimeSlot, TimeSlotting};
use crowdweb_dataset::{Dataset, UserId};
pub use crowdweb_exec::{Symbol, SymbolTable};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// One mined item: a place label anchored at a time slot. This is the
/// item alphabet of the paper's *modified* PrefixSpan — two visits match
/// only if both the slot and the label agree.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SeqItem {
    /// Time-of-day slot of the visit.
    pub slot: TimeSlot,
    /// Abstracted place label.
    pub label: PlaceLabel,
}

impl fmt::Display for SeqItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.label, self.slot)
    }
}

/// All daily sequences of one user, in owned row form — the
/// construction and decode format; storage is columnar
/// ([`SequenceDatabase`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserSequences {
    /// The user.
    pub user: UserId,
    /// One entry per active day (days with no check-ins are absent),
    /// in date order; each is the day's time-ordered item sequence.
    pub sequences: Vec<Vec<SeqItem>>,
}

impl UserSequences {
    /// Number of daily sequences.
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// Whether the user has no sequences.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }
}

/// The sequence database: per-user daily sequences for every user that
/// passed the activity filter, stored columnar (see the [module
/// docs](self)).
///
/// # Examples
///
/// Built through [`crate::Preprocessor::prepare`]; see the crate-level
/// example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequenceDatabase {
    /// Distinct items in sorted order.
    symbols: SymbolTable<SeqItem>,
    /// Every sequence's symbols, back to back.
    items: Vec<Symbol>,
    /// Prefix offsets into `items`: sequence `s` spans
    /// `items[seq_offsets[s]..seq_offsets[s + 1]]`.
    seq_offsets: Vec<u32>,
    /// Prefix offsets into sequence space: user `u` owns sequences
    /// `user_offsets[u]..user_offsets[u + 1]`.
    user_offsets: Vec<u32>,
    /// Users, in the order they were supplied.
    users: Vec<UserId>,
}

impl SequenceDatabase {
    /// Builds the database for `users` over `dataset`, restricted to
    /// `window`, at the given slotting and labeling.
    ///
    /// # Errors
    ///
    /// Propagates [`PrepError::MissingVenue`] from labeling (impossible
    /// for datasets built via [`Dataset::builder`]).
    pub fn build(
        dataset: &Dataset,
        users: &[UserId],
        window: &StudyWindow,
        slotting: TimeSlotting,
        scheme: LabelScheme,
    ) -> Result<SequenceDatabase, PrepError> {
        let labeler = Labeler::new(dataset, scheme);
        let mut rows = Vec::with_capacity(users.len());
        for &user in users {
            rows.push(build_user_row(dataset, user, window, slotting, &labeler)?);
        }
        Ok(SequenceDatabase::from_users(rows))
    }

    /// Encodes owned per-user rows into the columnar layout. Items are
    /// interned in sorted order so symbol comparisons agree with item
    /// comparisons.
    pub fn from_users(rows: Vec<UserSequences>) -> SequenceDatabase {
        let distinct: BTreeSet<SeqItem> = rows
            .iter()
            .flat_map(|u| u.sequences.iter().flatten().copied())
            .collect();
        let symbols = SymbolTable::from_sorted_items(distinct.into_iter().collect());

        let total_items: usize = rows
            .iter()
            .map(|u| u.sequences.iter().map(Vec::len).sum::<usize>())
            .sum();
        let total_seqs: usize = rows.iter().map(UserSequences::len).sum();
        let mut items = Vec::with_capacity(total_items);
        let mut seq_offsets = Vec::with_capacity(total_seqs + 1);
        let mut user_offsets = Vec::with_capacity(rows.len() + 1);
        let mut users = Vec::with_capacity(rows.len());
        seq_offsets.push(0u32);
        user_offsets.push(0u32);
        for row in &rows {
            for day in &row.sequences {
                for item in day {
                    items.push(symbols.lookup(item).expect("interned above"));
                }
                seq_offsets.push(u32::try_from(items.len()).expect("more than u32::MAX items"));
            }
            user_offsets
                .push(u32::try_from(seq_offsets.len() - 1).expect("more than u32::MAX sequences"));
            users.push(row.user);
        }
        SequenceDatabase {
            symbols,
            items,
            seq_offsets,
            user_offsets,
            users,
        }
    }

    /// Number of users in the database.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// The interner mapping [`Symbol`]s to [`SeqItem`]s.
    pub fn symbols(&self) -> &SymbolTable<SeqItem> {
        &self.symbols
    }

    /// Users, in the order they were supplied.
    pub fn user_ids(&self) -> &[UserId] {
        &self.users
    }

    /// Zero-copy per-user views, in user order.
    pub fn views(&self) -> impl Iterator<Item = UserView<'_>> {
        (0..self.users.len()).map(move |index| UserView { db: self, index })
    }

    /// The view of the `index`-th user.
    ///
    /// # Panics
    /// If `index >= user_count()`.
    pub fn view(&self, index: usize) -> UserView<'_> {
        assert!(index < self.users.len(), "user index out of range");
        UserView { db: self, index }
    }

    /// The view of one user, if present.
    pub fn view_of(&self, user: UserId) -> Option<UserView<'_>> {
        self.users
            .iter()
            .position(|&u| u == user)
            .map(|index| UserView { db: self, index })
    }

    /// Decodes one user's sequences back to owned row form, if present.
    pub fn decode_user(&self, user: UserId) -> Option<UserSequences> {
        self.view_of(user).map(|v| UserSequences {
            user,
            sequences: v.decode(),
        })
    }

    /// Every daily sequence across all users, pooled in user order —
    /// the input for population-level mining.
    pub fn day_slices(&self) -> Vec<&[Symbol]> {
        (0..self.total_sequences())
            .map(|s| self.seq_slice(s))
            .collect()
    }

    /// Total number of daily sequences across all users.
    pub fn total_sequences(&self) -> usize {
        self.seq_offsets.len() - 1
    }

    /// Total number of items across all sequences.
    pub fn total_items(&self) -> usize {
        self.items.len()
    }

    fn seq_slice(&self, seq: usize) -> &[Symbol] {
        let start = self.seq_offsets[seq] as usize;
        let end = self.seq_offsets[seq + 1] as usize;
        &self.items[start..end]
    }
}

/// Builds one user's daily sequences: window filter, slotting, labeling,
/// per-local-day split, consecutive-duplicate collapse. Shared by the
/// full [`SequenceDatabase::build`] and the incremental re-prepare path,
/// which rebuilds rows only for users whose check-ins changed.
pub(crate) fn build_user_row(
    dataset: &Dataset,
    user: UserId,
    window: &StudyWindow,
    slotting: TimeSlotting,
    labeler: &Labeler<'_>,
) -> Result<UserSequences, PrepError> {
    let mut sequences: Vec<Vec<SeqItem>> = Vec::new();
    let mut current_day: Option<i64> = None;
    for c in dataset.checkins_of(user) {
        if !window.contains_checkin(c) {
            continue;
        }
        let local = c.local_time();
        let day = local.date.to_epoch_days();
        let item = SeqItem {
            slot: slotting.slot_of(local),
            label: labeler.label_of(c)?,
        };
        if current_day != Some(day) {
            sequences.push(Vec::new());
            current_day = Some(day);
        }
        let seq = sequences.last_mut().expect("pushed above");
        if seq.last() != Some(&item) {
            seq.push(item);
        }
    }
    Ok(UserSequences { user, sequences })
}

/// The empty database still carries the leading offset sentinels.
impl Default for SequenceDatabase {
    fn default() -> SequenceDatabase {
        SequenceDatabase::from_users(Vec::new())
    }
}

impl FromIterator<UserSequences> for SequenceDatabase {
    fn from_iter<I: IntoIterator<Item = UserSequences>>(iter: I) -> Self {
        SequenceDatabase::from_users(iter.into_iter().collect())
    }
}

/// A zero-copy window onto one user's sequences in the columnar store.
#[derive(Debug, Clone, Copy)]
pub struct UserView<'a> {
    db: &'a SequenceDatabase,
    index: usize,
}

impl<'a> UserView<'a> {
    /// The user.
    pub fn user(&self) -> UserId {
        self.db.users[self.index]
    }

    /// The database's symbol table, for resolving day slices.
    pub fn symbols(&self) -> &'a SymbolTable<SeqItem> {
        self.db.symbols()
    }

    /// Number of daily sequences.
    pub fn day_count(&self) -> usize {
        (self.db.user_offsets[self.index + 1] - self.db.user_offsets[self.index]) as usize
    }

    /// Whether the user has no sequences.
    pub fn is_empty(&self) -> bool {
        self.day_count() == 0
    }

    /// The `i`-th daily sequence as a symbol slice.
    ///
    /// # Panics
    /// If `i >= day_count()`.
    pub fn day(&self, i: usize) -> &'a [Symbol] {
        assert!(i < self.day_count(), "day index out of range");
        self.db
            .seq_slice(self.db.user_offsets[self.index] as usize + i)
    }

    /// All daily sequences as symbol slices, in date order.
    pub fn days(&self) -> impl Iterator<Item = &'a [Symbol]> {
        let db = self.db;
        let start = db.user_offsets[self.index] as usize;
        let end = db.user_offsets[self.index + 1] as usize;
        (start..end).map(move |s| db.seq_slice(s))
    }

    /// Decodes the user's sequences back to owned items.
    pub fn decode(&self) -> Vec<Vec<SeqItem>> {
        let table = self.db.symbols();
        self.days()
            .map(|day| day.iter().map(|&s| *table.resolve(s)).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_dataset::{CategoryId, CheckIn, CivilDate, Timestamp, Venue, VenueId};
    use crowdweb_geo::LatLon;
    use proptest::prelude::*;

    /// Dataset with one user visiting venue sequences on specific days.
    /// Each tuple is (day_of_april, hour, venue).
    fn dataset(visits: &[(u8, u8, u32)]) -> Dataset {
        let mut b = Dataset::builder();
        for v in 0..3u32 {
            b.add_venue(Venue::new(
                VenueId::new(v),
                &format!("v{v}"),
                LatLon::new(40.7, -74.0).unwrap(),
                CategoryId::new(v), // distinct fine categories
            ));
        }
        for &(day, hour, venue) in visits {
            b.add_checkin(CheckIn::new(
                UserId::new(1),
                VenueId::new(venue),
                Timestamp::from_civil(2012, 4, day, hour, 0, 0).unwrap(),
                0,
            ));
        }
        b.build().unwrap()
    }

    fn window() -> StudyWindow {
        StudyWindow::new(
            CivilDate::new(2012, 4, 1).unwrap(),
            CivilDate::new(2012, 4, 30).unwrap(),
        )
        .unwrap()
    }

    fn build(d: &Dataset) -> SequenceDatabase {
        SequenceDatabase::build(
            d,
            &[UserId::new(1)],
            &window(),
            TimeSlotting::default(),
            LabelScheme::Category,
        )
        .unwrap()
    }

    #[test]
    fn one_sequence_per_active_day() {
        let d = dataset(&[(1, 8, 0), (1, 12, 1), (3, 9, 2)]);
        let db = build(&d);
        let v = db.view_of(UserId::new(1)).unwrap();
        assert_eq!(v.day_count(), 2); // days 1 and 3; day 2 absent
        assert_eq!(v.day(0).len(), 2);
        assert_eq!(v.day(1).len(), 1);
        assert_eq!(db.total_sequences(), 2);
        assert_eq!(db.total_items(), 3);
    }

    #[test]
    fn items_are_time_ordered_with_slots() {
        let d = dataset(&[(1, 12, 1), (1, 8, 0)]); // inserted out of order
        let db = build(&d);
        let seq = &db.decode_user(UserId::new(1)).unwrap().sequences[0];
        assert_eq!(seq[0].slot, TimeSlot(4)); // 08:00-10:00
        assert_eq!(seq[1].slot, TimeSlot(6)); // 12:00-14:00
        assert_eq!(seq[0].label, PlaceLabel(0));
        assert_eq!(seq[1].label, PlaceLabel(1));
    }

    #[test]
    fn consecutive_duplicates_collapse() {
        // Same venue, same slot, three check-ins.
        let d = dataset(&[(1, 8, 0), (1, 8, 0), (1, 9, 0)]);
        let db = build(&d);
        let seq = db.view_of(UserId::new(1)).unwrap().day(0);
        assert_eq!(seq.len(), 1, "{seq:?}");
    }

    #[test]
    fn nonconsecutive_repeats_survive() {
        // Home - work - home: the two home visits are distinct items
        // (different slots).
        let d = dataset(&[(1, 8, 0), (1, 12, 1), (1, 20, 0)]);
        let db = build(&d);
        let seq = db.view_of(UserId::new(1)).unwrap().day(0);
        assert_eq!(seq.len(), 3);
    }

    #[test]
    fn window_excludes_outside_days() {
        let mut b = Dataset::builder();
        b.add_venue(Venue::new(
            VenueId::new(0),
            "v",
            LatLon::new(40.7, -74.0).unwrap(),
            CategoryId::new(0),
        ));
        for month in [4u8, 7] {
            b.add_checkin(CheckIn::new(
                UserId::new(1),
                VenueId::new(0),
                Timestamp::from_civil(2012, month, 5, 10, 0, 0).unwrap(),
                0,
            ));
        }
        let d = b.build().unwrap();
        let db = build(&d);
        assert_eq!(db.total_sequences(), 1);
    }

    #[test]
    fn unknown_user_yields_empty_sequences() {
        let d = dataset(&[(1, 8, 0)]);
        let db = SequenceDatabase::build(
            &d,
            &[UserId::new(42)],
            &window(),
            TimeSlotting::default(),
            LabelScheme::Category,
        )
        .unwrap();
        assert_eq!(db.user_count(), 1);
        assert!(db.view(0).is_empty());
        assert!(db.view_of(UserId::new(1)).is_none());
        assert!(db.decode_user(UserId::new(1)).is_none());
    }

    #[test]
    fn from_iterator_collects() {
        let db: SequenceDatabase = vec![UserSequences {
            user: UserId::new(1),
            sequences: vec![vec![]],
        }]
        .into_iter()
        .collect();
        assert_eq!(db.user_count(), 1);
        assert_eq!(db.total_sequences(), 1);
        assert_eq!(db.total_items(), 0);
    }

    #[test]
    fn seq_item_display() {
        let item = SeqItem {
            slot: TimeSlot(6),
            label: PlaceLabel(2),
        };
        assert_eq!(item.to_string(), "place#2@slot#6");
    }

    #[test]
    fn symbol_order_agrees_with_item_order() {
        let d = dataset(&[(1, 8, 0), (1, 12, 1), (2, 9, 2)]);
        let db = build(&d);
        let items = db.symbols().items();
        assert!(items.windows(2).all(|w| w[0] < w[1]), "{items:?}");
    }

    #[test]
    fn day_slices_pool_all_users_in_order() {
        let rows = vec![
            UserSequences {
                user: UserId::new(1),
                sequences: vec![vec![SeqItem::default()], vec![]],
            },
            UserSequences {
                user: UserId::new(2),
                sequences: vec![vec![SeqItem::default(), SeqItem::default()]],
            },
        ];
        let db = SequenceDatabase::from_users(rows);
        let lens: Vec<usize> = db.day_slices().iter().map(|s| s.len()).collect();
        // Consecutive-duplicate collapse is a build() concern, not
        // from_users(): the repeated default item survives.
        assert_eq!(lens, vec![1, 0, 2]);
    }

    fn arb_rows() -> impl Strategy<Value = Vec<UserSequences>> {
        proptest::collection::vec(
            proptest::collection::vec(proptest::collection::vec((0u8..12, 0u32..6), 0..7), 0..5),
            0..6,
        )
        .prop_map(|users| {
            users
                .into_iter()
                .enumerate()
                .map(|(i, days)| UserSequences {
                    user: UserId::new(i as u32),
                    sequences: days
                        .into_iter()
                        .map(|day| {
                            day.into_iter()
                                .map(|(slot, label)| SeqItem {
                                    slot: TimeSlot(slot),
                                    label: PlaceLabel(label),
                                })
                                .collect()
                        })
                        .collect(),
                })
                .collect()
        })
    }

    proptest! {
        /// The columnar encoding is lossless: decoding every view
        /// reproduces the original rows exactly.
        #[test]
        fn prop_columnar_round_trips(rows in arb_rows()) {
            let db = SequenceDatabase::from_users(rows.clone());
            prop_assert_eq!(db.user_count(), rows.len());
            for (view, row) in db.views().zip(&rows) {
                prop_assert_eq!(view.user(), row.user);
                prop_assert_eq!(view.day_count(), row.sequences.len());
                prop_assert_eq!(&view.decode(), &row.sequences);
            }
            // And the serde round trip preserves the whole database.
            let json = serde_json::to_string(&db).unwrap();
            let back: SequenceDatabase = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(back, db);
        }
    }
}
