//! Sequence-database construction.
//!
//! Pattern mining consumes, per user, one *sequence per local day*: the
//! time-ordered list of `(time slot, place label)` items derived from
//! that day's check-ins. Consecutive duplicate items within a day are
//! collapsed (staying at work all afternoon is one item, not five).

use crate::{LabelScheme, Labeler, PlaceLabel, PrepError, StudyWindow, TimeSlot, TimeSlotting};
use crowdweb_dataset::{Dataset, UserId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One mined item: a place label anchored at a time slot. This is the
/// item alphabet of the paper's *modified* PrefixSpan — two visits match
/// only if both the slot and the label agree.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SeqItem {
    /// Time-of-day slot of the visit.
    pub slot: TimeSlot,
    /// Abstracted place label.
    pub label: PlaceLabel,
}

impl fmt::Display for SeqItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.label, self.slot)
    }
}

/// All daily sequences of one user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserSequences {
    /// The user.
    pub user: UserId,
    /// One entry per active day (days with no check-ins are absent),
    /// in date order; each is the day's time-ordered item sequence.
    pub sequences: Vec<Vec<SeqItem>>,
}

impl UserSequences {
    /// Number of daily sequences.
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// Whether the user has no sequences.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }
}

/// The sequence database: per-user daily sequences for every user that
/// passed the activity filter.
///
/// # Examples
///
/// Built through [`crate::Preprocessor::prepare`]; see the crate-level
/// example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SequenceDatabase {
    users: Vec<UserSequences>,
}

impl SequenceDatabase {
    /// Builds the database for `users` over `dataset`, restricted to
    /// `window`, at the given slotting and labeling.
    ///
    /// # Errors
    ///
    /// Propagates [`PrepError::MissingVenue`] from labeling (impossible
    /// for datasets built via [`Dataset::builder`]).
    pub fn build(
        dataset: &Dataset,
        users: &[UserId],
        window: &StudyWindow,
        slotting: TimeSlotting,
        scheme: LabelScheme,
    ) -> Result<SequenceDatabase, PrepError> {
        let labeler = Labeler::new(dataset, scheme);
        let mut out = Vec::with_capacity(users.len());
        for &user in users {
            let mut sequences: Vec<Vec<SeqItem>> = Vec::new();
            let mut current_day: Option<i64> = None;
            for c in dataset.checkins_of(user) {
                if !window.contains_checkin(c) {
                    continue;
                }
                let local = c.local_time();
                let day = local.date.to_epoch_days();
                let item = SeqItem {
                    slot: slotting.slot_of(local),
                    label: labeler.label_of(c)?,
                };
                if current_day != Some(day) {
                    sequences.push(Vec::new());
                    current_day = Some(day);
                }
                let seq = sequences.last_mut().expect("pushed above");
                if seq.last() != Some(&item) {
                    seq.push(item);
                }
            }
            out.push(UserSequences { user, sequences });
        }
        Ok(SequenceDatabase { users: out })
    }

    /// Number of users in the database.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Per-user sequence sets, in the order users were supplied.
    pub fn users(&self) -> &[UserSequences] {
        &self.users
    }

    /// The sequences of one user, if present.
    pub fn sequences_of(&self, user: UserId) -> Option<&UserSequences> {
        self.users.iter().find(|u| u.user == user)
    }

    /// Total number of daily sequences across all users.
    pub fn total_sequences(&self) -> usize {
        self.users.iter().map(UserSequences::len).sum()
    }
}

impl FromIterator<UserSequences> for SequenceDatabase {
    fn from_iter<I: IntoIterator<Item = UserSequences>>(iter: I) -> Self {
        SequenceDatabase {
            users: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_dataset::{CategoryId, CheckIn, CivilDate, Timestamp, Venue, VenueId};
    use crowdweb_geo::LatLon;

    /// Dataset with one user visiting venue sequences on specific days.
    /// Each tuple is (day_of_april, hour, venue).
    fn dataset(visits: &[(u8, u8, u32)]) -> Dataset {
        let mut b = Dataset::builder();
        for v in 0..3u32 {
            b.add_venue(Venue::new(
                VenueId::new(v),
                &format!("v{v}"),
                LatLon::new(40.7, -74.0).unwrap(),
                CategoryId::new(v), // distinct fine categories
            ));
        }
        for &(day, hour, venue) in visits {
            b.add_checkin(CheckIn::new(
                UserId::new(1),
                VenueId::new(venue),
                Timestamp::from_civil(2012, 4, day, hour, 0, 0).unwrap(),
                0,
            ));
        }
        b.build().unwrap()
    }

    fn window() -> StudyWindow {
        StudyWindow::new(
            CivilDate::new(2012, 4, 1).unwrap(),
            CivilDate::new(2012, 4, 30).unwrap(),
        )
        .unwrap()
    }

    fn build(d: &Dataset) -> SequenceDatabase {
        SequenceDatabase::build(
            d,
            &[UserId::new(1)],
            &window(),
            TimeSlotting::default(),
            LabelScheme::Category,
        )
        .unwrap()
    }

    #[test]
    fn one_sequence_per_active_day() {
        let d = dataset(&[(1, 8, 0), (1, 12, 1), (3, 9, 2)]);
        let db = build(&d);
        let u = db.sequences_of(UserId::new(1)).unwrap();
        assert_eq!(u.len(), 2); // days 1 and 3; day 2 absent
        assert_eq!(u.sequences[0].len(), 2);
        assert_eq!(u.sequences[1].len(), 1);
        assert_eq!(db.total_sequences(), 2);
    }

    #[test]
    fn items_are_time_ordered_with_slots() {
        let d = dataset(&[(1, 12, 1), (1, 8, 0)]); // inserted out of order
        let db = build(&d);
        let seq = &db.sequences_of(UserId::new(1)).unwrap().sequences[0];
        assert_eq!(seq[0].slot, TimeSlot(4)); // 08:00-10:00
        assert_eq!(seq[1].slot, TimeSlot(6)); // 12:00-14:00
        assert_eq!(seq[0].label, PlaceLabel(0));
        assert_eq!(seq[1].label, PlaceLabel(1));
    }

    #[test]
    fn consecutive_duplicates_collapse() {
        // Same venue, same slot, three check-ins.
        let d = dataset(&[(1, 8, 0), (1, 8, 0), (1, 9, 0)]);
        let db = build(&d);
        let seq = &db.sequences_of(UserId::new(1)).unwrap().sequences[0];
        assert_eq!(seq.len(), 1, "{seq:?}");
    }

    #[test]
    fn nonconsecutive_repeats_survive() {
        // Home - work - home: the two home visits are distinct items
        // (different slots).
        let d = dataset(&[(1, 8, 0), (1, 12, 1), (1, 20, 0)]);
        let db = build(&d);
        let seq = &db.sequences_of(UserId::new(1)).unwrap().sequences[0];
        assert_eq!(seq.len(), 3);
    }

    #[test]
    fn window_excludes_outside_days() {
        let mut b = Dataset::builder();
        b.add_venue(Venue::new(
            VenueId::new(0),
            "v",
            LatLon::new(40.7, -74.0).unwrap(),
            CategoryId::new(0),
        ));
        for month in [4u8, 7] {
            b.add_checkin(CheckIn::new(
                UserId::new(1),
                VenueId::new(0),
                Timestamp::from_civil(2012, month, 5, 10, 0, 0).unwrap(),
                0,
            ));
        }
        let d = b.build().unwrap();
        let db = build(&d);
        assert_eq!(db.total_sequences(), 1);
    }

    #[test]
    fn unknown_user_yields_empty_sequences() {
        let d = dataset(&[(1, 8, 0)]);
        let db = SequenceDatabase::build(
            &d,
            &[UserId::new(42)],
            &window(),
            TimeSlotting::default(),
            LabelScheme::Category,
        )
        .unwrap();
        assert_eq!(db.user_count(), 1);
        assert!(db.users()[0].is_empty());
        assert!(db.sequences_of(UserId::new(1)).is_none());
    }

    #[test]
    fn from_iterator_collects() {
        let db: SequenceDatabase = vec![UserSequences {
            user: UserId::new(1),
            sequences: vec![vec![]],
        }]
        .into_iter()
        .collect();
        assert_eq!(db.user_count(), 1);
    }

    #[test]
    fn seq_item_display() {
        let item = SeqItem {
            slot: TimeSlot(6),
            label: PlaceLabel(2),
        };
        assert_eq!(item.to_string(), "place#2@slot#6");
    }
}
