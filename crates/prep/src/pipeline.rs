//! The one-call preprocessing pipeline.

use crate::seqdb::build_user_row;
use crate::{
    ActivityFilter, LabelScheme, Labeler, PrepError, SequenceDatabase, StudyWindow, TimeSlotting,
};
use crowdweb_dataset::{Dataset, UserId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// How the study window is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum WindowChoice {
    /// The richest consecutive three months (the paper's choice).
    #[default]
    RichestThreeMonths,
    /// The richest consecutive `n` months.
    RichestMonths(usize),
    /// The full dataset span.
    Full,
}

/// Configurable preprocessing pipeline (C-BUILDER): window selection →
/// activity filtering → discretization → labeling → sequence database.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Preprocessor {
    window: WindowChoice,
    min_active_days: usize,
    slotting: TimeSlotting,
    scheme: LabelScheme,
}

impl Default for Preprocessor {
    /// The paper's configuration: richest 3 months, >50 active days,
    /// 2-hour slots, coarse-kind labels.
    fn default() -> Self {
        Preprocessor {
            window: WindowChoice::RichestThreeMonths,
            min_active_days: 50,
            slotting: TimeSlotting::default(),
            scheme: LabelScheme::Kind,
        }
    }
}

impl Preprocessor {
    /// Creates the paper-default preprocessor.
    pub fn new() -> Preprocessor {
        Preprocessor::default()
    }

    /// Sets how the study window is chosen.
    pub fn window(mut self, choice: WindowChoice) -> Preprocessor {
        self.window = choice;
        self
    }

    /// Sets the active-day threshold (strictly-greater-than).
    pub fn min_active_days(mut self, days: usize) -> Preprocessor {
        self.min_active_days = days;
        self
    }

    /// The configured active-day threshold.
    pub fn configured_min_active_days(&self) -> usize {
        self.min_active_days
    }

    /// Sets the time-slot granularity.
    pub fn slotting(mut self, slotting: TimeSlotting) -> Preprocessor {
        self.slotting = slotting;
        self
    }

    /// Sets the place-label abstraction level.
    pub fn label_scheme(mut self, scheme: LabelScheme) -> Preprocessor {
        self.scheme = scheme;
        self
    }

    /// Runs the pipeline over a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`PrepError::EmptyDataset`] when the dataset has no
    /// check-ins, plus any window/labeling errors.
    pub fn prepare(&self, dataset: &Dataset) -> Result<Prepared, PrepError> {
        let window = match self.window {
            WindowChoice::RichestThreeMonths => StudyWindow::richest_months(dataset, 3)?,
            WindowChoice::RichestMonths(n) => StudyWindow::richest_months(dataset, n)?,
            WindowChoice::Full => StudyWindow::full(dataset)?,
        };
        let filter = ActivityFilter::new(self.min_active_days).slotting(self.slotting);
        let users = filter.active_users(dataset, &window);
        let seqdb = SequenceDatabase::build(dataset, &users, &window, self.slotting, self.scheme)?;
        Ok(Prepared {
            window,
            users,
            slotting: self.slotting,
            scheme: self.scheme,
            seqdb,
        })
    }
    /// Incrementally re-prepares after appending check-ins for the
    /// `dirty` users to `dataset` (which must be the *merged* dataset —
    /// old plus new check-ins).
    ///
    /// Recomputes the study window on the merged dataset; if it moved —
    /// or the slotting/scheme no longer match `previous` — the
    /// incremental shortcut is unsound and [`PrepUpdate::FullRebuild`]
    /// is returned. Otherwise only dirty users are re-filtered and
    /// re-sequenced; every other user's rows are decoded from
    /// `previous` unchanged. Because check-ins are append-only, a
    /// previously active user can never fall below the activity
    /// threshold under the same window, so the result is byte-identical
    /// to [`Preprocessor::prepare`] on the merged dataset.
    ///
    /// # Errors
    ///
    /// Propagates window-selection and labeling errors.
    pub fn update(
        &self,
        previous: &Prepared,
        dataset: &Dataset,
        dirty: &BTreeSet<UserId>,
    ) -> Result<PrepUpdate, PrepError> {
        let window = match self.window {
            WindowChoice::RichestThreeMonths => StudyWindow::richest_months(dataset, 3)?,
            WindowChoice::RichestMonths(n) => StudyWindow::richest_months(dataset, n)?,
            WindowChoice::Full => StudyWindow::full(dataset)?,
        };
        if window != previous.window
            || self.slotting != previous.slotting
            || self.scheme != previous.scheme
        {
            return Ok(PrepUpdate::FullRebuild);
        }
        let filter = ActivityFilter::new(self.min_active_days).slotting(self.slotting);
        let mut users: Vec<UserId> = previous
            .users
            .iter()
            .copied()
            .filter(|u| !dirty.contains(u))
            .collect();
        for &user in dirty {
            if filter.is_active(dataset, &window, user) {
                users.push(user);
            }
        }
        users.sort_unstable();
        let labeler = Labeler::new(dataset, self.scheme);
        let mut rows = Vec::with_capacity(users.len());
        for &user in &users {
            if dirty.contains(&user) {
                rows.push(build_user_row(
                    dataset,
                    user,
                    &window,
                    self.slotting,
                    &labeler,
                )?);
            } else {
                match previous.seqdb.decode_user(user) {
                    Some(row) => rows.push(row),
                    // A previously active user missing from the previous
                    // database means `previous` and the merged dataset
                    // disagree; fall back to a cold build.
                    None => return Ok(PrepUpdate::FullRebuild),
                }
            }
        }
        let seqdb = SequenceDatabase::from_users(rows);
        Ok(PrepUpdate::Incremental(Box::new(Prepared {
            window,
            users,
            slotting: self.slotting,
            scheme: self.scheme,
            seqdb,
        })))
    }
}

/// Outcome of an incremental re-prepare attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum PrepUpdate {
    /// The study window held; `Prepared` was rebuilt reusing every
    /// unchanged user's sequences.
    Incremental(Box<Prepared>),
    /// The merged dataset shifted the study window (or the configuration
    /// drifted from `previous`); the caller must run the full pipeline.
    FullRebuild,
}

/// The pipeline's output: the chosen window, the qualifying users, and
/// their sequence database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prepared {
    window: StudyWindow,
    users: Vec<UserId>,
    slotting: TimeSlotting,
    scheme: LabelScheme,
    seqdb: SequenceDatabase,
}

impl Prepared {
    /// The selected study window.
    pub fn window(&self) -> &StudyWindow {
        &self.window
    }

    /// Users passing the activity filter, ascending.
    pub fn users(&self) -> &[UserId] {
        &self.users
    }

    /// Number of qualifying users.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// The slotting used.
    pub fn slotting(&self) -> TimeSlotting {
        self.slotting
    }

    /// The label scheme used.
    pub fn scheme(&self) -> LabelScheme {
        self.scheme
    }

    /// The sequence database.
    pub fn seqdb(&self) -> &SequenceDatabase {
        &self.seqdb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_synth::SynthConfig;

    #[test]
    fn paper_default_pipeline_runs() {
        let d = SynthConfig::small(13).generate().unwrap();
        let p = Preprocessor::new().min_active_days(15).prepare(&d).unwrap();
        assert!(p.user_count() > 0, "no users passed the filter");
        assert_eq!(p.seqdb().user_count(), p.user_count());
        assert_eq!(p.window().day_count(), 91);
    }

    #[test]
    fn stricter_filter_keeps_fewer_users() {
        let d = SynthConfig::small(13).generate().unwrap();
        let loose = Preprocessor::new().min_active_days(5).prepare(&d).unwrap();
        let strict = Preprocessor::new().min_active_days(60).prepare(&d).unwrap();
        assert!(strict.user_count() <= loose.user_count());
    }

    #[test]
    fn full_window_covers_all() {
        let d = SynthConfig::small(14).generate().unwrap();
        let p = Preprocessor::new()
            .window(WindowChoice::Full)
            .min_active_days(0)
            .prepare(&d)
            .unwrap();
        // Every user has at least one check-in, so min_active_days(0)
        // keeps everyone.
        assert_eq!(p.user_count(), d.user_count());
    }

    #[test]
    fn empty_dataset_errors() {
        let d = crowdweb_dataset::Dataset::builder().build().unwrap();
        assert_eq!(
            Preprocessor::new().prepare(&d),
            Err(PrepError::EmptyDataset)
        );
    }

    /// Merge records cloning `n` of `user`'s check-ins shifted by
    /// `shift_secs`, so the merged dataset stays inside the same study
    /// window but the user's sequences change.
    fn shifted_records(
        d: &Dataset,
        user: u32,
        shift_secs: i64,
        n: usize,
    ) -> Vec<crowdweb_dataset::MergeRecord> {
        d.checkins_of(UserId::new(user))
            .iter()
            .take(n)
            .map(|c| {
                let v = d.venue(c.venue()).unwrap();
                crowdweb_dataset::MergeRecord {
                    user: c.user(),
                    venue_key: v.name().to_owned(),
                    category: d.taxonomy().name_of(v.category()).unwrap().to_owned(),
                    location: v.location(),
                    tz_offset_minutes: c.tz_offset_minutes(),
                    time: crowdweb_dataset::Timestamp::from_unix_seconds(
                        c.time().unix_seconds() + shift_secs,
                    ),
                }
            })
            .collect()
    }

    #[test]
    fn incremental_update_matches_cold_prepare() {
        let d = SynthConfig::small(21).generate().unwrap();
        let pre = Preprocessor::new().min_active_days(15);
        let before = pre.prepare(&d).unwrap();
        let dirty_user = before.users()[0];
        // Shift by one hour: same days, possibly different slots.
        let records = shifted_records(&d, dirty_user.raw(), 3600, 40);
        let merged = d.merge_records(&records).unwrap();
        let dirty: BTreeSet<UserId> = records.iter().map(|r| r.user).collect();
        match pre.update(&before, &merged, &dirty).unwrap() {
            PrepUpdate::Incremental(inc) => {
                let cold = pre.prepare(&merged).unwrap();
                assert_eq!(
                    *inc, cold,
                    "incremental re-prepare diverged from cold build"
                );
            }
            PrepUpdate::FullRebuild => {
                panic!("one hour of shift must not move the study window")
            }
        }
    }

    #[test]
    fn window_shift_forces_full_rebuild() {
        use crowdweb_dataset::{CategoryId, CheckIn, MergeRecord, Timestamp, Venue, VenueId};
        use crowdweb_geo::LatLon;
        let mut b = crowdweb_dataset::Dataset::builder();
        b.add_venue(Venue::new(
            VenueId::new(0),
            "v0",
            LatLon::new(40.7, -74.0).unwrap(),
            CategoryId::new(0),
        ));
        for day in 1..=20u8 {
            b.add_checkin(CheckIn::new(
                UserId::new(1),
                VenueId::new(0),
                Timestamp::from_civil(2012, 4, day, 10, 0, 0).unwrap(),
                0,
            ));
        }
        let d = b.build().unwrap();
        let pre = Preprocessor::new().min_active_days(0);
        let before = pre.prepare(&d).unwrap();
        // A denser burst six months later drags the richest window away.
        let records: Vec<MergeRecord> = (0..60u32)
            .map(|i| MergeRecord {
                user: UserId::new(1),
                venue_key: "v0".to_owned(),
                category: "Office".to_owned(),
                location: LatLon::new(40.7, -74.0).unwrap(),
                tz_offset_minutes: 0,
                time: Timestamp::from_civil(2012, 10, 1 + (i % 28) as u8, 12, 0, 0).unwrap(),
            })
            .collect();
        let merged = d.merge_records(&records).unwrap();
        let dirty: BTreeSet<UserId> = [UserId::new(1)].into_iter().collect();
        assert_eq!(
            pre.update(&before, &merged, &dirty).unwrap(),
            PrepUpdate::FullRebuild
        );
    }

    #[test]
    fn config_drift_forces_full_rebuild() {
        let d = SynthConfig::small(23).generate().unwrap();
        let before = Preprocessor::new().min_active_days(15).prepare(&d).unwrap();
        let drifted = Preprocessor::new()
            .min_active_days(15)
            .slotting(TimeSlotting::new(1).unwrap());
        assert_eq!(
            drifted.update(&before, &d, &BTreeSet::new()).unwrap(),
            PrepUpdate::FullRebuild
        );
    }

    #[test]
    fn scheme_and_slotting_propagate() {
        let d = SynthConfig::small(15).generate().unwrap();
        let p = Preprocessor::new()
            .label_scheme(LabelScheme::Category)
            .slotting(TimeSlotting::new(1).unwrap())
            .min_active_days(10)
            .prepare(&d)
            .unwrap();
        assert_eq!(p.scheme(), LabelScheme::Category);
        assert_eq!(p.slotting().slot_hours(), 1);
    }
}
