//! The one-call preprocessing pipeline.

use crate::{ActivityFilter, LabelScheme, PrepError, SequenceDatabase, StudyWindow, TimeSlotting};
use crowdweb_dataset::{Dataset, UserId};
use serde::{Deserialize, Serialize};

/// How the study window is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum WindowChoice {
    /// The richest consecutive three months (the paper's choice).
    #[default]
    RichestThreeMonths,
    /// The richest consecutive `n` months.
    RichestMonths(usize),
    /// The full dataset span.
    Full,
}

/// Configurable preprocessing pipeline (C-BUILDER): window selection →
/// activity filtering → discretization → labeling → sequence database.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Preprocessor {
    window: WindowChoice,
    min_active_days: usize,
    slotting: TimeSlotting,
    scheme: LabelScheme,
}

impl Default for Preprocessor {
    /// The paper's configuration: richest 3 months, >50 active days,
    /// 2-hour slots, coarse-kind labels.
    fn default() -> Self {
        Preprocessor {
            window: WindowChoice::RichestThreeMonths,
            min_active_days: 50,
            slotting: TimeSlotting::default(),
            scheme: LabelScheme::Kind,
        }
    }
}

impl Preprocessor {
    /// Creates the paper-default preprocessor.
    pub fn new() -> Preprocessor {
        Preprocessor::default()
    }

    /// Sets how the study window is chosen.
    pub fn window(mut self, choice: WindowChoice) -> Preprocessor {
        self.window = choice;
        self
    }

    /// Sets the active-day threshold (strictly-greater-than).
    pub fn min_active_days(mut self, days: usize) -> Preprocessor {
        self.min_active_days = days;
        self
    }

    /// The configured active-day threshold.
    pub fn configured_min_active_days(&self) -> usize {
        self.min_active_days
    }

    /// Sets the time-slot granularity.
    pub fn slotting(mut self, slotting: TimeSlotting) -> Preprocessor {
        self.slotting = slotting;
        self
    }

    /// Sets the place-label abstraction level.
    pub fn label_scheme(mut self, scheme: LabelScheme) -> Preprocessor {
        self.scheme = scheme;
        self
    }

    /// Runs the pipeline over a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`PrepError::EmptyDataset`] when the dataset has no
    /// check-ins, plus any window/labeling errors.
    pub fn prepare(&self, dataset: &Dataset) -> Result<Prepared, PrepError> {
        let window = match self.window {
            WindowChoice::RichestThreeMonths => StudyWindow::richest_months(dataset, 3)?,
            WindowChoice::RichestMonths(n) => StudyWindow::richest_months(dataset, n)?,
            WindowChoice::Full => StudyWindow::full(dataset)?,
        };
        let filter = ActivityFilter::new(self.min_active_days).slotting(self.slotting);
        let users = filter.active_users(dataset, &window);
        let seqdb = SequenceDatabase::build(dataset, &users, &window, self.slotting, self.scheme)?;
        Ok(Prepared {
            window,
            users,
            slotting: self.slotting,
            scheme: self.scheme,
            seqdb,
        })
    }
}

/// The pipeline's output: the chosen window, the qualifying users, and
/// their sequence database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prepared {
    window: StudyWindow,
    users: Vec<UserId>,
    slotting: TimeSlotting,
    scheme: LabelScheme,
    seqdb: SequenceDatabase,
}

impl Prepared {
    /// The selected study window.
    pub fn window(&self) -> &StudyWindow {
        &self.window
    }

    /// Users passing the activity filter, ascending.
    pub fn users(&self) -> &[UserId] {
        &self.users
    }

    /// Number of qualifying users.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// The slotting used.
    pub fn slotting(&self) -> TimeSlotting {
        self.slotting
    }

    /// The label scheme used.
    pub fn scheme(&self) -> LabelScheme {
        self.scheme
    }

    /// The sequence database.
    pub fn seqdb(&self) -> &SequenceDatabase {
        &self.seqdb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_synth::SynthConfig;

    #[test]
    fn paper_default_pipeline_runs() {
        let d = SynthConfig::small(13).generate().unwrap();
        let p = Preprocessor::new().min_active_days(15).prepare(&d).unwrap();
        assert!(p.user_count() > 0, "no users passed the filter");
        assert_eq!(p.seqdb().user_count(), p.user_count());
        assert_eq!(p.window().day_count(), 91);
    }

    #[test]
    fn stricter_filter_keeps_fewer_users() {
        let d = SynthConfig::small(13).generate().unwrap();
        let loose = Preprocessor::new().min_active_days(5).prepare(&d).unwrap();
        let strict = Preprocessor::new().min_active_days(60).prepare(&d).unwrap();
        assert!(strict.user_count() <= loose.user_count());
    }

    #[test]
    fn full_window_covers_all() {
        let d = SynthConfig::small(14).generate().unwrap();
        let p = Preprocessor::new()
            .window(WindowChoice::Full)
            .min_active_days(0)
            .prepare(&d)
            .unwrap();
        // Every user has at least one check-in, so min_active_days(0)
        // keeps everyone.
        assert_eq!(p.user_count(), d.user_count());
    }

    #[test]
    fn empty_dataset_errors() {
        let d = crowdweb_dataset::Dataset::builder().build().unwrap();
        assert_eq!(
            Preprocessor::new().prepare(&d),
            Err(PrepError::EmptyDataset)
        );
    }

    #[test]
    fn scheme_and_slotting_propagate() {
        let d = SynthConfig::small(15).generate().unwrap();
        let p = Preprocessor::new()
            .label_scheme(LabelScheme::Category)
            .slotting(TimeSlotting::new(1).unwrap())
            .min_active_days(10)
            .prepare(&d)
            .unwrap();
        assert_eq!(p.scheme(), LabelScheme::Category);
        assert_eq!(p.slotting().slot_hours(), 1);
    }
}
