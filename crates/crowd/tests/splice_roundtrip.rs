//! Property tests for the splice algebra: `between`/`apply`/`invert`
//! must be exact on arbitrary user-grouped placement lists, because the
//! epoch history store reconstructs retained epochs by replaying delta
//! chains — a single placement out of place breaks the byte-identity
//! contract with a cold rebuild.

use crowdweb_crowd::{CrowdModel, CrowdSplice, Placement, TimeWindows};
use crowdweb_dataset::{UserId, VenueId};
use crowdweb_geo::{BoundingBox, CellId, MicrocellGrid};
use crowdweb_prep::PlaceLabel;
use proptest::prelude::*;

/// Builds a valid crowd model from raw `(user, window, cell)` triples:
/// placements are grouped by user in ascending user order with one
/// placement per `(user, window)` — the invariant
/// `CrowdModel::with_user_placements` (and therefore `apply`) preserves.
fn model_from(raw: &[(u32, usize, u32)]) -> CrowdModel {
    let mut rows: Vec<(u32, usize, u32)> = raw.to_vec();
    rows.sort_unstable();
    rows.dedup_by_key(|r| (r.0, r.1));
    let placements: Vec<Placement> = rows
        .iter()
        .map(|&(user, window, seed)| Placement {
            user: UserId::new(user),
            window,
            label: PlaceLabel(seed % 5),
            support: 1 + seed as usize % 7,
            venue: VenueId::new(seed),
            cell: CellId(u64::from(seed % 16)),
        })
        .collect();
    CrowdModel::new(
        MicrocellGrid::new(BoundingBox::NYC, 4, 4).unwrap(),
        TimeWindows::hourly(),
        placements,
    )
}

proptest! {
    /// `between(a, b).apply(a)` reproduces `b` exactly, and applying
    /// the inverse splice afterwards restores `a` — the round-trip the
    /// history store's checkpoint + delta-chain reconstruction rests on.
    #[test]
    fn prop_apply_then_invert_is_identity(
        a in proptest::collection::vec((0u32..64, 0usize..24, 0u32..64), 0..64),
        b in proptest::collection::vec((0u32..64, 0usize..24, 0u32..64), 0..64),
    ) {
        let a = model_from(&a);
        let b = model_from(&b);
        let splice = CrowdSplice::between(&a, &b);
        let forward = splice.apply(&a);
        prop_assert_eq!(&forward, &b);
        prop_assert_eq!(splice.invert().apply(&forward), a);
    }

    /// A model spliced against itself yields the empty delta, and the
    /// empty delta is a no-op in both directions.
    #[test]
    fn prop_self_splice_is_empty(
        a in proptest::collection::vec((0u32..64, 0usize..24, 0u32..64), 0..64),
    ) {
        let a = model_from(&a);
        let splice = CrowdSplice::between(&a, &a.clone());
        prop_assert!(splice.is_empty());
        prop_assert_eq!(splice.apply(&a), a.clone());
        prop_assert_eq!(splice.invert().apply(&a), a);
    }

    /// Chained splices compose: replaying a→b→c from `a` lands on `c`
    /// exactly, as in a multi-epoch delta chain.
    #[test]
    fn prop_delta_chains_compose(
        a in proptest::collection::vec((0u32..48, 0usize..24, 0u32..64), 0..48),
        b in proptest::collection::vec((0u32..48, 0usize..24, 0u32..64), 0..48),
        c in proptest::collection::vec((0u32..48, 0usize..24, 0u32..64), 0..48),
    ) {
        let a = model_from(&a);
        let b = model_from(&b);
        let c = model_from(&c);
        let ab = CrowdSplice::between(&a, &b);
        let bc = CrowdSplice::between(&b, &c);
        prop_assert_eq!(bc.apply(&ab.apply(&a)), c);
    }
}
