//! Crowd time windows.
//!
//! The crowd view slices the day into windows ("the crowd from 9–10
//! am"). Windows are independent of the mining slots: the paper mines at
//! 2-hour granularity but displays hourly, and promises user-scalable
//! time frames as future work — [`TimeWindows`] supports both.

use crate::CrowdError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open hour range `[start, end)` within the day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeWindow {
    start: u8,
    end: u8,
}

impl TimeWindow {
    /// Creates a window covering hours `[start, end)`.
    ///
    /// # Errors
    ///
    /// Returns [`CrowdError::InvalidWindow`] unless
    /// `start < end <= 24`.
    pub fn new(start: u8, end: u8) -> Result<TimeWindow, CrowdError> {
        if start >= end {
            return Err(CrowdError::InvalidWindow("start must precede end"));
        }
        if end > 24 {
            return Err(CrowdError::InvalidWindow("end must be at most 24"));
        }
        Ok(TimeWindow { start, end })
    }

    /// Start hour (inclusive).
    pub fn start(&self) -> u8 {
        self.start
    }

    /// End hour (exclusive).
    pub fn end(&self) -> u8 {
        self.end
    }

    /// Whether the window contains the given hour.
    pub fn contains_hour(&self, hour: u8) -> bool {
        (self.start..self.end).contains(&hour)
    }

    /// Whether this window overlaps a mining slot spanning
    /// `[slot_start, slot_end)` hours.
    pub fn overlaps_hours(&self, slot_start: u8, slot_end: u8) -> bool {
        self.start < slot_end && slot_start < self.end
    }

    /// 12-hour-clock label in the paper's style, e.g. `"9-10 am"`.
    pub fn label(&self) -> String {
        fn ampm(h: u8) -> (u8, &'static str) {
            match h {
                0 => (12, "am"),
                1..=11 => (h, "am"),
                12 => (12, "pm"),
                13..=23 => (h - 12, "pm"),
                _ => (12, "am"), // 24 == midnight
            }
        }
        let (sh, sm) = ampm(self.start);
        let (eh, em) = ampm(self.end);
        if sm == em {
            format!("{sh}-{eh} {sm}")
        } else {
            format!("{sh} {sm}-{eh} {em}")
        }
    }
}

impl fmt::Display for TimeWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// An ordered, non-overlapping division of the day into equal windows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeWindows {
    windows: Vec<TimeWindow>,
}

impl Default for TimeWindows {
    fn default() -> Self {
        TimeWindows::hourly()
    }
}

impl TimeWindows {
    /// 24 one-hour windows — the granularity of the paper's Figures 3–4.
    pub fn hourly() -> TimeWindows {
        TimeWindows::with_width(1).expect("1 divides 24")
    }

    /// Windows of `width_hours` each.
    ///
    /// # Errors
    ///
    /// Returns [`CrowdError::InvalidWindow`] unless `width_hours`
    /// divides 24.
    pub fn with_width(width_hours: u8) -> Result<TimeWindows, CrowdError> {
        if width_hours == 0 || 24 % width_hours != 0 {
            return Err(CrowdError::InvalidWindow("width must divide 24"));
        }
        let windows = (0..24 / width_hours)
            .map(|i| TimeWindow {
                start: i * width_hours,
                end: (i + 1) * width_hours,
            })
            .collect();
        Ok(TimeWindows { windows })
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether there are no windows (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The windows in day order.
    pub fn as_slice(&self) -> &[TimeWindow] {
        &self.windows
    }

    /// The window at an index.
    pub fn get(&self, index: usize) -> Option<TimeWindow> {
        self.windows.get(index).copied()
    }

    /// The index of the window containing `hour`, if any.
    pub fn index_of_hour(&self, hour: u8) -> Option<usize> {
        self.windows.iter().position(|w| w.contains_hour(hour))
    }

    /// Iterator over the windows.
    pub fn iter(&self) -> std::slice::Iter<'_, TimeWindow> {
        self.windows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates() {
        assert!(TimeWindow::new(9, 10).is_ok());
        assert!(TimeWindow::new(10, 9).is_err());
        assert!(TimeWindow::new(9, 9).is_err());
        assert!(TimeWindow::new(23, 25).is_err());
        assert!(TimeWindow::new(23, 24).is_ok());
    }

    #[test]
    fn paper_label_nine_to_ten_am() {
        assert_eq!(TimeWindow::new(9, 10).unwrap().label(), "9-10 am");
        assert_eq!(TimeWindow::new(13, 14).unwrap().label(), "1-2 pm");
        assert_eq!(TimeWindow::new(11, 13).unwrap().label(), "11 am-1 pm");
        assert_eq!(TimeWindow::new(0, 1).unwrap().label(), "12-1 am");
        assert_eq!(TimeWindow::new(23, 24).unwrap().label(), "11 pm-12 am");
    }

    #[test]
    fn contains_and_overlaps() {
        let w = TimeWindow::new(9, 11).unwrap();
        assert!(w.contains_hour(9) && w.contains_hour(10));
        assert!(!w.contains_hour(11) && !w.contains_hour(8));
        // 2-hour mining slot 8-10 overlaps.
        assert!(w.overlaps_hours(8, 10));
        assert!(w.overlaps_hours(10, 12));
        assert!(!w.overlaps_hours(11, 13));
        assert!(!w.overlaps_hours(7, 9));
    }

    #[test]
    fn hourly_covers_day() {
        let ws = TimeWindows::hourly();
        assert_eq!(ws.len(), 24);
        for h in 0u8..24 {
            assert_eq!(ws.index_of_hour(h), Some(usize::from(h)));
        }
    }

    #[test]
    fn with_width_validates() {
        assert_eq!(TimeWindows::with_width(2).unwrap().len(), 12);
        assert_eq!(TimeWindows::with_width(6).unwrap().len(), 4);
        assert!(TimeWindows::with_width(0).is_err());
        assert!(TimeWindows::with_width(5).is_err());
    }

    #[test]
    fn get_and_iter() {
        let ws = TimeWindows::with_width(6).unwrap();
        assert_eq!(ws.get(0).unwrap().start(), 0);
        assert_eq!(ws.get(3).unwrap().end(), 24);
        assert!(ws.get(4).is_none());
        assert_eq!(ws.iter().count(), 4);
        assert!(!ws.is_empty());
    }
}
