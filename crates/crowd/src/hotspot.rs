//! Crowd hotspot detection — the crowd-management application the
//! paper's introduction motivates.
//!
//! A *hotspot* is a microcell whose crowd count in some window is
//! anomalously high relative to that window's distribution
//! (`count >= mean + k * std`, with a minimum absolute size).
//! Hotspots are classified by their temporal behaviour across
//! consecutive windows: emerging, dissipating, or persistent.

use crate::{CrowdError, CrowdModel};
use crowdweb_geo::CellId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How a hotspot relates to the previous window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HotspotPhase {
    /// Not hot in the previous window, hot now.
    Emerging,
    /// Hot in both the previous and the current window.
    Persistent,
}

/// One detected hotspot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hotspot {
    /// Window index the hotspot occurs in.
    pub window: usize,
    /// The hot microcell.
    pub cell: CellId,
    /// Crowd count in the cell.
    pub count: usize,
    /// How many standard deviations above the window mean.
    pub z_score: f64,
    /// Temporal classification against the previous window.
    pub phase: HotspotPhase,
}

/// Hotspot detector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HotspotConfig {
    /// Standard-deviation threshold (`count >= mean + k * std`).
    pub z_threshold: f64,
    /// Minimum absolute crowd size to qualify.
    pub min_count: usize,
}

impl Default for HotspotConfig {
    fn default() -> Self {
        HotspotConfig {
            z_threshold: 1.5,
            min_count: 3,
        }
    }
}

/// Detects hotspots in every window of a crowd model, in window order
/// then by cell id.
///
/// # Errors
///
/// Propagates [`CrowdError::WindowOutOfRange`] (cannot occur for a
/// well-formed model).
///
/// # Examples
///
/// ```
/// use crowdweb_crowd::hotspot::{detect_hotspots, HotspotConfig};
/// # use crowdweb_crowd::{CrowdBuilder, TimeWindows};
/// # use crowdweb_mobility::PatternMiner;
/// # use crowdweb_prep::Preprocessor;
/// # use crowdweb_synth::SynthConfig;
/// # use crowdweb_geo::{BoundingBox, MicrocellGrid};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let dataset = SynthConfig::small(31).generate()?;
/// # let prepared = Preprocessor::new().min_active_days(20).prepare(&dataset)?;
/// # let patterns = PatternMiner::new(0.15)?.detect_all(&prepared)?;
/// # let grid = MicrocellGrid::new(BoundingBox::NYC, 20, 20)?;
/// # let model = CrowdBuilder::new(&dataset, &prepared).build(&patterns, grid)?;
/// let hotspots = detect_hotspots(&model, &HotspotConfig::default())?;
/// for h in &hotspots {
///     assert!(h.z_score >= 1.5);
/// }
/// # Ok(())
/// # }
/// ```
pub fn detect_hotspots(
    model: &CrowdModel,
    config: &HotspotConfig,
) -> Result<Vec<Hotspot>, CrowdError> {
    let mut out = Vec::new();
    let mut previous_hot: Vec<CellId> = Vec::new();
    for w in 0..model.windows().len() {
        let snapshot = model.snapshot(w)?;
        let counts: Vec<usize> = snapshot.cells.values().copied().collect();
        let mut hot_now: Vec<CellId> = Vec::new();
        if !counts.is_empty() {
            let n = counts.len() as f64;
            let mean = counts.iter().sum::<usize>() as f64 / n;
            let var = counts
                .iter()
                .map(|&c| (c as f64 - mean).powi(2))
                .sum::<f64>()
                / n;
            let std = var.sqrt();
            for (&cell, &count) in &snapshot.cells {
                if count < config.min_count {
                    continue;
                }
                let z = if std > 0.0 {
                    (count as f64 - mean) / std
                } else if count as f64 > mean {
                    f64::INFINITY
                } else {
                    0.0
                };
                if z >= config.z_threshold {
                    let phase = if previous_hot.contains(&cell) {
                        HotspotPhase::Persistent
                    } else {
                        HotspotPhase::Emerging
                    };
                    out.push(Hotspot {
                        window: w,
                        cell,
                        count,
                        z_score: z,
                        phase,
                    });
                    hot_now.push(cell);
                }
            }
        }
        previous_hot = hot_now;
    }
    Ok(out)
}

/// The cells that are hotspots in at least `min_windows` windows —
/// the structurally busy places of the city, with their hot-window
/// counts (descending).
pub fn recurrent_hotspots(hotspots: &[Hotspot], min_windows: usize) -> Vec<(CellId, usize)> {
    let mut counts: BTreeMap<CellId, usize> = BTreeMap::new();
    for h in hotspots {
        *counts.entry(h.cell).or_insert(0) += 1;
    }
    let mut out: Vec<(CellId, usize)> = counts
        .into_iter()
        .filter(|&(_, n)| n >= min_windows)
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Placement, TimeWindows};
    use crowdweb_dataset::{UserId, VenueId};
    use crowdweb_geo::{BoundingBox, MicrocellGrid};
    use crowdweb_prep::PlaceLabel;

    fn placement(user: u32, window: usize, cell: u64) -> Placement {
        Placement {
            user: UserId::new(user),
            window,
            label: PlaceLabel(0),
            support: 1,
            venue: VenueId::new(0),
            cell: CellId(cell),
        }
    }

    /// Window 9: cell 5 holds 6 users, cells 1-4 hold 1 each.
    /// Window 10: cell 5 still holds 5 users, cells 1-3 hold 1 each.
    fn model() -> CrowdModel {
        let mut placements = Vec::new();
        for u in 0..6 {
            placements.push(placement(u, 9, 5));
        }
        for u in 6..10 {
            placements.push(placement(u, 9, u64::from(u - 5)));
        }
        for u in 0..5 {
            placements.push(placement(u, 10, 5));
        }
        for u in 6..9 {
            placements.push(placement(u, 10, u64::from(u - 5)));
        }
        CrowdModel::new(
            MicrocellGrid::new(BoundingBox::NYC, 4, 4).unwrap(),
            TimeWindows::hourly(),
            placements,
        )
    }

    #[test]
    fn detects_the_obvious_hotspot() {
        let hotspots = detect_hotspots(&model(), &HotspotConfig::default()).unwrap();
        assert!(!hotspots.is_empty());
        assert!(hotspots.iter().all(|h| h.cell == CellId(5)));
        let windows: Vec<usize> = hotspots.iter().map(|h| h.window).collect();
        assert_eq!(windows, vec![9, 10]);
    }

    #[test]
    fn phases_emerging_then_persistent() {
        let hotspots = detect_hotspots(&model(), &HotspotConfig::default()).unwrap();
        assert_eq!(hotspots[0].phase, HotspotPhase::Emerging);
        assert_eq!(hotspots[1].phase, HotspotPhase::Persistent);
    }

    #[test]
    fn min_count_suppresses_small_cells() {
        let strict = HotspotConfig {
            z_threshold: 0.0,
            min_count: 100,
        };
        assert!(detect_hotspots(&model(), &strict).unwrap().is_empty());
    }

    #[test]
    fn uniform_crowd_has_no_hotspots() {
        // Every occupied cell holds exactly one user: std = 0, no cell
        // exceeds the mean.
        let placements: Vec<Placement> = (0..5).map(|u| placement(u, 9, u64::from(u))).collect();
        let m = CrowdModel::new(
            MicrocellGrid::new(BoundingBox::NYC, 4, 4).unwrap(),
            TimeWindows::hourly(),
            placements,
        );
        let hotspots = detect_hotspots(
            &m,
            &HotspotConfig {
                z_threshold: 1.0,
                min_count: 1,
            },
        )
        .unwrap();
        assert!(hotspots.is_empty());
    }

    #[test]
    fn recurrent_hotspots_count_windows() {
        let hotspots = detect_hotspots(&model(), &HotspotConfig::default()).unwrap();
        let recurrent = recurrent_hotspots(&hotspots, 2);
        assert_eq!(recurrent, vec![(CellId(5), 2)]);
        assert!(recurrent_hotspots(&hotspots, 3).is_empty());
    }

    #[test]
    fn z_scores_are_positive_and_ordered() {
        let hotspots = detect_hotspots(&model(), &HotspotConfig::default()).unwrap();
        for h in &hotspots {
            assert!(h.z_score >= 1.5);
            assert!(h.count >= 3);
        }
    }
}
