//! Error type for the crowd engine.

use std::error::Error;
use std::fmt;

/// Error produced by crowd synchronization and aggregation.
#[derive(Debug, Clone, PartialEq)]
pub enum CrowdError {
    /// Window configuration was invalid.
    InvalidWindow(&'static str),
    /// A labeling/preprocessing step failed.
    Prep(crowdweb_prep::PrepError),
    /// Requested window index out of range.
    WindowOutOfRange(usize),
}

impl fmt::Display for CrowdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrowdError::InvalidWindow(what) => write!(f, "invalid time window: {what}"),
            CrowdError::Prep(e) => write!(f, "preprocessing failed: {e}"),
            CrowdError::WindowOutOfRange(i) => write!(f, "window index {i} out of range"),
        }
    }
}

impl Error for CrowdError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CrowdError::Prep(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crowdweb_prep::PrepError> for CrowdError {
    fn from(e: crowdweb_prep::PrepError) -> Self {
        CrowdError::Prep(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_traits() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CrowdError>();
        assert!(!CrowdError::WindowOutOfRange(3).to_string().is_empty());
        assert!(CrowdError::from(crowdweb_prep::PrepError::EmptyDataset)
            .source()
            .is_some());
    }
}
