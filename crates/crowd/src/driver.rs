//! One-call pipeline driver: prepare → mine → grid → crowd.
//!
//! Every consumer of the full CrowdWeb pipeline (server, benchmarks,
//! examples) used to hand-wire the same four stages. [`PipelineDriver`]
//! owns that wiring and threads one [`Parallelism`] policy through the
//! stages that fan out on the shared pool (pattern mining and crowd
//! synchronization), so callers pick a policy once and the whole
//! pipeline honours it.

use crate::{CrowdBuilder, CrowdError, CrowdModel, TimeWindows};
use crowdweb_dataset::Dataset;
use crowdweb_exec::Parallelism;
use crowdweb_geo::{BoundingBox, GeoError, MicrocellGrid};
use crowdweb_mobility::{MobilityError, PatternMiner, UserPatterns};
use crowdweb_obs::MetricsRegistry;
use crowdweb_prep::{PrepError, Prepared, Preprocessor};
use std::error::Error;
use std::fmt;
use std::time::Instant;

/// Error from any stage of a driven pipeline run.
#[derive(Debug)]
pub enum PipelineError {
    /// Preprocessing failed.
    Prep(PrepError),
    /// Pattern mining failed.
    Mobility(MobilityError),
    /// The display grid was invalid.
    Geo(GeoError),
    /// Crowd synchronization failed.
    Crowd(CrowdError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Prep(e) => write!(f, "preprocessing stage failed: {e}"),
            PipelineError::Mobility(e) => write!(f, "mining stage failed: {e}"),
            PipelineError::Geo(e) => write!(f, "grid construction failed: {e}"),
            PipelineError::Crowd(e) => write!(f, "crowd stage failed: {e}"),
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Prep(e) => Some(e),
            PipelineError::Mobility(e) => Some(e),
            PipelineError::Geo(e) => Some(e),
            PipelineError::Crowd(e) => Some(e),
        }
    }
}

impl From<PrepError> for PipelineError {
    fn from(e: PrepError) -> Self {
        PipelineError::Prep(e)
    }
}

impl From<MobilityError> for PipelineError {
    fn from(e: MobilityError) -> Self {
        PipelineError::Mobility(e)
    }
}

impl From<GeoError> for PipelineError {
    fn from(e: GeoError) -> Self {
        PipelineError::Geo(e)
    }
}

impl From<CrowdError> for PipelineError {
    fn from(e: CrowdError) -> Self {
        PipelineError::Crowd(e)
    }
}

/// Everything a full pipeline run produces.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// The preprocessed dataset (stage 1).
    pub prepared: Prepared,
    /// Every user's mined mobility patterns (stage 2), in user order.
    pub patterns: Vec<UserPatterns>,
    /// The display grid the crowd model is bucketed into (stage 3).
    pub grid: MicrocellGrid,
    /// The synchronized, aggregated crowd model (stage 4).
    pub crowd: CrowdModel,
}

/// Drives the whole prepare → mine → grid → crowd pipeline with one
/// configuration and one execution policy.
///
/// # Examples
///
/// ```
/// use crowdweb_crowd::PipelineDriver;
/// use crowdweb_exec::Parallelism;
/// use crowdweb_synth::SynthConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dataset = SynthConfig::small(31).generate()?;
/// let out = PipelineDriver::new(0.15)?
///     .parallelism(Parallelism::Auto)
///     .run(&dataset)?;
/// assert_eq!(out.patterns.len(), out.prepared.user_count());
/// assert!(out.crowd.placement_count() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PipelineDriver {
    preprocessor: Preprocessor,
    miner: PatternMiner,
    windows: TimeWindows,
    bounds: BoundingBox,
    rows: u32,
    cols: u32,
    parallelism: Parallelism,
    metrics: Option<MetricsRegistry>,
}

impl PipelineDriver {
    /// Creates a driver mining at the given relative support threshold,
    /// with the default preprocessor, hourly display windows, a 20 × 20
    /// NYC grid, and sequential execution.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Mobility`] for thresholds outside
    /// `(0, 1]`.
    pub fn new(min_support: f64) -> Result<PipelineDriver, PipelineError> {
        Ok(PipelineDriver {
            preprocessor: Preprocessor::new(),
            miner: PatternMiner::new(min_support)?,
            windows: TimeWindows::hourly(),
            bounds: BoundingBox::NYC,
            rows: 20,
            cols: 20,
            parallelism: Parallelism::Sequential,
            metrics: None,
        })
    }

    /// Replaces the preprocessing stage configuration.
    pub fn preprocessor(mut self, preprocessor: Preprocessor) -> PipelineDriver {
        self.preprocessor = preprocessor;
        self
    }

    /// Replaces the mining stage configuration. The driver's
    /// parallelism policy still applies.
    pub fn miner(mut self, miner: PatternMiner) -> PipelineDriver {
        self.miner = miner;
        self
    }

    /// Sets the display windows (default hourly).
    pub fn windows(mut self, windows: TimeWindows) -> PipelineDriver {
        self.windows = windows;
        self
    }

    /// Sets the display grid geometry (default 20 × 20 over NYC).
    pub fn grid(mut self, bounds: BoundingBox, rows: u32, cols: u32) -> PipelineDriver {
        self.bounds = bounds;
        self.rows = rows;
        self.cols = cols;
        self
    }

    /// Sets the execution policy threaded through every parallel stage
    /// (default sequential). The output is identical under any policy.
    pub fn parallelism(mut self, parallelism: Parallelism) -> PipelineDriver {
        self.parallelism = parallelism;
        self
    }

    /// Attaches a metrics registry: every [`Self::run`] records
    /// per-stage wall time (prepare/mine/grid/crowd) keyed by the
    /// driver's parallelism policy, and bumps a run counter. Timing
    /// never alters pipeline output.
    pub fn metrics(mut self, metrics: Option<MetricsRegistry>) -> PipelineDriver {
        self.metrics = metrics;
        self
    }

    /// Records one stage's wall time into the shared stage histogram.
    fn observe_stage(&self, stage: &str, started: Instant) {
        if let Some(metrics) = &self.metrics {
            metrics.observe_stage(
                stage,
                &self.parallelism.label(),
                started.elapsed().as_secs_f64(),
            );
        }
    }

    /// Runs the full pipeline on a dataset.
    ///
    /// # Errors
    ///
    /// Returns the first failing stage's error.
    pub fn run(&self, dataset: &Dataset) -> Result<PipelineOutput, PipelineError> {
        let started = Instant::now();
        let prepared = self.preprocessor.prepare(dataset)?;
        self.observe_stage("prepare", started);

        let started = Instant::now();
        let patterns = self
            .miner
            .clone()
            .parallelism(self.parallelism)
            .metrics(self.metrics.clone())
            .detect_all(&prepared)?;
        self.observe_stage("mine", started);

        let started = Instant::now();
        let grid = MicrocellGrid::new(self.bounds, self.rows, self.cols)?;
        self.observe_stage("grid", started);

        let started = Instant::now();
        let crowd = CrowdBuilder::new(dataset, &prepared)
            .windows(self.windows.clone())
            .parallelism(self.parallelism)
            .metrics(self.metrics.clone())
            .build(&patterns, grid.clone())?;
        self.observe_stage("crowd", started);

        if let Some(metrics) = &self.metrics {
            metrics
                .counter(
                    "crowdweb_pipeline_runs_total",
                    "Completed full pipeline runs.",
                    &[("policy", &self.parallelism.label())],
                )
                .inc();
        }
        Ok(PipelineOutput {
            prepared,
            patterns,
            grid,
            crowd,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_synth::SynthConfig;

    #[test]
    fn driver_matches_hand_wiring() {
        let dataset = SynthConfig::small(33).generate().unwrap();
        let driven = PipelineDriver::new(0.15).unwrap().run(&dataset).unwrap();

        let prepared = Preprocessor::new().prepare(&dataset).unwrap();
        let patterns = PatternMiner::new(0.15)
            .unwrap()
            .detect_all(&prepared)
            .unwrap();
        let grid = MicrocellGrid::new(BoundingBox::NYC, 20, 20).unwrap();
        let crowd = CrowdBuilder::new(&dataset, &prepared)
            .build(&patterns, grid.clone())
            .unwrap();

        assert_eq!(driven.prepared, prepared);
        assert_eq!(driven.patterns, patterns);
        assert_eq!(driven.grid, grid);
        assert_eq!(driven.crowd.placements(), crowd.placements());
    }

    #[test]
    fn parallel_run_equals_sequential_run() {
        let dataset = SynthConfig::small(33).generate().unwrap();
        let sequential = PipelineDriver::new(0.15).unwrap().run(&dataset).unwrap();
        let parallel = PipelineDriver::new(0.15)
            .unwrap()
            .parallelism(Parallelism::Threads(4))
            .run(&dataset)
            .unwrap();
        assert_eq!(sequential.patterns, parallel.patterns);
        assert_eq!(sequential.crowd.placements(), parallel.crowd.placements());
    }

    #[test]
    fn instrumented_run_matches_uninstrumented() {
        let dataset = SynthConfig::small(33).generate().unwrap();
        let plain = PipelineDriver::new(0.15).unwrap().run(&dataset).unwrap();
        let metrics = crowdweb_obs::MetricsRegistry::new();
        let timed = PipelineDriver::new(0.15)
            .unwrap()
            .metrics(Some(metrics.clone()))
            .run(&dataset)
            .unwrap();
        assert_eq!(timed.patterns, plain.patterns);
        assert_eq!(timed.crowd.placements(), plain.crowd.placements());
        // Every stage recorded exactly one observation.
        for stage in ["prepare", "mine", "grid", "crowd"] {
            let (count, _) = metrics
                .histogram_stats(
                    crowdweb_obs::STAGE_SECONDS,
                    &[("stage", stage), ("policy", "sequential")],
                )
                .unwrap_or_else(|| panic!("stage {stage} not recorded"));
            assert_eq!(count, 1, "stage {stage}");
        }
        assert_eq!(
            metrics.counter_value("crowdweb_pipeline_runs_total", &[("policy", "sequential")]),
            Some(1)
        );
    }

    #[test]
    fn invalid_support_is_rejected() {
        assert!(matches!(
            PipelineDriver::new(0.0),
            Err(PipelineError::Mobility(_))
        ));
    }

    #[test]
    fn invalid_grid_surfaces_as_geo_error() {
        let dataset = SynthConfig::small(33).generate().unwrap();
        let err = PipelineDriver::new(0.15)
            .unwrap()
            .grid(BoundingBox::NYC, 0, 10)
            .run(&dataset)
            .unwrap_err();
        assert!(matches!(err, PipelineError::Geo(_)));
        assert!(!err.to_string().is_empty());
    }
}
