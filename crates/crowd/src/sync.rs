//! Crowd synchronization: grounding every user's patterns in space and
//! time.
//!
//! "Users who frequently visit a specific location at a particular time
//! are categorized together as a group." For each user and each time
//! window, the synchronizer:
//!
//! 1. Scans the user's mined patterns for items whose mining slot
//!    overlaps the window, picking the highest-support item.
//! 2. Grounds the abstract item at the user's *modal venue* for that
//!    `(slot, label)` habit — the concrete place they most often
//!    check in at during that slot with that label.
//! 3. Emits a [`Placement`] in the microcell of that venue.

use crate::{CrowdError, CrowdModel, TimeWindows};
use crowdweb_dataset::{Dataset, UserId, VenueId};
use crowdweb_exec::{parallel_map_observed, Parallelism};
use crowdweb_geo::{CellId, MicrocellGrid};
use crowdweb_mobility::UserPatterns;
use crowdweb_obs::MetricsRegistry;
use crowdweb_prep::{Labeler, PlaceLabel, Prepared, TimeSlot};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One user grounded in one time window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// The user.
    pub user: UserId,
    /// Index into the model's windows.
    pub window: usize,
    /// The abstract place label the pattern predicts.
    pub label: PlaceLabel,
    /// Support (days) of the pattern item that placed the user.
    pub support: usize,
    /// The concrete venue the habit is grounded at.
    pub venue: VenueId,
    /// The microcell of that venue.
    pub cell: CellId,
}

/// Summary of one incremental crowd update ([`CrowdBuilder::update`]):
/// how much of the model actually moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CrowdDelta {
    /// Users whose placements were recomputed (or cleared).
    pub users_recomputed: usize,
    /// Placements dropped from the previous model.
    pub placements_removed: usize,
    /// Placements in the new model for the recomputed users.
    pub placements_added: usize,
    /// Distinct `(window, cell)` pairs touched by the update.
    pub cells_touched: usize,
}

/// Builds a [`CrowdModel`] from mined patterns (C-BUILDER).
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct CrowdBuilder<'a> {
    dataset: &'a Dataset,
    prepared: &'a Prepared,
    windows: TimeWindows,
    parallelism: Parallelism,
    metrics: Option<MetricsRegistry>,
}

impl<'a> CrowdBuilder<'a> {
    /// Creates a builder over a dataset and its preprocessed form.
    pub fn new(dataset: &'a Dataset, prepared: &'a Prepared) -> CrowdBuilder<'a> {
        CrowdBuilder {
            dataset,
            prepared,
            windows: TimeWindows::hourly(),
            parallelism: Parallelism::Sequential,
            metrics: None,
        }
    }

    /// Sets the display windows (default hourly).
    pub fn windows(mut self, windows: TimeWindows) -> CrowdBuilder<'a> {
        self.windows = windows;
        self
    }

    /// Sets how users fan out over the shared pool during
    /// [`Self::build`] (default sequential). Placements are emitted in
    /// user order regardless of policy, so the model is identical.
    pub fn parallelism(mut self, parallelism: Parallelism) -> CrowdBuilder<'a> {
        self.parallelism = parallelism;
        self
    }

    /// Attaches a metrics registry: [`Self::build`] and
    /// [`Self::update`] record their fan-out wall time. Timing never
    /// alters the produced placements.
    pub fn metrics(mut self, metrics: Option<MetricsRegistry>) -> CrowdBuilder<'a> {
        self.metrics = metrics;
        self
    }

    /// Synchronizes and aggregates every user's patterns into the crowd
    /// model (terminal method).
    ///
    /// # Errors
    ///
    /// Returns [`CrowdError::Prep`] if labeling fails (impossible for
    /// datasets built through the standard builder).
    pub fn build(
        &self,
        patterns: &[UserPatterns],
        grid: MicrocellGrid,
    ) -> Result<CrowdModel, CrowdError> {
        let labeler = Labeler::new(self.dataset, self.prepared.scheme());
        let per_user = parallel_map_observed(
            self.parallelism,
            patterns,
            |up| self.place_user(&labeler, &grid, up),
            self.metrics.as_ref().map(|m| (m, "crowd")),
        );
        // `parallel_map` returns results in input order, so flattening
        // reproduces the sequential placement order exactly.
        let mut placements: Vec<Placement> = Vec::new();
        for user_placements in per_user {
            placements.extend(user_placements?);
        }
        Ok(CrowdModel::new(grid, self.windows.clone(), placements))
    }

    /// Re-synchronizes only the `dirty` users against `previous`,
    /// splicing their fresh placements into the model (a dirty user
    /// with no patterns loses their placements). The builder must be
    /// configured over the *merged* dataset and its re-prepared form,
    /// with the same display windows as `previous` (whose grid is
    /// reused); `patterns` is the full updated pattern list. Under
    /// those preconditions the result is byte-identical to
    /// [`Self::build`] on the same inputs.
    ///
    /// # Errors
    ///
    /// Same as [`Self::build`].
    pub fn update(
        &self,
        previous: &CrowdModel,
        patterns: &[UserPatterns],
        dirty: &BTreeSet<UserId>,
    ) -> Result<(CrowdModel, CrowdDelta), CrowdError> {
        let labeler = Labeler::new(self.dataset, self.prepared.scheme());
        let grid = previous.grid().clone();
        let dirty_patterns: Vec<&UserPatterns> = patterns
            .iter()
            .filter(|up| dirty.contains(&up.user))
            .collect();
        let per_user = parallel_map_observed(
            self.parallelism,
            &dirty_patterns,
            |up| self.place_user(&labeler, &grid, up),
            self.metrics.as_ref().map(|m| (m, "crowd_update")),
        );
        let mut updates: BTreeMap<UserId, Vec<Placement>> = BTreeMap::new();
        for (up, result) in dirty_patterns.iter().zip(per_user) {
            updates.insert(up.user, result?);
        }
        // A dirty user absent from `patterns` (not active) contributes
        // an empty update, clearing any stale placements.
        for &user in dirty {
            updates.entry(user).or_default();
        }
        let mut cells: BTreeSet<(usize, CellId)> = BTreeSet::new();
        let mut removed = 0usize;
        for p in previous
            .placements()
            .iter()
            .filter(|p| updates.contains_key(&p.user))
        {
            removed += 1;
            cells.insert((p.window, p.cell));
        }
        let added: usize = updates.values().map(Vec::len).sum();
        for p in updates.values().flatten() {
            cells.insert((p.window, p.cell));
        }
        let delta = CrowdDelta {
            users_recomputed: updates.len(),
            placements_removed: removed,
            placements_added: added,
            cells_touched: cells.len(),
        };
        Ok((previous.with_user_placements(&updates), delta))
    }

    /// Synchronizes a single user's patterns against every display
    /// window (the per-user unit fanned out by [`Self::build`]).
    fn place_user(
        &self,
        labeler: &Labeler<'_>,
        grid: &MicrocellGrid,
        up: &UserPatterns,
    ) -> Result<Vec<Placement>, CrowdError> {
        let slotting = self.prepared.slotting();
        let window_ref = self.prepared.window();

        // The user's modal venue per (slot, label), from their actual
        // check-ins inside the study window.
        let mut venue_freq: HashMap<(TimeSlot, PlaceLabel), HashMap<VenueId, usize>> =
            HashMap::new();
        for c in self.dataset.checkins_of(up.user) {
            if !window_ref.contains_checkin(c) {
                continue;
            }
            let local = c.local_time();
            let slot = slotting.slot_of(local);
            let label = labeler.label_of(c)?;
            *venue_freq
                .entry((slot, label))
                .or_default()
                .entry(c.venue())
                .or_insert(0) += 1;
        }

        // Best (support-wise) pattern item per slot.
        let mut best_per_slot: HashMap<TimeSlot, (usize, PlaceLabel)> = HashMap::new();
        for p in up.patterns.iter() {
            for item in &p.items {
                let entry = best_per_slot
                    .entry(item.slot)
                    .or_insert((p.support, item.label));
                // Higher support wins; ties prefer the smaller label
                // for determinism.
                if p.support > entry.0 || (p.support == entry.0 && item.label < entry.1) {
                    *entry = (p.support, item.label);
                }
            }
        }

        let mut placements = Vec::new();
        for (w_idx, window) in self.windows.iter().enumerate() {
            // Among slots overlapping this window, take the
            // highest-support item.
            let mut best: Option<(usize, TimeSlot, PlaceLabel)> = None;
            for (&slot, &(support, label)) in &best_per_slot {
                let s_start = slotting.start_hour(slot);
                let s_end = s_start + slotting.slot_hours();
                if window.overlaps_hours(s_start, s_end) {
                    let cand = (support, slot, label);
                    best = Some(match best {
                        None => cand,
                        Some(cur) => {
                            if (cand.0, cur.2) > (cur.0, cand.2) {
                                cand
                            } else {
                                cur
                            }
                        }
                    });
                }
            }
            let Some((support, slot, label)) = best else {
                continue; // no pattern covers this window
            };
            let Some(freqs) = venue_freq.get(&(slot, label)) else {
                continue; // pattern without grounding check-ins
            };
            let (&venue, _) = freqs
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                .expect("freq map entries are non-empty");
            let location = self
                .dataset
                .venue(venue)
                .expect("dataset invariants")
                .location();
            let Some(cell) = grid.cell_of(location) else {
                continue; // venue outside the display grid
            };
            placements.push(Placement {
                user: up.user,
                window: w_idx,
                label,
                support,
                venue,
                cell,
            });
        }
        Ok(placements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_geo::BoundingBox;
    use crowdweb_mobility::PatternMiner;
    use crowdweb_prep::Preprocessor;
    use crowdweb_synth::SynthConfig;

    fn setup() -> (Dataset, Prepared, Vec<UserPatterns>) {
        let dataset = SynthConfig::small(33).generate().unwrap();
        let prepared = Preprocessor::new()
            .min_active_days(20)
            .prepare(&dataset)
            .unwrap();
        // Voluntary check-ins are sparse, so any single routine item
        // appears on a minority of active days; a low threshold recovers
        // the full daily routine (the paper's Fig. 5 shows the same steep
        // sensitivity to min_support).
        let patterns = PatternMiner::new(0.15)
            .unwrap()
            .detect_all(&prepared)
            .unwrap();
        (dataset, prepared, patterns)
    }

    #[test]
    fn placements_reference_valid_everything() {
        let (dataset, prepared, patterns) = setup();
        let grid = MicrocellGrid::new(BoundingBox::NYC, 15, 15).unwrap();
        let model = CrowdBuilder::new(&dataset, &prepared)
            .build(&patterns, grid.clone())
            .unwrap();
        assert!(model.placement_count() > 0, "no placements at all");
        for p in model.placements() {
            assert!(p.window < model.windows().len());
            assert!(dataset.venue(p.venue).is_some());
            assert!(grid.position(p.cell).is_some());
            assert!(p.support > 0);
        }
    }

    #[test]
    fn at_most_one_placement_per_user_per_window() {
        let (dataset, prepared, patterns) = setup();
        let grid = MicrocellGrid::new(BoundingBox::NYC, 15, 15).unwrap();
        let model = CrowdBuilder::new(&dataset, &prepared)
            .build(&patterns, grid)
            .unwrap();
        let mut seen = std::collections::HashSet::new();
        for p in model.placements() {
            assert!(
                seen.insert((p.user, p.window)),
                "duplicate placement for {:?} window {}",
                p.user,
                p.window
            );
        }
    }

    #[test]
    fn placement_cell_matches_venue_location() {
        let (dataset, prepared, patterns) = setup();
        let grid = MicrocellGrid::new(BoundingBox::NYC, 15, 15).unwrap();
        let model = CrowdBuilder::new(&dataset, &prepared)
            .build(&patterns, grid.clone())
            .unwrap();
        for p in model.placements() {
            let loc = dataset.venue(p.venue).unwrap().location();
            assert_eq!(grid.cell_of(loc), Some(p.cell));
        }
    }

    #[test]
    fn morning_crowd_present_for_routine_agents() {
        // Synthetic agents check in at work at 9 am with high regularity,
        // so the 9-10 am window should hold a crowd.
        let (dataset, prepared, patterns) = setup();
        let grid = MicrocellGrid::new(BoundingBox::NYC, 15, 15).unwrap();
        let model = CrowdBuilder::new(&dataset, &prepared)
            .build(&patterns, grid)
            .unwrap();
        let snapshot = model.snapshot_at_hour(9).unwrap();
        assert!(snapshot.total_users() > 0, "9-10 am crowd is empty");
    }

    #[test]
    fn incremental_update_matches_cold_build() {
        let (dataset, prepared, patterns) = setup();
        let grid = MicrocellGrid::new(BoundingBox::NYC, 15, 15).unwrap();
        let builder = CrowdBuilder::new(&dataset, &prepared);
        let cold = builder.build(&patterns, grid.clone()).unwrap();
        // Dirty every third user; patterns are unchanged, so the update
        // must reproduce the cold model exactly.
        let dirty: BTreeSet<UserId> = prepared.users().iter().copied().step_by(3).collect();
        let (updated, delta) = builder.update(&cold, &patterns, &dirty).unwrap();
        assert_eq!(updated, cold);
        assert_eq!(delta.users_recomputed, dirty.len());
        assert_eq!(delta.placements_removed, delta.placements_added);
    }

    #[test]
    fn update_clears_dirty_user_without_patterns() {
        let (dataset, prepared, patterns) = setup();
        let grid = MicrocellGrid::new(BoundingBox::NYC, 15, 15).unwrap();
        let builder = CrowdBuilder::new(&dataset, &prepared);
        let cold = builder.build(&patterns, grid).unwrap();
        let victim = cold.placements()[0].user;
        let without: Vec<UserPatterns> = patterns
            .iter()
            .filter(|up| up.user != victim)
            .cloned()
            .collect();
        let dirty: BTreeSet<UserId> = [victim].into_iter().collect();
        let (updated, delta) = builder.update(&cold, &without, &dirty).unwrap();
        assert!(updated.placements().iter().all(|p| p.user != victim));
        assert_eq!(delta.placements_added, 0);
        assert!(delta.placements_removed > 0);
        assert_eq!(
            updated.placement_count(),
            cold.placement_count() - delta.placements_removed
        );
    }

    #[test]
    fn wider_windows_have_no_fewer_users() {
        let (dataset, prepared, patterns) = setup();
        let grid = MicrocellGrid::new(BoundingBox::NYC, 15, 15).unwrap();
        let hourly = CrowdBuilder::new(&dataset, &prepared)
            .build(&patterns, grid.clone())
            .unwrap();
        let six_hour = CrowdBuilder::new(&dataset, &prepared)
            .windows(TimeWindows::with_width(6).unwrap())
            .build(&patterns, grid)
            .unwrap();
        // A 6-hour window overlapping hour 9 covers at least the users
        // of the 9-10 hourly window.
        let hourly_users = hourly.snapshot_at_hour(9).unwrap().total_users();
        let wide_users = six_hour.snapshot_at_hour(9).unwrap().total_users();
        assert!(wide_users >= hourly_users, "{wide_users} < {hourly_users}");
    }
}
