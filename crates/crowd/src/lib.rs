//! Crowd mobility synchronization and aggregation — the CrowdWeb
//! extension over the per-user iMAP platform.
//!
//! Given every user's mined mobility patterns, the crowd engine answers
//! "where is the crowd between 9 and 10 am?" (the paper's Figures 3–4):
//!
//! 1. **Synchronization** ([`sync`]) — for each user and each time
//!    window, pick the pattern item covering that window (highest
//!    support wins) and ground it at the user's modal venue for that
//!    `(slot, label)` habit. Users whose patterns say nothing about a
//!    window are absent from it, exactly as in the platform's city view.
//! 2. **Aggregation** ([`model`]) — bucket the grounded placements into
//!    microcells per window, yielding crowd distributions, flows between
//!    consecutive windows, and animation frames (the paper's stated
//!    future work, implemented here).
//!
//! # Examples
//!
//! ```
//! use crowdweb_crowd::{CrowdBuilder, TimeWindows};
//! use crowdweb_mobility::PatternMiner;
//! use crowdweb_prep::Preprocessor;
//! use crowdweb_synth::SynthConfig;
//! use crowdweb_geo::{BoundingBox, MicrocellGrid};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dataset = SynthConfig::small(31).generate()?;
//! let prepared = Preprocessor::new().min_active_days(20).prepare(&dataset)?;
//! let patterns = PatternMiner::new(0.4)?.detect_all(&prepared)?;
//! let grid = MicrocellGrid::new(BoundingBox::NYC, 20, 20)?;
//! let model = CrowdBuilder::new(&dataset, &prepared)
//!     .windows(TimeWindows::hourly())
//!     .build(&patterns, grid)?;
//! // The 9-10 am crowd of Fig. 3:
//! let snapshot = model.snapshot_at_hour(9).expect("hourly windows cover 9 am");
//! assert!(snapshot.total_users() <= prepared.user_count());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod driver;
pub mod error;
pub mod hotspot;
pub mod model;
pub mod splice;
pub mod sync;
pub mod validate;
pub mod window;

pub use compare::{compare_snapshots, compare_windows, CellDelta, WindowComparison};
pub use driver::{PipelineDriver, PipelineError, PipelineOutput};
pub use error::CrowdError;
pub use hotspot::{detect_hotspots, recurrent_hotspots, Hotspot, HotspotConfig, HotspotPhase};
pub use model::{CrowdFlow, CrowdModel, CrowdSnapshot};
pub use splice::{CrowdSplice, UserSplice};
pub use sync::{CrowdBuilder, CrowdDelta, Placement};
pub use validate::{validate_against_checkins, ModelFit, WindowFit};
pub use window::{TimeWindow, TimeWindows};
