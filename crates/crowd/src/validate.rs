//! Crowd-model validation: does the synchronized crowd match reality?
//!
//! The crowd view is *derived* — it places users where their mined
//! patterns say they should be. This module closes the loop by
//! comparing, per time window, the model's predicted cell distribution
//! against the *observed* distribution of actual check-ins, giving a
//! quantitative answer to "is the crowd map believable?".

use crate::{CrowdError, CrowdModel, TimeWindow};
use crowdweb_dataset::{Dataset, UserId};
use crowdweb_geo::CellId;
use crowdweb_prep::StudyWindow;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};

/// Fit of one time window: predicted vs observed cell distributions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowFit {
    /// The window.
    pub window: TimeWindow,
    /// Cosine similarity between the predicted and observed cell count
    /// vectors (`0.0` when either side is empty).
    pub cosine: f64,
    /// Users the model places in this window.
    pub predicted_users: usize,
    /// Check-ins observed in this window (filtered users, study window).
    pub observed_checkins: usize,
}

/// Aggregate model fit across all windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelFit {
    /// Per-window fits, in window order.
    pub windows: Vec<WindowFit>,
}

impl ModelFit {
    /// Mean cosine over windows where both sides are non-empty
    /// (`0.0` if none qualify).
    pub fn mean_cosine(&self) -> f64 {
        let populated: Vec<f64> = self
            .windows
            .iter()
            .filter(|w| w.predicted_users > 0 && w.observed_checkins > 0)
            .map(|w| w.cosine)
            .collect();
        if populated.is_empty() {
            0.0
        } else {
            populated.iter().sum::<f64>() / populated.len() as f64
        }
    }

    /// Number of windows with both predictions and observations.
    pub fn populated_windows(&self) -> usize {
        self.windows
            .iter()
            .filter(|w| w.predicted_users > 0 && w.observed_checkins > 0)
            .count()
    }
}

fn cosine(a: &BTreeMap<CellId, usize>, b: &BTreeMap<CellId, usize>) -> f64 {
    let dot: f64 = a
        .iter()
        .filter_map(|(k, &x)| b.get(k).map(|&y| x as f64 * y as f64))
        .sum();
    let norm =
        |m: &BTreeMap<CellId, usize>| m.values().map(|&x| (x as f64).powi(2)).sum::<f64>().sqrt();
    let denom = norm(a) * norm(b);
    if denom == 0.0 {
        0.0
    } else {
        dot / denom
    }
}

/// Validates a crowd model against the observed check-ins of `users`
/// within `study_window`: for every model window, the cosine between
/// the predicted per-cell user counts and the observed per-cell
/// check-in counts.
///
/// # Errors
///
/// Propagates [`CrowdError::WindowOutOfRange`] (cannot occur for a
/// well-formed model).
///
/// # Examples
///
/// ```
/// # use crowdweb_crowd::{validate_against_checkins, CrowdBuilder};
/// # use crowdweb_mobility::PatternMiner;
/// # use crowdweb_prep::Preprocessor;
/// # use crowdweb_synth::SynthConfig;
/// # use crowdweb_geo::{BoundingBox, MicrocellGrid};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let dataset = SynthConfig::small(31).generate()?;
/// # let prepared = Preprocessor::new().min_active_days(20).prepare(&dataset)?;
/// # let patterns = PatternMiner::new(0.15)?.detect_all(&prepared)?;
/// # let grid = MicrocellGrid::new(BoundingBox::NYC, 20, 20)?;
/// # let model = CrowdBuilder::new(&dataset, &prepared).build(&patterns, grid)?;
/// let fit = validate_against_checkins(
///     &model, &dataset, prepared.users(), prepared.window())?;
/// assert!(fit.mean_cosine() > 0.0, "the crowd map must resemble reality");
/// # Ok(())
/// # }
/// ```
pub fn validate_against_checkins(
    model: &CrowdModel,
    dataset: &Dataset,
    users: &[UserId],
    study_window: &StudyWindow,
) -> Result<ModelFit, CrowdError> {
    let user_set: HashSet<UserId> = users.iter().copied().collect();

    // Observed: check-ins per (window index, cell).
    let mut observed: Vec<BTreeMap<CellId, usize>> = vec![BTreeMap::new(); model.windows().len()];
    for c in dataset.checkins() {
        if !user_set.contains(&c.user()) || !study_window.contains_checkin(c) {
            continue;
        }
        let local = c.local_time();
        let Some(w) = model.windows().index_of_hour(local.hour) else {
            continue;
        };
        let Some(venue) = dataset.venue(c.venue()) else {
            continue;
        };
        let Some(cell) = model.grid().cell_of(venue.location()) else {
            continue;
        };
        *observed[w].entry(cell).or_insert(0) += 1;
    }

    let mut windows = Vec::with_capacity(model.windows().len());
    for (w, obs) in observed.iter().enumerate() {
        let snapshot = model.snapshot(w)?;
        windows.push(WindowFit {
            window: snapshot.window,
            cosine: cosine(&snapshot.cells, obs),
            predicted_users: snapshot.total_users(),
            observed_checkins: obs.values().sum(),
        });
    }
    Ok(ModelFit { windows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CrowdBuilder;
    use crowdweb_geo::{BoundingBox, MicrocellGrid};
    use crowdweb_mobility::PatternMiner;
    use crowdweb_prep::Preprocessor;
    use crowdweb_synth::SynthConfig;

    fn fit() -> ModelFit {
        let dataset = SynthConfig::small(31).generate().unwrap();
        let prepared = Preprocessor::new()
            .min_active_days(20)
            .prepare(&dataset)
            .unwrap();
        let patterns = PatternMiner::new(0.15)
            .unwrap()
            .detect_all(&prepared)
            .unwrap();
        let grid = MicrocellGrid::new(BoundingBox::NYC, 20, 20).unwrap();
        let model = CrowdBuilder::new(&dataset, &prepared)
            .build(&patterns, grid)
            .unwrap();
        validate_against_checkins(&model, &dataset, prepared.users(), prepared.window()).unwrap()
    }

    #[test]
    fn model_resembles_observed_reality() {
        let fit = fit();
        assert!(fit.populated_windows() > 0, "nothing to validate");
        // The model is *built from* patterns mined on this data, so the
        // fit must be strong where both sides exist.
        assert!(
            fit.mean_cosine() > 0.4,
            "mean cosine {} too low",
            fit.mean_cosine()
        );
    }

    #[test]
    fn per_window_fits_are_bounded() {
        let fit = fit();
        assert_eq!(fit.windows.len(), 24);
        for w in &fit.windows {
            assert!((0.0..=1.0 + 1e-9).contains(&w.cosine), "{w:?}");
        }
    }

    #[test]
    fn cosine_helper_properties() {
        let mut a = BTreeMap::new();
        a.insert(CellId(1), 2usize);
        a.insert(CellId(2), 1usize);
        // Identical vectors -> 1.
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-12);
        // Orthogonal -> 0.
        let mut b = BTreeMap::new();
        b.insert(CellId(9), 5usize);
        assert_eq!(cosine(&a, &b), 0.0);
        // Empty -> 0.
        assert_eq!(cosine(&a, &BTreeMap::new()), 0.0);
    }

    #[test]
    fn mean_cosine_ignores_empty_windows() {
        let fit = ModelFit {
            windows: vec![
                WindowFit {
                    window: TimeWindow::new(0, 1).unwrap(),
                    cosine: 0.0,
                    predicted_users: 0,
                    observed_checkins: 0,
                },
                WindowFit {
                    window: TimeWindow::new(9, 10).unwrap(),
                    cosine: 0.8,
                    predicted_users: 5,
                    observed_checkins: 9,
                },
            ],
        };
        assert_eq!(fit.mean_cosine(), 0.8);
        assert_eq!(fit.populated_windows(), 1);
    }
}
