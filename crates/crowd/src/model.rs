//! The aggregated crowd model: distributions, flows, animation.

use crate::{CrowdError, Placement, TimeWindow, TimeWindows};
use crowdweb_dataset::UserId;
use crowdweb_geo::{CellId, CellStore, MicrocellGrid};
use crowdweb_prep::PlaceLabel;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The crowd's distribution in one time window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrowdSnapshot {
    /// The window this snapshot describes.
    pub window: TimeWindow,
    /// Users per occupied microcell.
    pub cells: BTreeMap<CellId, usize>,
    /// Users per place label (what *kind* of place the crowd is at).
    pub labels: BTreeMap<PlaceLabel, usize>,
}

impl CrowdSnapshot {
    /// Total users placed in this window.
    pub fn total_users(&self) -> usize {
        self.cells.values().sum()
    }

    /// Occupied cells, busiest first (ties by cell id).
    pub fn busiest_cells(&self) -> Vec<(CellId, usize)> {
        let mut v: Vec<(CellId, usize)> = self.cells.iter().map(|(&c, &n)| (c, n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Number of distinct occupied cells.
    pub fn occupied_cell_count(&self) -> usize {
        self.cells.len()
    }
}

/// A movement of crowd mass between two cells across consecutive
/// windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrowdFlow {
    /// Cell users were in during the earlier window.
    pub from: CellId,
    /// Cell they are in during the later window.
    pub to: CellId,
    /// Number of users making this move.
    pub count: usize,
}

/// The full synchronized, aggregated crowd: placements for every user
/// and window, with query methods for snapshots, flows, and animation
/// frames.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrowdModel {
    grid: MicrocellGrid,
    windows: TimeWindows,
    placements: Vec<Placement>,
}

impl CrowdModel {
    /// Assembles a model from placements (used by
    /// [`crate::CrowdBuilder`]).
    pub fn new(grid: MicrocellGrid, windows: TimeWindows, placements: Vec<Placement>) -> Self {
        CrowdModel {
            grid,
            windows,
            placements,
        }
    }

    /// The microcell grid placements refer to.
    pub fn grid(&self) -> &MicrocellGrid {
        &self.grid
    }

    /// The time windows of the model.
    pub fn windows(&self) -> &TimeWindows {
        &self.windows
    }

    /// All placements.
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Total number of placements across all windows.
    pub fn placement_count(&self) -> usize {
        self.placements.len()
    }

    /// A new model with the given users' placements replaced (an empty
    /// vector removes a user), splicing each update into its sorted
    /// position. Grid and windows are carried over unchanged.
    ///
    /// Placements built by [`crate::CrowdBuilder::build`] are grouped
    /// by user in ascending user order (each group in window order);
    /// this method preserves that invariant, so incremental updates
    /// remain byte-identical to a cold rebuild of the same placements.
    pub fn with_user_placements(&self, updates: &BTreeMap<UserId, Vec<Placement>>) -> CrowdModel {
        let old = &self.placements;
        let mut out = Vec::with_capacity(old.len());
        let mut pending = updates.iter().peekable();
        let mut i = 0;
        while i < old.len() {
            let user = old[i].user;
            // Updated users sorting strictly before this one are new.
            while let Some((_, ps)) = pending.next_if(|&(&u, _)| u < user) {
                out.extend(ps.iter().copied());
            }
            if let Some((_, ps)) = pending.next_if(|&(&u, _)| u == user) {
                out.extend(ps.iter().copied());
                while i < old.len() && old[i].user == user {
                    i += 1; // skip the replaced run
                }
                continue;
            }
            while i < old.len() && old[i].user == user {
                out.push(old[i]);
                i += 1;
            }
        }
        for (_, ps) in pending {
            out.extend(ps.iter().copied());
        }
        CrowdModel::new(self.grid.clone(), self.windows.clone(), out)
    }

    /// The crowd snapshot for the window at `index`.
    ///
    /// # Errors
    ///
    /// Returns [`CrowdError::WindowOutOfRange`] for a bad index.
    pub fn snapshot(&self, index: usize) -> Result<CrowdSnapshot, CrowdError> {
        let window = self
            .windows
            .get(index)
            .ok_or(CrowdError::WindowOutOfRange(index))?;
        // Aggregate through a CellStore: dense for display-sized grids,
        // sparse (priced by occupancy) for sub-meter/huge extents. Both
        // yield the same ascending-CellId order, so the snapshot is
        // byte-identical regardless of the backing.
        let mut cells = CellStore::for_grid(&self.grid);
        let mut labels: BTreeMap<PlaceLabel, usize> = BTreeMap::new();
        for p in self.placements.iter().filter(|p| p.window == index) {
            cells.add(p.cell, 1);
            *labels.entry(p.label).or_insert(0) += 1;
        }
        Ok(CrowdSnapshot {
            window,
            cells: cells.into_sorted().into_iter().collect(),
            labels,
        })
    }

    /// The snapshot of the window containing `hour`, or `None` if no
    /// window covers it.
    pub fn snapshot_at_hour(&self, hour: u8) -> Option<CrowdSnapshot> {
        let idx = self.windows.index_of_hour(hour)?;
        self.snapshot(idx).ok()
    }

    /// Like [`Self::snapshot`], restricted to users placed at one place
    /// label — "show me only the shoppers" (the paper's microcell
    /// example names exactly this view).
    ///
    /// # Errors
    ///
    /// Returns [`CrowdError::WindowOutOfRange`] for a bad index.
    pub fn snapshot_by_label(
        &self,
        index: usize,
        label: PlaceLabel,
    ) -> Result<CrowdSnapshot, CrowdError> {
        let window = self
            .windows
            .get(index)
            .ok_or(CrowdError::WindowOutOfRange(index))?;
        let mut cells = CellStore::for_grid(&self.grid);
        let mut labels: BTreeMap<PlaceLabel, usize> = BTreeMap::new();
        for p in self
            .placements
            .iter()
            .filter(|p| p.window == index && p.label == label)
        {
            cells.add(p.cell, 1);
            *labels.entry(p.label).or_insert(0) += 1;
        }
        Ok(CrowdSnapshot {
            window,
            cells: cells.into_sorted().into_iter().collect(),
            labels,
        })
    }

    /// Crowd flows between two windows: for users placed in both, how
    /// many moved from each cell to each cell. Flows where `from == to`
    /// (users staying put) are included; interpret as "remained".
    ///
    /// # Errors
    ///
    /// Returns [`CrowdError::WindowOutOfRange`] for bad indices.
    pub fn flows(
        &self,
        from_window: usize,
        to_window: usize,
    ) -> Result<Vec<CrowdFlow>, CrowdError> {
        if self.windows.get(from_window).is_none() {
            return Err(CrowdError::WindowOutOfRange(from_window));
        }
        if self.windows.get(to_window).is_none() {
            return Err(CrowdError::WindowOutOfRange(to_window));
        }
        let mut at_from: BTreeMap<crowdweb_dataset::UserId, CellId> = BTreeMap::new();
        for p in self.placements.iter().filter(|p| p.window == from_window) {
            at_from.insert(p.user, p.cell);
        }
        let mut flows: BTreeMap<(CellId, CellId), usize> = BTreeMap::new();
        for p in self.placements.iter().filter(|p| p.window == to_window) {
            if let Some(&from_cell) = at_from.get(&p.user) {
                *flows.entry((from_cell, p.cell)).or_insert(0) += 1;
            }
        }
        Ok(flows
            .into_iter()
            .map(|((from, to), count)| CrowdFlow { from, to, count })
            .collect())
    }

    /// All snapshots in window order — the animation frame sequence (the
    /// paper's future-work feature).
    pub fn animation_frames(&self) -> Vec<CrowdSnapshot> {
        (0..self.windows.len())
            .map(|i| self.snapshot(i).expect("index in range"))
            .collect()
    }

    /// Sum of users over all windows (a user appearing in `k` windows
    /// counts `k` times).
    pub fn total_appearances(&self) -> usize {
        self.placements.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_dataset::UserId;
    use crowdweb_dataset::VenueId;
    use crowdweb_geo::BoundingBox;

    fn grid() -> MicrocellGrid {
        MicrocellGrid::new(BoundingBox::NYC, 4, 4).unwrap()
    }

    fn placement(user: u32, window: usize, cell: u64) -> Placement {
        Placement {
            user: UserId::new(user),
            window,
            label: PlaceLabel(0),
            support: 1,
            venue: VenueId::new(0),
            cell: CellId(cell),
        }
    }

    fn model() -> CrowdModel {
        // Window 9: users 1,2 in cell 5, user 3 in cell 6.
        // Window 10: user 1 stays in 5, user 2 moves to 6, user 3 absent.
        CrowdModel::new(
            grid(),
            TimeWindows::hourly(),
            vec![
                placement(1, 9, 5),
                placement(2, 9, 5),
                placement(3, 9, 6),
                placement(1, 10, 5),
                placement(2, 10, 6),
            ],
        )
    }

    #[test]
    fn snapshot_counts_cells() {
        let m = model();
        let s = m.snapshot(9).unwrap();
        assert_eq!(s.total_users(), 3);
        assert_eq!(s.cells[&CellId(5)], 2);
        assert_eq!(s.cells[&CellId(6)], 1);
        assert_eq!(s.occupied_cell_count(), 2);
        assert_eq!(s.busiest_cells()[0], (CellId(5), 2));
        assert_eq!(s.window.label(), "9-10 am");
    }

    #[test]
    fn snapshot_by_label_filters() {
        // Add a second label to the model.
        let mut placements = vec![placement(1, 9, 5), placement(2, 9, 5)];
        placements.push(Placement {
            user: UserId::new(3),
            window: 9,
            label: PlaceLabel(7),
            support: 1,
            venue: VenueId::new(0),
            cell: CellId(6),
        });
        let m = CrowdModel::new(grid(), TimeWindows::hourly(), placements);
        let shoppers = m.snapshot_by_label(9, PlaceLabel(7)).unwrap();
        assert_eq!(shoppers.total_users(), 1);
        assert_eq!(shoppers.cells[&CellId(6)], 1);
        let others = m.snapshot_by_label(9, PlaceLabel(0)).unwrap();
        assert_eq!(others.total_users(), 2);
        assert!(m.snapshot_by_label(99, PlaceLabel(0)).is_err());
    }

    #[test]
    fn snapshot_labels_aggregate() {
        let m = model();
        let s = m.snapshot(9).unwrap();
        assert_eq!(s.labels[&PlaceLabel(0)], 3);
    }

    #[test]
    fn empty_window_snapshot() {
        let m = model();
        let s = m.snapshot(0).unwrap();
        assert_eq!(s.total_users(), 0);
        assert!(s.cells.is_empty());
    }

    #[test]
    fn out_of_range_errors() {
        let m = model();
        assert!(matches!(
            m.snapshot(99),
            Err(CrowdError::WindowOutOfRange(99))
        ));
        assert!(m.flows(0, 99).is_err());
        assert!(m.flows(99, 0).is_err());
    }

    #[test]
    fn flows_track_movement() {
        let m = model();
        let flows = m.flows(9, 10).unwrap();
        // user1: 5->5, user2: 5->6; user3 absent from window 10.
        assert_eq!(flows.len(), 2);
        assert!(flows.contains(&CrowdFlow {
            from: CellId(5),
            to: CellId(5),
            count: 1
        }));
        assert!(flows.contains(&CrowdFlow {
            from: CellId(5),
            to: CellId(6),
            count: 1
        }));
    }

    #[test]
    fn snapshot_at_hour_resolves_window() {
        let m = model();
        assert_eq!(m.snapshot_at_hour(9).unwrap().total_users(), 3);
        assert_eq!(m.snapshot_at_hour(10).unwrap().total_users(), 2);
    }

    #[test]
    fn animation_frames_cover_all_windows() {
        let m = model();
        let frames = m.animation_frames();
        assert_eq!(frames.len(), 24);
        let total: usize = frames.iter().map(CrowdSnapshot::total_users).sum();
        assert_eq!(total, m.total_appearances());
    }

    #[test]
    fn snapshot_works_on_formerly_too_large_grids() {
        // 2^16 x 2^16 = 2^32 cells used to be GridTooLarge; the sparse
        // store aggregates it with memory proportional to occupancy.
        let g = MicrocellGrid::new(BoundingBox::NYC, 1 << 16, 1 << 16).unwrap();
        let far = g.len() - 2;
        let m = CrowdModel::new(
            g,
            TimeWindows::hourly(),
            vec![placement(1, 9, 5), placement(2, 9, far), placement(3, 9, 5)],
        );
        let s = m.snapshot(9).unwrap();
        assert_eq!(s.cells[&CellId(5)], 2);
        assert_eq!(s.cells[&CellId(far)], 1);
        assert_eq!(s.occupied_cell_count(), 2);
    }

    #[test]
    fn snapshot_is_identical_under_dense_and_sparse_backings() {
        // The same placements aggregated on a dense-backed grid and on
        // a sparse-backed grid (same extent, huge dims scaled) must
        // produce identical cell maps when the ids coincide.
        let dense_grid = MicrocellGrid::new(BoundingBox::NYC, 16, 16).unwrap();
        let placements = vec![
            placement(1, 9, 5),
            placement(2, 9, 5),
            placement(3, 9, 200),
            placement(4, 9, 255),
        ];
        let dense_model = CrowdModel::new(dense_grid, TimeWindows::hourly(), placements.clone());
        // Force the sparse path by making the grid exceed DENSE_LIMIT
        // while keeping all placement ids valid.
        let sparse_grid = MicrocellGrid::new(BoundingBox::NYC, 1 << 13, 1 << 13).unwrap();
        let sparse_model = CrowdModel::new(sparse_grid, TimeWindows::hourly(), placements);
        let d = dense_model.snapshot(9).unwrap();
        let s = sparse_model.snapshot(9).unwrap();
        assert_eq!(d.cells, s.cells);
        assert_eq!(d.labels, s.labels);
    }

    #[test]
    fn crowd_moves_between_windows() {
        // The paper's Fig 3 vs Fig 4 claim: distributions differ across
        // windows.
        let m = model();
        let s9 = m.snapshot(9).unwrap();
        let s10 = m.snapshot(10).unwrap();
        assert_ne!(s9.cells, s10.cells);
    }
}
