//! Crowd splices: cell-level deltas between consecutive epoch models.
//!
//! An epoch rarely moves more than a handful of users, yet publishing
//! it used to mean retaining a full placement clone per epoch. A
//! [`CrowdSplice`] records only the per-user placement runs that
//! actually changed between two [`CrowdModel`]s, so an epoch history
//! can keep deltas and materialize any retained epoch as *nearest full
//! snapshot + delta chain*.
//!
//! The splice algebra is exact, not approximate:
//!
//! - [`CrowdSplice::between`]`(a, b)` then [`CrowdSplice::apply`]`(a)`
//!   reproduces `b` byte-for-byte (placement order included, because
//!   `apply` goes through [`CrowdModel::with_user_placements`], which
//!   preserves the builder's user-grouped ordering invariant);
//! - [`CrowdSplice::invert`] swaps the two directions, so applying a
//!   splice and then its inverse is the identity.
//!
//! Splices only describe placements. Grid and windows are carried over
//! from the model a splice is applied to, so a splice is only valid
//! between models sharing them — [`CrowdSplice::between`] debug-asserts
//! that; epochs that rebuild the grid or windows must be retained as
//! full snapshots instead.

use crate::{CrowdModel, Placement};
use crowdweb_dataset::UserId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One user's placement change between two models: the run they had
/// `before` and the run they have `after` (either may be empty — a
/// user appearing in or vanishing from the crowd).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserSplice {
    /// The user whose placements changed.
    pub user: UserId,
    /// The user's placements in the earlier model (window order).
    pub before: Vec<Placement>,
    /// The user's placements in the later model (window order).
    pub after: Vec<Placement>,
}

/// The cell-level delta between two consecutive crowd models: one
/// [`UserSplice`] per changed user, ascending by user id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrowdSplice {
    changes: Vec<UserSplice>,
}

/// Splits a user-grouped placement slice into `(user, run)` pairs in
/// order of appearance.
fn user_runs(placements: &[Placement]) -> Vec<(UserId, &[Placement])> {
    let mut runs = Vec::new();
    let mut i = 0;
    while i < placements.len() {
        let user = placements[i].user;
        let start = i;
        while i < placements.len() && placements[i].user == user {
            i += 1;
        }
        runs.push((user, &placements[start..i]));
    }
    runs
}

impl CrowdSplice {
    /// Computes the splice turning `before` into `after` by
    /// merge-walking the two user-grouped placement lists. Users whose
    /// runs are identical contribute nothing.
    pub fn between(before: &CrowdModel, after: &CrowdModel) -> CrowdSplice {
        debug_assert!(
            before.grid() == after.grid() && before.windows() == after.windows(),
            "splices require a shared grid and window set"
        );
        let old = user_runs(before.placements());
        let new = user_runs(after.placements());
        let mut changes = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < old.len() || j < new.len() {
            match (old.get(i), new.get(j)) {
                (Some(&(u, run_a)), Some(&(v, run_b))) if u == v => {
                    if run_a != run_b {
                        changes.push(UserSplice {
                            user: u,
                            before: run_a.to_vec(),
                            after: run_b.to_vec(),
                        });
                    }
                    i += 1;
                    j += 1;
                }
                (Some(&(u, run_a)), Some(&(v, _))) if u < v => {
                    changes.push(UserSplice {
                        user: u,
                        before: run_a.to_vec(),
                        after: Vec::new(),
                    });
                    i += 1;
                }
                (Some(_), Some(&(v, run_b))) => {
                    changes.push(UserSplice {
                        user: v,
                        before: Vec::new(),
                        after: run_b.to_vec(),
                    });
                    j += 1;
                }
                (Some(&(u, run_a)), None) => {
                    changes.push(UserSplice {
                        user: u,
                        before: run_a.to_vec(),
                        after: Vec::new(),
                    });
                    i += 1;
                }
                (None, Some(&(v, run_b))) => {
                    changes.push(UserSplice {
                        user: v,
                        before: Vec::new(),
                        after: run_b.to_vec(),
                    });
                    j += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        CrowdSplice { changes }
    }

    /// Applies the splice to a model, producing the later model. Exact:
    /// for `s = between(a, b)`, `s.apply(&a) == b` including placement
    /// order.
    pub fn apply(&self, model: &CrowdModel) -> CrowdModel {
        let updates: BTreeMap<UserId, Vec<Placement>> = self
            .changes
            .iter()
            .map(|c| (c.user, c.after.clone()))
            .collect();
        model.with_user_placements(&updates)
    }

    /// The reverse splice: applying `between(a, b)` then its inverse
    /// restores `a`.
    pub fn invert(&self) -> CrowdSplice {
        CrowdSplice {
            changes: self
                .changes
                .iter()
                .map(|c| UserSplice {
                    user: c.user,
                    before: c.after.clone(),
                    after: c.before.clone(),
                })
                .collect(),
        }
    }

    /// The per-user changes, ascending by user id.
    pub fn changes(&self) -> &[UserSplice] {
        &self.changes
    }

    /// Whether the two models were identical.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Number of users whose placements changed.
    pub fn user_count(&self) -> usize {
        self.changes.len()
    }

    /// Approximate resident heap size of the splice in bytes — the
    /// quantity the history store's `resident_bytes` gauges report.
    pub fn resident_bytes(&self) -> usize {
        let per_placement = std::mem::size_of::<Placement>();
        self.changes
            .iter()
            .map(|c| {
                std::mem::size_of::<UserSplice>() + (c.before.len() + c.after.len()) * per_placement
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TimeWindows;
    use crowdweb_dataset::VenueId;
    use crowdweb_geo::{BoundingBox, CellId, MicrocellGrid};
    use crowdweb_prep::PlaceLabel;

    fn grid() -> MicrocellGrid {
        MicrocellGrid::new(BoundingBox::NYC, 4, 4).unwrap()
    }

    fn placement(user: u32, window: usize, cell: u64) -> Placement {
        Placement {
            user: UserId::new(user),
            window,
            label: PlaceLabel(0),
            support: 1,
            venue: VenueId::new(0),
            cell: CellId(cell),
        }
    }

    fn model(placements: Vec<Placement>) -> CrowdModel {
        CrowdModel::new(grid(), TimeWindows::hourly(), placements)
    }

    #[test]
    fn between_then_apply_reproduces_the_target() {
        let a = model(vec![
            placement(1, 9, 5),
            placement(1, 10, 5),
            placement(2, 9, 5),
            placement(4, 9, 6),
        ]);
        // User 1 moves, user 2 vanishes, user 3 appears, user 4 stays.
        let b = model(vec![
            placement(1, 9, 7),
            placement(1, 10, 5),
            placement(3, 9, 2),
            placement(4, 9, 6),
        ]);
        let splice = CrowdSplice::between(&a, &b);
        assert_eq!(splice.user_count(), 3, "user 4 did not change");
        assert_eq!(splice.apply(&a), b);
        assert_eq!(
            serde_json::to_string(&splice.apply(&a)).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "application must be byte-exact"
        );
    }

    #[test]
    fn invert_restores_the_source() {
        let a = model(vec![placement(1, 9, 5), placement(2, 9, 5)]);
        let b = model(vec![placement(2, 9, 6), placement(3, 11, 1)]);
        let splice = CrowdSplice::between(&a, &b);
        assert_eq!(splice.invert().apply(&b), a);
        assert_eq!(splice.invert().apply(&splice.apply(&a)), a);
    }

    #[test]
    fn identical_models_yield_an_empty_splice() {
        let a = model(vec![placement(1, 9, 5)]);
        let splice = CrowdSplice::between(&a, &a.clone());
        assert!(splice.is_empty());
        assert_eq!(splice.resident_bytes(), 0);
        assert_eq!(splice.apply(&a), a);
    }

    #[test]
    fn resident_bytes_scale_with_changed_runs() {
        let a = model(vec![placement(1, 9, 5)]);
        let b = model(vec![placement(1, 9, 6), placement(2, 9, 6)]);
        let splice = CrowdSplice::between(&a, &b);
        assert!(splice.resident_bytes() >= 3 * std::mem::size_of::<Placement>());
        assert!(splice.resident_bytes() < 1024, "two users stay tiny");
    }

    #[test]
    fn serde_round_trip() {
        let a = model(vec![placement(1, 9, 5)]);
        let b = model(vec![placement(1, 9, 6)]);
        let splice = CrowdSplice::between(&a, &b);
        let json = serde_json::to_string(&splice).unwrap();
        let back: CrowdSplice = serde_json::from_str(&json).unwrap();
        assert_eq!(back, splice);
        assert_eq!(back.changes()[0].user, UserId::new(1));
    }
}
