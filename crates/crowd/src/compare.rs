//! Window comparison: the Figure 3 vs Figure 4 contrast as data.
//!
//! Given two crowd snapshots, [`compare_windows`] reports per-cell
//! gains and losses and summary statistics, so "the crowd moved" is a
//! queryable fact rather than a visual impression.

use crate::{CrowdError, CrowdModel, CrowdSnapshot};
use crowdweb_geo::CellId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Per-cell difference between two windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellDelta {
    /// The cell.
    pub cell: CellId,
    /// Users in the earlier window.
    pub before: usize,
    /// Users in the later window.
    pub after: usize,
}

impl CellDelta {
    /// Signed change (`after - before`).
    pub fn change(&self) -> i64 {
        self.after as i64 - self.before as i64
    }
}

/// The comparison of two crowd windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowComparison {
    /// Label of the earlier window.
    pub before_window: String,
    /// Label of the later window.
    pub after_window: String,
    /// Every cell occupied in either window, with both counts, sorted
    /// by the magnitude of the change (descending).
    pub deltas: Vec<CellDelta>,
    /// Total users in the earlier window.
    pub before_total: usize,
    /// Total users in the later window.
    pub after_total: usize,
}

impl WindowComparison {
    /// Cells that gained users, largest gain first.
    pub fn gains(&self) -> Vec<CellDelta> {
        self.deltas
            .iter()
            .filter(|d| d.change() > 0)
            .copied()
            .collect()
    }

    /// Cells that lost users, largest loss first.
    pub fn losses(&self) -> Vec<CellDelta> {
        self.deltas
            .iter()
            .filter(|d| d.change() < 0)
            .copied()
            .collect()
    }

    /// Total absolute per-cell movement (a crowd-churn measure):
    /// `sum(|after - before|)`.
    pub fn churn(&self) -> u64 {
        self.deltas.iter().map(|d| d.change().unsigned_abs()).sum()
    }
}

/// Compares two snapshots cell by cell.
pub fn compare_snapshots(before: &CrowdSnapshot, after: &CrowdSnapshot) -> WindowComparison {
    let cells: BTreeSet<CellId> = before
        .cells
        .keys()
        .chain(after.cells.keys())
        .copied()
        .collect();
    let mut deltas: Vec<CellDelta> = cells
        .into_iter()
        .map(|cell| CellDelta {
            cell,
            before: before.cells.get(&cell).copied().unwrap_or(0),
            after: after.cells.get(&cell).copied().unwrap_or(0),
        })
        .collect();
    deltas.sort_by(|a, b| {
        b.change()
            .abs()
            .cmp(&a.change().abs())
            .then(a.cell.cmp(&b.cell))
    });
    WindowComparison {
        before_window: before.window.label(),
        after_window: after.window.label(),
        before_total: before.total_users(),
        after_total: after.total_users(),
        deltas,
    }
}

/// Compares the windows containing two hours of a crowd model.
///
/// # Errors
///
/// Returns [`CrowdError::WindowOutOfRange`] if no window covers either
/// hour.
///
/// # Examples
///
/// ```
/// # use crowdweb_crowd::{compare_windows, CrowdBuilder};
/// # use crowdweb_mobility::PatternMiner;
/// # use crowdweb_prep::Preprocessor;
/// # use crowdweb_synth::SynthConfig;
/// # use crowdweb_geo::{BoundingBox, MicrocellGrid};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let dataset = SynthConfig::small(31).generate()?;
/// # let prepared = Preprocessor::new().min_active_days(20).prepare(&dataset)?;
/// # let patterns = PatternMiner::new(0.15)?.detect_all(&prepared)?;
/// # let grid = MicrocellGrid::new(BoundingBox::NYC, 20, 20)?;
/// # let model = CrowdBuilder::new(&dataset, &prepared).build(&patterns, grid)?;
/// let cmp = compare_windows(&model, 9, 19)?;
/// println!("churn between {} and {}: {}", cmp.before_window, cmp.after_window, cmp.churn());
/// # Ok(())
/// # }
/// ```
pub fn compare_windows(
    model: &CrowdModel,
    before_hour: u8,
    after_hour: u8,
) -> Result<WindowComparison, CrowdError> {
    let before = model
        .snapshot_at_hour(before_hour)
        .ok_or(CrowdError::WindowOutOfRange(usize::from(before_hour)))?;
    let after = model
        .snapshot_at_hour(after_hour)
        .ok_or(CrowdError::WindowOutOfRange(usize::from(after_hour)))?;
    Ok(compare_snapshots(&before, &after))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TimeWindow;
    use crowdweb_prep::PlaceLabel;
    use std::collections::BTreeMap;

    fn snapshot(hour: u8, cells: &[(u64, usize)]) -> CrowdSnapshot {
        CrowdSnapshot {
            window: TimeWindow::new(hour, hour + 1).unwrap(),
            cells: cells.iter().map(|&(c, n)| (CellId(c), n)).collect(),
            labels: BTreeMap::<PlaceLabel, usize>::new(),
        }
    }

    #[test]
    fn deltas_cover_union_of_cells() {
        let before = snapshot(9, &[(1, 5), (2, 3)]);
        let after = snapshot(10, &[(2, 1), (3, 4)]);
        let cmp = compare_snapshots(&before, &after);
        assert_eq!(cmp.deltas.len(), 3);
        assert_eq!(cmp.before_total, 8);
        assert_eq!(cmp.after_total, 5);
        // Sorted by |change| desc: cell1 (-5), cell3 (+4), cell2 (-2).
        assert_eq!(cmp.deltas[0].cell, CellId(1));
        assert_eq!(cmp.deltas[0].change(), -5);
        assert_eq!(cmp.deltas[1].cell, CellId(3));
        assert_eq!(cmp.deltas[1].change(), 4);
    }

    #[test]
    fn gains_losses_and_churn() {
        let before = snapshot(9, &[(1, 5), (2, 3)]);
        let after = snapshot(10, &[(2, 1), (3, 4)]);
        let cmp = compare_snapshots(&before, &after);
        assert_eq!(cmp.gains().len(), 1);
        assert_eq!(cmp.gains()[0].cell, CellId(3));
        assert_eq!(cmp.losses().len(), 2);
        assert_eq!(cmp.churn(), 5 + 4 + 2);
    }

    #[test]
    fn identical_windows_have_zero_churn() {
        let s = snapshot(9, &[(1, 5)]);
        let cmp = compare_snapshots(&s, &s);
        assert_eq!(cmp.churn(), 0);
        assert!(cmp.gains().is_empty());
        assert!(cmp.losses().is_empty());
    }

    #[test]
    fn labels_come_from_windows() {
        let before = snapshot(9, &[]);
        let after = snapshot(19, &[]);
        let cmp = compare_snapshots(&before, &after);
        assert_eq!(cmp.before_window, "9-10 am");
        assert_eq!(cmp.after_window, "7-8 pm");
    }
}
