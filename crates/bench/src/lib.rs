//! Shared fixtures for the CrowdWeb benchmark suite.
//!
//! Every bench target regenerates one table or figure of the paper:
//! it prints the measured rows/series (so `cargo bench` output *is* the
//! reproduction), then times the computation with Criterion.
//!
//! Scales:
//! - `mid_context()` — 120 users, 3 months: the default bench fixture.
//! - `paper_context()` — 1,083 users, 11 months: the paper's scale,
//!   used by the dataset-stats bench (set `CROWDWEB_BENCH_PAPER=1` to
//!   use it everywhere).

use crowdweb_analytics::ExperimentContext;
use crowdweb_prep::Preprocessor;
use crowdweb_synth::SynthConfig;
use std::sync::OnceLock;

/// The mid-sized benchmark context (built once per process).
pub fn mid_context() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| {
        if paper_scale_requested() {
            ExperimentContext::paper_scale(2030).expect("paper context builds")
        } else {
            ExperimentContext::build(
                &SynthConfig::small(2030).users(120).venues(1500),
                &Preprocessor::new().min_active_days(20),
            )
            .expect("mid context builds")
        }
    })
}

/// The full paper-scale context (1,083 users, 11 months; built once).
pub fn paper_context() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::paper_scale(2030).expect("paper context builds"))
}

/// Whether `CROWDWEB_BENCH_PAPER=1` asked for full-scale benches.
pub fn paper_scale_requested() -> bool {
    std::env::var("CROWDWEB_BENCH_PAPER").is_ok_and(|v| v == "1")
}

/// Prints a labelled header so bench logs read as experiment reports.
pub fn banner(experiment: &str, paper_expectation: &str) {
    println!("\n================================================================");
    println!("{experiment}");
    println!("paper expectation: {paper_expectation}");
    println!("================================================================");
}
