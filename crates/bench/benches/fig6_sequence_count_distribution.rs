//! **Figure 6** — distribution of the number of sequences per user at
//! `min_support = 0.5`. Prints the histogram, then times the mine.

use criterion::{criterion_group, criterion_main, Criterion};
use crowdweb_analytics::fig6_sequence_count_distribution;
use crowdweb_bench::{banner, mid_context};
use crowdweb_viz::chart::bin_values;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = mid_context();
    banner(
        "Figure 6: distribution of sequence counts (min_support = 0.5)",
        "unimodal, right-skewed histogram over users",
    );
    let values = fig6_sequence_count_distribution(ctx, 0.5).unwrap();
    for (lo, hi, count) in bin_values(&values, 10) {
        println!(
            "[{lo:>7.1}, {hi:>7.1})  {:<40} {count}",
            "#".repeat(count.min(40))
        );
    }
    let mean = values.iter().sum::<f64>() / values.len().max(1) as f64;
    println!("users: {}   mean sequences: {mean:.2}", values.len());

    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("distribution_at_0.5", |b| {
        b.iter(|| fig6_sequence_count_distribution(black_box(ctx), 0.5).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
