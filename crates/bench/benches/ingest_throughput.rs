//! **Ingest I1** — live ingestion throughput: incremental epoch latency
//! vs a cold pipeline rebuild over the merged dataset, across batch
//! sizes, plus durable (WAL-backed) submit throughput.
//!
//! The incremental path re-prepares, re-mines, and re-places only the
//! users touched by the batch (`tests/ingest_determinism.rs` asserts the
//! result is byte-identical to the cold build), so epoch latency should
//! scale with batch size, not dataset size.
//!
//! Prints a latency table and writes it to `out/ingest_throughput.tsv`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdweb_bench::{banner, mid_context};
use crowdweb_crowd::{PipelineDriver, TimeWindows};
use crowdweb_dataset::{Dataset, MergeRecord, Timestamp};
use crowdweb_exec::Parallelism;
use crowdweb_geo::BoundingBox;
use crowdweb_ingest::{IngestConfig, IngestEngine, ShardedIngestEngine, WalConfig};
use crowdweb_prep::Preprocessor;
use std::hint::black_box;
use std::time::Instant;

const MIN_SUPPORT: f64 = 0.15;
const BATCH_SIZES: [usize; 3] = [16, 64, 256];

fn config() -> IngestConfig {
    let mut c = IngestConfig::default();
    c.preprocessor = c.preprocessor.min_active_days(20);
    c.min_support = MIN_SUPPORT;
    c
}

/// Clones existing check-ins, time-shifted, as an ingest batch.
fn batch(dataset: &Dataset, n: usize) -> Vec<MergeRecord> {
    let stride = (dataset.len() / n).max(1);
    dataset
        .checkins()
        .iter()
        .step_by(stride)
        .take(n)
        .map(|c| {
            let v = dataset.venue(c.venue()).unwrap();
            MergeRecord {
                user: c.user(),
                venue_key: v.name().to_owned(),
                category: "Office".to_owned(),
                location: v.location(),
                tz_offset_minutes: c.tz_offset_minutes(),
                time: Timestamp::from_unix_seconds(c.time().unix_seconds() + 3600),
            }
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let ctx = mid_context();

    banner(
        "Ingest: incremental epoch latency vs cold rebuild, by batch size",
        "epoch latency tracks batch size (users re-mined), not dataset size",
    );
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>10} {:>12}",
        "batch", "remined", "epoch_us", "cold_us", "speedup", "mode"
    );

    let mut rows = Vec::new();
    for n in BATCH_SIZES {
        let records = batch(&ctx.dataset, n);
        let merged = ctx.dataset.merge_records(&records).unwrap();

        let engine = IngestEngine::open(ctx.dataset.clone(), config()).unwrap();
        engine.submit(records).unwrap();
        let t0 = Instant::now();
        let report = engine.run_epoch().unwrap().expect("non-empty queue");
        let epoch_us = t0.elapsed().as_micros();

        let t1 = Instant::now();
        let out = PipelineDriver::new(MIN_SUPPORT)
            .unwrap()
            .preprocessor(Preprocessor::new().min_active_days(20))
            .windows(TimeWindows::hourly())
            .grid(BoundingBox::NYC, 20, 20)
            .parallelism(Parallelism::Auto)
            .run(&merged)
            .unwrap();
        let cold_us = t1.elapsed().as_micros();
        black_box(out);

        let speedup = cold_us as f64 / epoch_us.max(1) as f64;
        let mode = format!("{:?}", report.mode);
        println!(
            "{n:>8} {:>10} {epoch_us:>12} {cold_us:>12} {speedup:>9.2}x {mode:>12}",
            report.users_remined
        );
        rows.push(format!(
            "{n}\t{}\t{epoch_us}\t{cold_us}\t{speedup:.3}\t{mode}",
            report.users_remined
        ));
    }

    // Sharded epoch latency: the same 256-record batch through the
    // sharded engine at shard counts 1, 2, 4. Fan-out parallelism only
    // helps with >1 CPU; on a single core expect rough parity with a
    // small coordination overhead (snapshots are byte-identical either
    // way — `tests/ingest_determinism.rs`).
    println!(
        "\n{:>8} {:>10} {:>12} {:>12}",
        "shards", "remined", "epoch_us", "mode"
    );
    for shards in [1usize, 2, 4] {
        let records = batch(&ctx.dataset, 256);
        let mut cfg = config();
        cfg.shards = shards;
        let engine = ShardedIngestEngine::open(ctx.dataset.clone(), cfg).unwrap();
        engine.submit(records).unwrap();
        let t0 = Instant::now();
        let report = engine.run_epoch().unwrap().expect("non-empty queue");
        let epoch_us = t0.elapsed().as_micros();
        let mode = format!("{:?}", report.mode);
        println!(
            "{shards:>8} {:>10} {epoch_us:>12} {mode:>12}",
            report.users_remined
        );
        rows.push(format!(
            "shards_{shards}\t{}\t{epoch_us}\t-\t-\t{mode}",
            report.users_remined
        ));
    }

    // Durable submit throughput: records/s through queue + fsynced WAL.
    let wal_dir = std::env::temp_dir().join(format!("crowdweb-bench-wal-{}", std::process::id()));
    std::fs::remove_dir_all(&wal_dir).ok();
    let mut cfg = config();
    cfg.wal = Some(WalConfig::new(&wal_dir));
    let engine = IngestEngine::open(ctx.dataset.clone(), cfg).unwrap();
    let records = batch(&ctx.dataset, 256);
    let t0 = Instant::now();
    let mut submitted = 0usize;
    for _ in 0..8 {
        submitted += engine.submit(records.clone()).unwrap().accepted;
    }
    let submit_us = t0.elapsed().as_micros();
    let rec_per_s = submitted as f64 / (submit_us as f64 / 1e6);
    let wal_bytes = engine.stats().wal_segment_bytes;
    println!("\ndurable submit: {submitted} records in {submit_us} us ({rec_per_s:.0} rec/s, {wal_bytes} WAL bytes)");
    rows.push(format!(
        "wal_submit\t{submitted}\t{submit_us}\t{wal_bytes}\t{rec_per_s:.0}\trec_per_s"
    ));
    drop(engine);
    std::fs::remove_dir_all(&wal_dir).ok();

    std::fs::create_dir_all("out").unwrap();
    std::fs::write(
        "out/ingest_throughput.tsv",
        format!(
            "batch\tremined\tepoch_us\tcold_us\tspeedup\tmode\n{}\n",
            rows.join("\n")
        ),
    )
    .unwrap();
    println!("wrote out/ingest_throughput.tsv");

    let mut group = c.benchmark_group("ingest_throughput");
    group.sample_size(10);
    for n in BATCH_SIZES {
        let records = batch(&ctx.dataset, n);
        group.bench_with_input(BenchmarkId::new("submit_epoch", n), &records, |b, recs| {
            let engine = IngestEngine::open(ctx.dataset.clone(), config()).unwrap();
            b.iter(|| {
                engine.submit(black_box(recs.clone())).unwrap();
                engine.run_epoch().unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
