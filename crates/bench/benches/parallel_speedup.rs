//! **Engine E2** — parallel speedup of the shared execution pool across
//! the mine → aggregate pipeline: per-user pattern mining
//! (`PatternMiner::detect_all`) and crowd synchronization
//! (`CrowdBuilder::build`) under `Parallelism::Sequential` vs thread
//! fan-out, on identical inputs (outputs are byte-identical by
//! construction; `tests/determinism.rs` asserts it).
//!
//! Prints a speedup table and writes it to
//! `out/parallel_speedup.tsv`. Speedup is bounded by the machine's
//! core count: on a single-core container, thread fan-out can only
//! add overhead, and the table will honestly show ~1.0× or below.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdweb_bench::{banner, mid_context};
use crowdweb_crowd::{CrowdBuilder, TimeWindows};
use crowdweb_exec::Parallelism;
use crowdweb_geo::{BoundingBox, MicrocellGrid};
use crowdweb_mobility::PatternMiner;
use crowdweb_obs::MetricsRegistry;
use std::hint::black_box;
use std::time::Instant;

const MIN_SUPPORT: f64 = 0.15;

fn policies() -> Vec<(String, Parallelism)> {
    vec![
        ("sequential".into(), Parallelism::Sequential),
        ("threads_2".into(), Parallelism::Threads(2)),
        ("threads_4".into(), Parallelism::Threads(4)),
        ("auto".into(), Parallelism::Auto),
    ]
}

fn bench(c: &mut Criterion) {
    let ctx = mid_context();
    let grid = MicrocellGrid::new(BoundingBox::NYC, 20, 20).unwrap();
    let patterns = PatternMiner::new(MIN_SUPPORT)
        .unwrap()
        .detect_all(&ctx.prepared)
        .unwrap();

    banner(
        "Engine: parallel speedup (mine + crowd sync) vs sequential",
        "speedup approaches the worker count on multi-core hosts; ~1x on one core",
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("host cores: {cores}");
    println!(
        "{:>12} {:>10} {:>12} {:>10} {:>12} {:>10}",
        "policy", "workers", "mine_us", "speedup", "sync_us", "speedup"
    );

    // One registry for all policies: the fan-out histograms are keyed
    // by {stage, policy}, so each policy reads back its own series.
    let registry = MetricsRegistry::new();
    let obs_us = |stage: &str, policy: &str| -> u128 {
        registry
            .histogram_stats(
                crowdweb_exec::FANOUT_SECONDS,
                &[("stage", stage), ("policy", policy)],
            )
            .map_or(0, |(_, sum)| (sum * 1e6) as u128)
    };

    let mut rows = Vec::new();
    let mut base_mine_us = 0u128;
    let mut base_sync_us = 0u128;
    for (name, parallelism) in policies() {
        let miner = PatternMiner::new(MIN_SUPPORT)
            .unwrap()
            .parallelism(parallelism)
            .metrics(Some(registry.clone()));
        let t0 = Instant::now();
        let mined = miner.detect_all(&ctx.prepared).unwrap();
        let mine_us = t0.elapsed().as_micros();
        assert_eq!(mined, patterns, "policy {name} changed the mined output");

        let builder = CrowdBuilder::new(&ctx.dataset, &ctx.prepared)
            .windows(TimeWindows::hourly())
            .parallelism(parallelism)
            .metrics(Some(registry.clone()));
        let t1 = Instant::now();
        let model = builder.build(&patterns, grid.clone()).unwrap();
        let sync_us = t1.elapsed().as_micros();
        black_box(model);

        if name == "sequential" {
            base_mine_us = mine_us;
            base_sync_us = sync_us;
        }
        let mine_speedup = base_mine_us as f64 / mine_us.max(1) as f64;
        let sync_speedup = base_sync_us as f64 / sync_us.max(1) as f64;
        // Registry-sourced stage timings for the same runs: the fan-out
        // histograms time only the parallel_map section, so obs columns
        // slightly undercut the wall-clock columns.
        let obs_mine_us = obs_us("mine", &name);
        let obs_sync_us = obs_us("crowd", &name);
        println!(
            "{name:>12} {:>10} {mine_us:>12} {mine_speedup:>9.2}x {sync_us:>12} {sync_speedup:>9.2}x",
            parallelism.worker_count()
        );
        rows.push(format!(
            "{name}\t{}\t{mine_us}\t{mine_speedup:.3}\t{sync_us}\t{sync_speedup:.3}\t{obs_mine_us}\t{obs_sync_us}",
            parallelism.worker_count()
        ));
    }

    std::fs::create_dir_all("out").unwrap();
    std::fs::write(
        "out/parallel_speedup.tsv",
        format!(
            "# host cores: {cores}\npolicy\tworkers\tmine_us\tmine_speedup\tsync_us\tsync_speedup\tobs_mine_us\tobs_sync_us\n{}\n",
            rows.join("\n")
        ),
    )
    .unwrap();
    println!("\nwrote out/parallel_speedup.tsv");

    let mut group = c.benchmark_group("parallel_speedup");
    group.sample_size(10);
    for (name, parallelism) in policies() {
        group.bench_with_input(
            BenchmarkId::new("detect_all", &name),
            &parallelism,
            |b, &p| {
                let miner = PatternMiner::new(MIN_SUPPORT).unwrap().parallelism(p);
                b.iter(|| miner.detect_all(black_box(&ctx.prepared)).unwrap())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("crowd_build", &name),
            &parallelism,
            |b, &p| {
                let builder = CrowdBuilder::new(&ctx.dataset, &ctx.prepared).parallelism(p);
                b.iter(|| builder.build(black_box(&patterns), grid.clone()).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
