//! **Server S2** — connection scaling.
//!
//! Two experiments, one TSV (`out/connection_scaling.tsv`):
//!
//! **S2a (slow-drip)** — the evented reactor vs the old
//! thread-per-connection pool under slowloris load. A legacy
//! thread-per-connection server (rebuilt inline from the same public
//! pieces) must wait for slow clients to time out in worker-sized waves
//! before a fast client gets through; the reactor multiplexes every
//! connection on one event thread, so time-to-first-response stays flat
//! in the number of slow-drip connections.
//!
//! **S2b (keep-alive gate)** — the ISSUE 8 acceptance run: hold
//! thousands of primed keep-alive connections (10k by default) against
//! one reactor and measure first-byte dispatch percentiles through the
//! crowd, plus the server's idle CPU while all of them sit parked.
//! Client and server each need ~one fd per connection, which together
//! would overflow this box's un-raisable 20k fd limit — so the server
//! runs as a re-exec'd child process (`CROWDWEB_CONNSCALE_SERVER=1`)
//! and each side budgets its own limit.
//!
//! Knobs: `CROWDWEB_SCALE_CONNS=N` overrides the 10k target,
//! `CROWDWEB_SCALE_ONLY=1` skips S2a (the CI spot check uses both).

use crowdweb_bench::banner;
use crowdweb_exec::WorkerPool;
use crowdweb_server::{api, sys, AppState, Request, Router, Server};
use crowdweb_synth::SynthConfig;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const DRIP_COUNTS: [usize; 3] = [0, 8, 64];
const READ_TIMEOUT: Duration = Duration::from_millis(300);
const FAST_REQUESTS: usize = 32;
const PROBES: usize = 200;
/// Fds held back from the limit for the binary itself (stdio, the
/// probe/scrape sockets, dataset files, slack for the allocator).
const FD_MARGIN: u64 = 1024;

fn app_state() -> AppState {
    let dataset = SynthConfig::small(91).users(10).generate().unwrap();
    AppState::build(dataset, 10).unwrap()
}

fn main() {
    if std::env::var_os("CROWDWEB_CONNSCALE_SERVER").is_some() {
        run_server_child();
        return;
    }
    banner(
        "Server: connection scaling — slow-drip latency + the 10k keep-alive gate",
        "reactor first-response stays flat vs drips; 10k kept-alive conns, sub-ms p50 dispatch, idle CPU ~0",
    );
    let mut rows: Vec<String> = Vec::new();
    if std::env::var_os("CROWDWEB_SCALE_ONLY").is_none() {
        drip_section(&mut rows);
    }
    keepalive_section(&mut rows);
    std::fs::create_dir_all("out").unwrap();
    std::fs::write(
        "out/connection_scaling.tsv",
        format!("{}\n", rows.join("\n")),
    )
    .unwrap();
    println!("wrote out/connection_scaling.tsv");
}

// ---------------------------------------------------------------- child

/// The re-exec'd server half of S2b: bind, announce the address on
/// stdout, serve until the parent kills the process.
fn run_server_child() {
    let server = Server::bind("127.0.0.1:0", app_state())
        .unwrap()
        .max_connections(16_000)
        .workers(4)
        .keep_alive_requests(1_000_000)
        .keep_alive_idle(Duration::from_secs(600));
    println!("CONNSCALE_ADDR {}", server.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush().unwrap();
    server.run();
}

// ------------------------------------------------------------ S2a: drip

fn http_get(addr: SocketAddr, path: &str) -> u16 {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut buf = String::new();
    stream.read_to_string(&mut buf).unwrap();
    buf.split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// The pre-reactor server shape: one blocking accept loop feeding whole
/// sockets to a bounded worker pool, slow clients reaped only by the
/// per-socket read timeout.
fn spawn_threadpool(state: Arc<AppState>) -> (SocketAddr, Arc<AtomicBool>, JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let join = std::thread::spawn(move || {
        let router = Arc::new(api::build_router());
        let pool = WorkerPool::new(8, 32);
        for stream in listener.incoming() {
            if flag.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let state = Arc::clone(&state);
            let router: Arc<Router<AppState>> = Arc::clone(&router);
            // `execute` blocks when the queue is full — exactly the old
            // accept-loop behaviour under pressure.
            pool.execute(move || {
                let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
                if let Ok(request) = Request::read_from(&stream) {
                    let (response, _) = router.dispatch(&state, &request);
                    let _ = response.write_to(&stream);
                }
            });
        }
        drop(pool);
    });
    (addr, stop, join)
}

/// Opens `n` connections that drip a partial request head and hold the
/// socket open.
fn open_drips(addr: SocketAddr, n: usize) -> Vec<TcpStream> {
    (0..n)
        .map(|_| {
            let mut s = TcpStream::connect(addr).unwrap();
            write!(s, "GET /api/healthz HTTP/1.1\r\nX-Drip: 1\r\n").unwrap();
            s
        })
        .collect()
}

/// Time-to-first-response for a fast client behind `drips` slow ones,
/// then sequential fast-request throughput.
fn measure(addr: SocketAddr, drips: usize) -> (u128, u128, f64) {
    let held = open_drips(addr, drips);
    std::thread::sleep(Duration::from_millis(100));
    let t0 = Instant::now();
    assert_eq!(http_get(addr, "/api/healthz"), 200);
    let first_response_us = t0.elapsed().as_micros();
    let t1 = Instant::now();
    for _ in 0..FAST_REQUESTS {
        assert_eq!(http_get(addr, "/api/healthz"), 200);
    }
    let total_us = t1.elapsed().as_micros();
    let req_per_s = FAST_REQUESTS as f64 / (total_us as f64 / 1e6);
    drop(held);
    (first_response_us, total_us, req_per_s)
}

fn drip_section(rows: &mut Vec<String>) {
    println!(
        "{:>12} {:>12} {:>18} {:>10} {:>12} {:>10}",
        "model", "slow_conns", "first_response_us", "requests", "total_us", "req_per_s"
    );
    rows.push("# S2a: fast-client latency vs slow-drip connection count".to_owned());
    rows.push("model\tslow_conns\tfirst_response_us\trequests\ttotal_us\treq_per_s".to_owned());
    for drips in DRIP_COUNTS {
        let (addr, stop, join) = spawn_threadpool(Arc::new(app_state()));
        let (first, total, rps) = measure(addr, drips);
        stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(addr); // poke the blocking accept
        join.join().unwrap();
        println!(
            "{:>12} {drips:>12} {first:>18} {FAST_REQUESTS:>10} {total:>12} {rps:>10.0}",
            "threadpool"
        );
        rows.push(format!(
            "threadpool\t{drips}\t{first}\t{FAST_REQUESTS}\t{total}\t{rps:.0}"
        ));
    }
    for drips in DRIP_COUNTS {
        let (addr, handle, join) = Server::bind("127.0.0.1:0", app_state())
            .unwrap()
            .read_timeout(Duration::from_secs(30))
            .spawn();
        let (first, total, rps) = measure(addr, drips);
        handle.shutdown();
        join.join().unwrap();
        println!(
            "{:>12} {drips:>12} {first:>18} {FAST_REQUESTS:>10} {total:>12} {rps:>10.0}",
            "reactor"
        );
        rows.push(format!(
            "reactor\t{drips}\t{first}\t{FAST_REQUESTS}\t{total}\t{rps:.0}"
        ));
    }
}

// ------------------------------------------------- S2b: keep-alive gate

/// Writes one keep-alive GET and reads one Content-Length-framed
/// response off `reader`, returning the time from send to first
/// response byte.
fn keepalive_roundtrip(reader: &mut BufReader<TcpStream>, path: &str) -> Duration {
    // One buffer, one write: a request split across writes stalls
    // ~40ms on Nagle + delayed ACK once the connection is warm, which
    // would drown the dispatch latency being measured.
    let request = format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n");
    reader.get_mut().write_all(request.as_bytes()).unwrap();
    reader.get_mut().flush().unwrap();
    let sent = Instant::now();
    let mut first_byte = None;
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        assert!(
            reader.read(&mut byte).unwrap() > 0,
            "server closed mid-response"
        );
        first_byte.get_or_insert_with(|| sent.elapsed());
        head.push(byte[0]);
    }
    let head = String::from_utf8(head).unwrap();
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().unwrap())
        })
        .expect("framed response");
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    first_byte.unwrap()
}

/// Scrapes one unlabeled gauge from the child's /api/metrics.
fn scrape_gauge(addr: SocketAddr, name: &str) -> Option<f64> {
    let mut stream = TcpStream::connect(addr).ok()?;
    write!(
        stream,
        "GET /api/metrics HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n"
    )
    .ok()?;
    let mut text = String::new();
    stream.read_to_string(&mut text).ok()?;
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        rest.strip_prefix(' ')?.trim().parse().ok()
    })
}

/// (utime + stime) of a process in clock ticks, from /proc/<pid>/stat.
fn cpu_ticks(pid: u32) -> Option<u64> {
    let stat = std::fs::read_to_string(format!("/proc/{pid}/stat")).ok()?;
    // Fields 14 and 15, counted after the parenthesized comm (which may
    // itself contain spaces).
    let after_comm = &stat[stat.rfind(')')? + 2..];
    let fields: Vec<&str> = after_comm.split_whitespace().collect();
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some(utime + stime)
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

fn keepalive_section(rows: &mut Vec<String>) {
    let target: usize = std::env::var("CROWDWEB_SCALE_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    // The client side holds one fd per connection: clamp to this
    // process's limit and say so — a silent cap would read as "10k
    // held" when it wasn't.
    let limit = sys::open_file_limit().unwrap_or(u64::MAX);
    let conns = target.min(limit.saturating_sub(FD_MARGIN) as usize);
    if conns < target {
        println!(
            "note: fd limit {limit} clamps the keep-alive gate to {conns} connections \
             (asked for {target})"
        );
    }

    // The server runs as a re-exec'd child so each side spends its own
    // fd budget (20k here would not cover 2×10k in one process).
    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(exe)
        .env("CROWDWEB_CONNSCALE_SERVER", "1")
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .expect("re-exec the bench as the server child");
    let addr: SocketAddr = {
        let stdout = child.stdout.take().expect("child stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        loop {
            let line = lines
                .next()
                .expect("child announces its address")
                .expect("child stdout readable");
            if let Some(addr) = line.strip_prefix("CONNSCALE_ADDR ") {
                break addr.parse().expect("child address parses");
            }
        }
    };

    // Open and prime the crowd: every connection serves one real
    // request, proving it is a live kept-alive connection rather than
    // an unaccepted socket in a backlog.
    println!("priming {conns} keep-alive connections against {addr} ...");
    let t0 = Instant::now();
    let threads = 16;
    let held: Vec<BufReader<TcpStream>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let share = conns / threads + usize::from(t < conns % threads);
                    let mut out = Vec::with_capacity(share);
                    for _ in 0..share {
                        let stream = connect_with_retry(addr);
                        let mut reader = BufReader::new(stream);
                        keepalive_roundtrip(&mut reader, "/api/v1/healthz");
                        out.push(reader);
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("primer threads do not panic"))
            .collect()
    });
    println!(
        "primed {} connections in {:.1}s",
        held.len(),
        t0.elapsed().as_secs_f64()
    );

    // The server's own view must agree that the whole crowd is open.
    let open = scrape_gauge(addr, "crowdweb_server_open_connections").unwrap_or(0.0) as usize;
    assert!(
        open >= held.len(),
        "server reports {open} open connections, client holds {}",
        held.len()
    );

    // Idle CPU: with every connection parked, the event loop should be
    // blocked in poll, not ticking.
    let pid = child.id();
    let ticks_before = cpu_ticks(pid);
    let idle_window = Duration::from_secs(2);
    std::thread::sleep(idle_window);
    let idle_cpu_pct = match (ticks_before, cpu_ticks(pid)) {
        (Some(a), Some(b)) => {
            // CLK_TCK is 100 on every Linux this runs on.
            (b.saturating_sub(a)) as f64 / 100.0 / idle_window.as_secs_f64() * 100.0
        }
        _ => f64::NAN,
    };

    // First-byte dispatch latency through the standing crowd, on a
    // fresh kept-alive probe connection.
    let mut probe = BufReader::new(connect_with_retry(addr));
    keepalive_roundtrip(&mut probe, "/api/v1/healthz"); // warm
    let mut lat_us: Vec<u64> = (0..PROBES)
        .map(|_| keepalive_roundtrip(&mut probe, "/api/v1/healthz").as_micros() as u64)
        .collect();
    lat_us.sort_unstable();
    let (p50, p90, p99) = (
        percentile(&lat_us, 0.50),
        percentile(&lat_us, 0.90),
        percentile(&lat_us, 0.99),
    );

    println!(
        "{:>12} {:>8} {:>8} {:>8} {:>8} {:>14} {:>12}",
        "held_conns", "probes", "p50_us", "p90_us", "p99_us", "idle_cpu_pct", "server_open"
    );
    println!(
        "{:>12} {:>8} {p50:>8} {p90:>8} {p99:>8} {idle_cpu_pct:>14.2} {open:>12}",
        held.len(),
        PROBES,
    );
    rows.push("# S2b: first-byte dispatch with a standing keep-alive crowd".to_owned());
    rows.push("held_conns\tprobes\tp50_us\tp90_us\tp99_us\tidle_cpu_pct\tserver_open".to_owned());
    rows.push(format!(
        "{}\t{PROBES}\t{p50}\t{p90}\t{p99}\t{idle_cpu_pct:.2}\t{open}",
        held.len()
    ));

    drop(probe);
    drop(held);
    let _ = child.kill();
    let _ = child.wait();
}

/// Connects, absorbing transient accept-backlog pressure during the
/// storm with a few timed retries.
fn connect_with_retry(addr: SocketAddr) -> TcpStream {
    for attempt in 0..5 {
        match TcpStream::connect_timeout(&addr, Duration::from_secs(10)) {
            Ok(s) => {
                let _ = s.set_nodelay(true);
                return s;
            }
            Err(e) if attempt == 4 => panic!("connect to {addr} failed after retries: {e}"),
            Err(_) => std::thread::sleep(Duration::from_millis(50 << attempt)),
        }
    }
    unreachable!()
}
