//! **Server S1** — connection scaling: the evented reactor loop vs the
//! old thread-per-connection pool under slow-drip (slowloris) load.
//!
//! A legacy thread-per-connection server (rebuilt here inline from the
//! same public pieces: blocking sockets, a bounded worker pool, a
//! per-socket read timeout) must wait for slow clients to time out in
//! worker-sized waves before a fast client gets through. The reactor
//! multiplexes every connection on one event thread, so time-to-first-
//! response for a well-behaved client should stay flat in the number of
//! slow-drip connections.
//!
//! Prints a table and writes it to `out/connection_scaling.tsv`.

use criterion::{criterion_group, criterion_main, Criterion};
use crowdweb_bench::banner;
use crowdweb_exec::WorkerPool;
use crowdweb_server::{api, AppState, Request, Router, Server};
use crowdweb_synth::SynthConfig;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const DRIP_COUNTS: [usize; 3] = [0, 8, 64];
const READ_TIMEOUT: Duration = Duration::from_millis(300);
const FAST_REQUESTS: usize = 32;

fn app_state() -> AppState {
    let dataset = SynthConfig::small(91).users(10).generate().unwrap();
    AppState::build(dataset, 10).unwrap()
}

fn http_get(addr: SocketAddr, path: &str) -> u16 {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").unwrap();
    let mut buf = String::new();
    stream.read_to_string(&mut buf).unwrap();
    buf.split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// The pre-reactor server shape: one blocking accept loop feeding whole
/// sockets to a bounded worker pool, slow clients reaped only by the
/// per-socket read timeout.
fn spawn_threadpool(state: Arc<AppState>) -> (SocketAddr, Arc<AtomicBool>, JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let join = std::thread::spawn(move || {
        let router = Arc::new(api::build_router());
        let pool = WorkerPool::new(8, 32);
        for stream in listener.incoming() {
            if flag.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let state = Arc::clone(&state);
            let router: Arc<Router<AppState>> = Arc::clone(&router);
            // `execute` blocks when the queue is full — exactly the old
            // accept-loop behaviour under pressure.
            pool.execute(move || {
                let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
                if let Ok(request) = Request::read_from(&stream) {
                    let (response, _) = router.dispatch(&state, &request);
                    let _ = response.write_to(&stream);
                }
            });
        }
        drop(pool);
    });
    (addr, stop, join)
}

/// Opens `n` connections that drip a partial request head and hold the
/// socket open.
fn open_drips(addr: SocketAddr, n: usize) -> Vec<TcpStream> {
    (0..n)
        .map(|_| {
            let mut s = TcpStream::connect(addr).unwrap();
            write!(s, "GET /api/healthz HTTP/1.1\r\nX-Drip: 1\r\n").unwrap();
            s
        })
        .collect()
}

/// Time-to-first-response for a fast client behind `drips` slow ones,
/// then sequential fast-request throughput.
fn measure(addr: SocketAddr, drips: usize) -> (u128, u128, f64) {
    let held = open_drips(addr, drips);
    std::thread::sleep(Duration::from_millis(100));
    let t0 = Instant::now();
    assert_eq!(http_get(addr, "/api/healthz"), 200);
    let first_response_us = t0.elapsed().as_micros();
    let t1 = Instant::now();
    for _ in 0..FAST_REQUESTS {
        assert_eq!(http_get(addr, "/api/healthz"), 200);
    }
    let total_us = t1.elapsed().as_micros();
    let req_per_s = FAST_REQUESTS as f64 / (total_us as f64 / 1e6);
    drop(held);
    (first_response_us, total_us, req_per_s)
}

fn bench(c: &mut Criterion) {
    banner(
        "Server: fast-client latency vs slow-drip connection count",
        "reactor time-to-first-response stays flat; threadpool grows in worker-sized timeout waves",
    );
    println!(
        "{:>12} {:>12} {:>18} {:>10} {:>12} {:>10}",
        "model", "slow_conns", "first_response_us", "requests", "total_us", "req_per_s"
    );

    let mut rows = Vec::new();
    for drips in DRIP_COUNTS {
        let (addr, stop, join) = spawn_threadpool(Arc::new(app_state()));
        let (first, total, rps) = measure(addr, drips);
        stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(addr); // poke the blocking accept
        join.join().unwrap();
        println!(
            "{:>12} {drips:>12} {first:>18} {FAST_REQUESTS:>10} {total:>12} {rps:>10.0}",
            "threadpool"
        );
        rows.push(format!(
            "threadpool\t{drips}\t{first}\t{FAST_REQUESTS}\t{total}\t{rps:.0}"
        ));
    }
    for drips in DRIP_COUNTS {
        let (addr, handle, join) = Server::bind("127.0.0.1:0", app_state())
            .unwrap()
            .read_timeout(Duration::from_secs(30))
            .spawn();
        let (first, total, rps) = measure(addr, drips);
        handle.shutdown();
        join.join().unwrap();
        println!(
            "{:>12} {drips:>12} {first:>18} {FAST_REQUESTS:>10} {total:>12} {rps:>10.0}",
            "reactor"
        );
        rows.push(format!(
            "reactor\t{drips}\t{first}\t{FAST_REQUESTS}\t{total}\t{rps:.0}"
        ));
    }

    std::fs::create_dir_all("out").unwrap();
    std::fs::write(
        "out/connection_scaling.tsv",
        format!(
            "model\tslow_conns\tfirst_response_us\trequests\ttotal_us\treq_per_s\n{}\n",
            rows.join("\n")
        ),
    )
    .unwrap();
    println!("wrote out/connection_scaling.tsv");

    let (addr, handle, join) = Server::bind("127.0.0.1:0", app_state()).unwrap().spawn();
    let mut group = c.benchmark_group("connection_scaling");
    group.sample_size(10);
    group.bench_function("reactor_fast_request", |b| {
        b.iter(|| http_get(addr, "/api/healthz"))
    });
    group.finish();
    handle.shutdown();
    join.join().unwrap();
}

criterion_group!(benches, bench);
criterion_main!(benches);
