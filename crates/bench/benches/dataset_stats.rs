//! **Section I.1 table** — the dataset statistics, at the paper's full
//! scale: 1,083 users over 11 months, calibrated to 227,428 check-ins
//! with mean ~210 / median ~153 records per user and April–June as the
//! richest window. Prints measured-vs-paper, then times generation and
//! statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use crowdweb_analytics::dataset_stats_table;
use crowdweb_bench::{banner, paper_context};
use crowdweb_dataset::DatasetStats;
use crowdweb_synth::SynthConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = paper_context();
    banner(
        "Section I.1: dataset statistics (paper scale)",
        "227,428 check-ins, 1,083 users, mean ~210 / median ~153, sparse, Apr-Jun richest",
    );
    let report = dataset_stats_table(ctx);
    let m = &report.measured;
    println!("{:<28} {:>12} {:>12}", "metric", "paper", "measured");
    println!(
        "{:<28} {:>12} {:>12}",
        "check-ins", 227_428, m.total_checkins
    );
    println!("{:<28} {:>12} {:>12}", "users", 1_083, m.user_count);
    println!(
        "{:<28} {:>12} {:>12.1}",
        "mean records/user", 210, m.mean_records_per_user
    );
    println!(
        "{:<28} {:>12} {:>12.1}",
        "median records/user", 153, m.median_records_per_user
    );
    println!(
        "{:<28} {:>12} {:>12}",
        "sparse (<1/day)",
        "yes",
        if m.is_sparse() { "yes" } else { "no" }
    );
    println!(
        "{:<28} {:>12} {:>12}",
        "richest 3-month window", "Apr 2012", report.richest_window
    );
    println!(
        "{:<28} {:>12} {:>12}",
        "filtered users (>50 days)", "subset", report.filtered_users
    );

    let mut group = c.benchmark_group("dataset");
    group.sample_size(10);
    group.bench_function("stats_paper_scale", |b| {
        b.iter(|| DatasetStats::compute(black_box(&ctx.dataset)))
    });
    let small = SynthConfig::small(1);
    group.bench_function("generate_small", |b| b.iter(|| small.generate().unwrap()));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
