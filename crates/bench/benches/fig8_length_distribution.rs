//! **Figure 8** — distribution of the average sequence length per user
//! at `min_support = 0.5`. Prints the histogram, then times the mine.

use criterion::{criterion_group, criterion_main, Criterion};
use crowdweb_analytics::fig8_length_distribution;
use crowdweb_bench::{banner, mid_context};
use crowdweb_viz::chart::bin_values;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = mid_context();
    banner(
        "Figure 8: distribution of avg lengths (min_support = 0.5)",
        "unimodal histogram with mass just above length 1",
    );
    let values = fig8_length_distribution(ctx, 0.5).unwrap();
    for (lo, hi, count) in bin_values(&values, 10) {
        println!(
            "[{lo:>6.2}, {hi:>6.2})  {:<40} {count}",
            "#".repeat(count.min(40))
        );
    }
    println!("users with patterns: {}", values.len());

    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("distribution_at_0.5", |b| {
        b.iter(|| fig8_length_distribution(black_box(ctx), 0.5).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
