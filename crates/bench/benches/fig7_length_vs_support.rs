//! **Figure 7** — average length of sequences per user vs minimum
//! support threshold. Prints the regenerated series, then times one
//! sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use crowdweb_analytics::{fig7_length_vs_support, PAPER_SUPPORT_SWEEP};
use crowdweb_bench::{banner, mid_context};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = mid_context();
    banner(
        "Figure 7: avg sequence length per user vs min_support",
        "monotone decreasing (long patterns certify less easily)",
    );
    let series = fig7_length_vs_support(ctx, &PAPER_SUPPORT_SWEEP).unwrap();
    println!("{:>12}  {:>18}", "min_support", "avg length/user");
    for (s, v) in &series {
        println!("{s:>12.3}  {v:>18.3}");
    }

    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("support_sweep", |b| {
        b.iter(|| fig7_length_vs_support(black_box(ctx), &PAPER_SUPPORT_SWEEP).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
