//! **Motivation A2** — next-place prediction accuracy per label scheme.
//! The paper motivates place abstraction with the poor accuracy of raw
//! next-location prediction (8–25% in its citations); abstraction makes
//! behaviour predictable. Prints the accuracy table, then times one
//! evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use crowdweb_analytics::prediction_accuracy;
use crowdweb_bench::{banner, mid_context};
use crowdweb_mobility::{evaluate_predictor, PredictorKind};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = mid_context();
    banner(
        "Motivation: next-place prediction accuracy by abstraction level",
        "raw venues weak (<~25%), coarse kinds far stronger",
    );
    let rows = prediction_accuracy(ctx).unwrap();
    println!(
        "{:<10} {:<14} {:>9} {:>12}",
        "scheme", "predictor", "accuracy", "predictions"
    );
    for r in &rows {
        println!(
            "{:<10} {:<14} {:>8.1}% {:>12}",
            r.scheme,
            r.predictor,
            r.accuracy * 100.0,
            r.total
        );
    }

    let mut group = c.benchmark_group("prediction");
    group.sample_size(10);
    let seqdb = ctx.prepared.seqdb();
    group.bench_function("markov1_eval", |b| {
        b.iter(|| evaluate_predictor(black_box(seqdb), PredictorKind::Markov1, 0.7).unwrap())
    });
    group.bench_function("full_table", |b| {
        b.iter(|| prediction_accuracy(black_box(ctx)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
