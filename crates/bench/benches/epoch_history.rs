//! **History H1** — epoch history cost: publish (record) latency and
//! resident bytes of the delta-compressed history ring vs a full-model
//! ring, plus time-travel materialization latency for the oldest
//! (longest delta chain) and newest retained epochs.
//!
//! The delta ring stores a `CrowdSplice` per incremental epoch with a
//! full checkpoint every K; the full ring checkpoints every epoch —
//! its resident bytes are what retaining an owned model copy per epoch
//! would cost (`tests/epoch_history.rs` asserts both replay
//! byte-identically to cold rebuilds).
//!
//! Prints a cost table and writes it to `out/epoch_history.tsv`.

use criterion::{criterion_group, criterion_main, Criterion};
use crowdweb_bench::{banner, mid_context};
use crowdweb_crowd::CrowdModel;
use crowdweb_dataset::{Dataset, MergeRecord, Timestamp};
use crowdweb_ingest::{CrowdHistory, EpochMode, IngestConfig, IngestEngine};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const DEPTH: usize = 16;
const EPOCHS: usize = 16;
const BATCH: usize = 64;

fn config() -> IngestConfig {
    let mut c = IngestConfig::default();
    c.preprocessor = c.preprocessor.min_active_days(20);
    c
}

/// Clones existing check-ins, time-shifted by epoch, as ingest batches.
fn batch(dataset: &Dataset, n: usize, shift_secs: i64) -> Vec<MergeRecord> {
    let stride = (dataset.len() / n).max(1);
    dataset
        .checkins()
        .iter()
        .step_by(stride)
        .take(n)
        .map(|c| {
            let v = dataset.venue(c.venue()).unwrap();
            MergeRecord {
                user: c.user(),
                venue_key: v.name().to_owned(),
                category: "Office".to_owned(),
                location: v.location(),
                tz_offset_minutes: c.tz_offset_minutes(),
                time: Timestamp::from_unix_seconds(c.time().unix_seconds() + shift_secs),
            }
        })
        .collect()
}

/// Runs `EPOCHS` engine epochs and returns the published crowd model of
/// every epoch (0 = cold build), so history configurations can be
/// replayed over an identical model sequence.
fn epoch_models(dataset: &Dataset) -> Vec<Arc<CrowdModel>> {
    let engine = IngestEngine::open(dataset.clone(), config()).unwrap();
    let mut models = vec![engine.snapshot().crowd_arc()];
    for e in 0..EPOCHS {
        engine
            .submit(batch(dataset, BATCH, 1800 * (e as i64 + 1)))
            .unwrap();
        engine.run_epoch().unwrap().expect("non-empty queue");
        models.push(engine.snapshot().crowd_arc());
    }
    models
}

struct HistoryCost {
    record_mean_us: f64,
    resident_bytes: usize,
    chain_len: usize,
    chain_us: u128,
    checkpoint_us: u128,
}

/// Replays the model sequence into a fresh history ring and measures
/// record latency, steady-state resident bytes, and the two
/// materialization extremes.
fn measure(models: &[Arc<CrowdModel>], checkpoint_every: u64) -> HistoryCost {
    let history = CrowdHistory::new(Arc::clone(&models[0]), DEPTH, checkpoint_every, None);
    let mut record_us = 0u128;
    for (n, model) in models.iter().enumerate().skip(1) {
        let t0 = Instant::now();
        history.record(
            n as u64,
            &models[n - 1],
            Arc::clone(model),
            EpochMode::Incremental,
            BATCH,
        );
        record_us += t0.elapsed().as_micros();
    }
    let listing = history.epochs();
    let resident_bytes = listing.iter().map(|e| e.resident_bytes).sum();
    // The two replay extremes: the epoch at the end of the longest
    // delta chain, and a checkpoint (returned by shared Arc).
    let mut chain = (listing[0].epoch, 0usize);
    let mut since_full = 0usize;
    for e in &listing {
        since_full = if e.kind == "full" { 0 } else { since_full + 1 };
        if since_full >= chain.1 {
            chain = (e.epoch, since_full);
        }
    }
    let checkpoint = listing
        .iter()
        .rev()
        .find(|e| e.kind == "full")
        .expect("the ring always holds a checkpoint")
        .epoch;
    let t0 = Instant::now();
    black_box(history.materialize(chain.0).unwrap());
    let chain_us = t0.elapsed().as_micros();
    let t1 = Instant::now();
    black_box(history.materialize(checkpoint).unwrap());
    let checkpoint_us = t1.elapsed().as_micros();
    HistoryCost {
        record_mean_us: record_us as f64 / (models.len() - 1) as f64,
        resident_bytes,
        chain_len: chain.1,
        chain_us,
        checkpoint_us,
    }
}

fn bench(c: &mut Criterion) {
    let ctx = mid_context();

    banner(
        "Epoch history: delta ring vs full-model ring, 16 epochs deep",
        "deltas shrink resident bytes; checkpoints bound replay latency",
    );
    println!(
        "{:>10} {:>14} {:>16} {:>10} {:>10} {:>14}",
        "config", "record_us", "resident_bytes", "chain_len", "chain_us", "checkpoint_us"
    );

    let models = epoch_models(&ctx.dataset);
    let mut rows = Vec::new();
    for (label, checkpoint_every) in [("delta_k8", 8u64), ("full_k1", 1)] {
        let cost = measure(&models, checkpoint_every);
        println!(
            "{label:>10} {:>14.1} {:>16} {:>10} {:>10} {:>14}",
            cost.record_mean_us,
            cost.resident_bytes,
            cost.chain_len,
            cost.chain_us,
            cost.checkpoint_us
        );
        rows.push(format!(
            "{label}\t{:.1}\t{}\t{}\t{}\t{}",
            cost.record_mean_us,
            cost.resident_bytes,
            cost.chain_len,
            cost.chain_us,
            cost.checkpoint_us
        ));
    }

    std::fs::create_dir_all("out").unwrap();
    std::fs::write(
        "out/epoch_history.tsv",
        format!(
            "config\trecord_mean_us\tresident_bytes\tchain_len\tmaterialize_chain_us\tmaterialize_checkpoint_us\n{}\n",
            rows.join("\n")
        ),
    )
    .unwrap();
    println!("wrote out/epoch_history.tsv");

    let mut group = c.benchmark_group("epoch_history");
    group.sample_size(10);
    group.bench_function("record_delta", |b| {
        let history = CrowdHistory::new(Arc::clone(&models[0]), DEPTH, u64::MAX, None);
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            let prev = &models[(n as usize - 1) % (models.len() - 1)];
            let next = &models[n as usize % (models.len() - 1) + 1];
            history.record(n, prev, Arc::clone(next), EpochMode::Incremental, BATCH);
        })
    });
    group.bench_function("materialize_oldest", |b| {
        let history = CrowdHistory::new(Arc::clone(&models[0]), DEPTH, u64::MAX, None);
        for (n, model) in models.iter().enumerate().skip(1) {
            history.record(
                n as u64,
                &models[n - 1],
                Arc::clone(model),
                EpochMode::Incremental,
                BATCH,
            );
        }
        let (oldest, _) = history.retained();
        b.iter(|| black_box(history.materialize(black_box(oldest)).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
