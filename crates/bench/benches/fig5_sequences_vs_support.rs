//! **Figure 5** — average number of sequences per user vs minimum
//! support threshold. Prints the regenerated series, then times one
//! full sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use crowdweb_analytics::{fig5_sequences_vs_support, PAPER_SUPPORT_SWEEP};
use crowdweb_bench::{banner, mid_context};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = mid_context();
    banner(
        "Figure 5: avg sequences per user vs min_support",
        "monotone decreasing; steep drop 0.25->0.5, flatter 0.5->0.75",
    );
    let series = fig5_sequences_vs_support(ctx, &PAPER_SUPPORT_SWEEP).unwrap();
    println!("{:>12}  {:>20}", "min_support", "avg sequences/user");
    for (s, v) in &series {
        println!("{s:>12.3}  {v:>20.2}");
    }
    let d1 = series[1].1 - series[3].1; // 0.25 -> 0.5
    let d2 = series[3].1 - series[5].1; // 0.5 -> 0.75
    println!("drop 0.25->0.5: {d1:.2}   drop 0.5->0.75: {d2:.2}   (paper: first >> second)");

    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("support_sweep", |b| {
        b.iter(|| fig5_sequences_vs_support(black_box(ctx), &PAPER_SUPPORT_SWEEP).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
