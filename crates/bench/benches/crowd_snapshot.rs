//! **Figures 3–4** — the crowd in the smart city at contrasting time
//! windows. Prints the busiest microcells at 9–10 am and 7–8 pm, then
//! times crowd-model construction and snapshot queries.

use criterion::{criterion_group, criterion_main, Criterion};
use crowdweb_analytics::{build_crowd_model, crowd_snapshot_table};
use crowdweb_bench::{banner, mid_context};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = mid_context();
    banner(
        "Figures 3-4: crowd distribution per time window",
        "crowd mass relocates between 9-10 am and the evening window",
    );
    let rows = crowd_snapshot_table(ctx, &[9, 19], 8).unwrap();
    println!("{:>10}  {:>8}  {:>6}", "window", "cell", "users");
    for r in &rows {
        println!("{:>10}  {:>8}  {:>6}", r.window, r.cell, r.users);
    }
    let morning: Vec<u64> = rows
        .iter()
        .filter(|r| r.window == "9-10 am")
        .map(|r| r.cell)
        .collect();
    let evening: Vec<u64> = rows
        .iter()
        .filter(|r| r.window == "7-8 pm")
        .map(|r| r.cell)
        .collect();
    println!(
        "distinct busiest-cell sets: {}   (paper: the crowd moves)",
        morning != evening
    );

    let mut group = c.benchmark_group("crowd");
    group.sample_size(10);
    group.bench_function("build_model", |b| {
        b.iter(|| build_crowd_model(black_box(ctx), 0.15, 20).unwrap())
    });
    let model = build_crowd_model(ctx, 0.15, 20).unwrap();
    group.bench_function("snapshot_query", |b| {
        b.iter(|| black_box(&model).snapshot_at_hour(9).unwrap())
    });
    group.bench_function("animation_24_frames", |b| {
        b.iter(|| black_box(&model).animation_frames())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
