//! **Ablation A1** — the paper's modified PrefixSpan (slot-aware,
//! gap-constrained) vs classic PrefixSpan vs the GSP baseline on the
//! same sequence database: pattern counts and runtimes per support.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdweb_analytics::ablation_miners;
use crowdweb_bench::{banner, mid_context};
use crowdweb_seqmine::{Gsp, ModifiedPrefixSpan, PrefixSpan};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = mid_context();
    banner(
        "Ablation: modified PrefixSpan vs classic PrefixSpan vs GSP",
        "identical counts for classic/GSP; gap constraint prunes; pattern-growth beats generate-and-test",
    );
    let rows = ablation_miners(ctx, &[0.25, 0.5, 0.75]).unwrap();
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "support", "modified", "classic", "gsp", "modified_us", "classic_us", "gsp_us"
    );
    for r in &rows {
        println!(
            "{:>8.2} {:>10} {:>10} {:>10} {:>12} {:>12} {:>12}",
            r.min_support,
            r.modified_patterns,
            r.classic_patterns,
            r.gsp_patterns,
            r.modified_us,
            r.classic_us,
            r.gsp_us
        );
    }

    // Mine the columnar store's symbol slices directly — no decode.
    let seqdb = ctx.prepared.seqdb();
    let table = seqdb.symbols();
    let db = seqdb.day_slices();
    let mut group = c.benchmark_group("miners");
    group.sample_size(10);
    for support in [0.25, 0.5] {
        group.bench_with_input(
            BenchmarkId::new("modified_gap2", support),
            &support,
            |b, &s| {
                let miner = ModifiedPrefixSpan::new(s).unwrap().max_gap(Some(2));
                b.iter(|| miner.mine(black_box(&db), |sym| u32::from(table.resolve(*sym).slot.0)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("classic_prefixspan", support),
            &support,
            |b, &s| {
                let miner = PrefixSpan::new(s).unwrap();
                b.iter(|| miner.mine(black_box(&db)))
            },
        );
        group.bench_with_input(BenchmarkId::new("gsp", support), &support, |b, &s| {
            let miner = Gsp::new(s).unwrap();
            b.iter(|| miner.mine(black_box(&db)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
