//! **Ablation A3** — design-choice ablations beyond the miner family:
//!
//! - pattern-set post-filters: full vs closed vs maximal set sizes,
//! - PrefixSpan (pattern growth) vs SPADE (vertical id-lists),
//! - crowd-grid resolution vs model build time and occupied cells.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdweb_analytics::build_crowd_model;
use crowdweb_bench::{banner, mid_context};
use crowdweb_seqmine::{closed_patterns, maximal_patterns, PrefixSpan, Spade};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = mid_context();
    // Mine the columnar store's symbol slices directly — no decode.
    let db = ctx.prepared.seqdb().day_slices();

    banner(
        "Ablation: pattern-set compression (full vs closed vs maximal)",
        "closed <= full, maximal <= closed; identical support information",
    );
    println!(
        "{:>8} {:>8} {:>8} {:>8}",
        "support", "full", "closed", "maximal"
    );
    for s in [0.125, 0.25] {
        let full = PrefixSpan::new(s).unwrap().mine(&db);
        let closed = closed_patterns(&full);
        let maximal = maximal_patterns(&full);
        println!(
            "{s:>8.3} {:>8} {:>8} {:>8}",
            full.len(),
            closed.len(),
            maximal.len()
        );
    }

    banner(
        "Ablation: PrefixSpan vs SPADE (same pattern semantics)",
        "identical outputs; pattern growth vs vertical join runtimes",
    );
    let ps = PrefixSpan::new(0.25).unwrap().mine(&db);
    let sp = Spade::new(0.25).unwrap().mine(&db);
    println!(
        "identical outputs at 0.25: {} ({} patterns)",
        ps.patterns == sp.patterns,
        ps.len()
    );

    banner(
        "Ablation: crowd grid resolution",
        "finer grids spread the crowd across more cells; build time grows slowly",
    );
    println!("{:>6} {:>10} {:>12}", "side", "cells", "occupied@9am");
    for side in [5u32, 10, 20, 40] {
        let model = build_crowd_model(ctx, 0.15, side).unwrap();
        let occupied = model
            .snapshot_at_hour(9)
            .map(|s| s.occupied_cell_count())
            .unwrap_or(0);
        println!("{side:>6} {:>10} {occupied:>12}", side * side);
    }

    let mut group = c.benchmark_group("components");
    group.sample_size(10);
    group.bench_function("prefixspan_0.25", |b| {
        let miner = PrefixSpan::new(0.25).unwrap();
        b.iter(|| miner.mine(black_box(&db)))
    });
    group.bench_function("spade_0.25", |b| {
        let miner = Spade::new(0.25).unwrap();
        b.iter(|| miner.mine(black_box(&db)))
    });
    let full = PrefixSpan::new(0.125).unwrap().mine(&db);
    group.bench_function("closed_filter", |b| {
        b.iter(|| closed_patterns(black_box(&full)))
    });
    group.bench_function("maximal_filter", |b| {
        b.iter(|| maximal_patterns(black_box(&full)))
    });
    for side in [10u32, 40] {
        group.bench_with_input(BenchmarkId::new("crowd_grid", side), &side, |b, &side| {
            b.iter(|| build_crowd_model(black_box(ctx), 0.15, side).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
