//! Temporal heatmaps: the weekday × hour activity rhythm and the
//! crowd-size-per-window timeline.

use crate::color::sequential_color;
use crate::svg::Document;
use crowdweb_crowd::CrowdSnapshot;
use crowdweb_dataset::{ActivityProfile, Weekday};

/// Renders a 7 × 24 activity profile as a heatmap SVG (rows Monday
/// first, columns midnight to 11 pm).
///
/// # Examples
///
/// ```
/// use crowdweb_dataset::ActivityProfile;
/// use crowdweb_viz::timeline::render_activity_heatmap;
///
/// let svg = render_activity_heatmap(&ActivityProfile::new(), "City rhythm");
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("Mon"));
/// ```
pub fn render_activity_heatmap(profile: &ActivityProfile, title: &str) -> String {
    const CELL: f64 = 26.0;
    const LEFT: f64 = 52.0;
    const TOP: f64 = 48.0;
    let width = LEFT + 24.0 * CELL + 16.0;
    let height = TOP + 7.0 * CELL + 28.0;
    let mut doc = Document::new(width, height);
    doc.rect(0.0, 0.0, width, height, "#ffffff", None);
    doc.text_centered(width / 2.0, 24.0, 14.0, "#111111", title);

    let max = Weekday::ALL
        .iter()
        .flat_map(|&d| (0u8..24).map(move |h| profile.count(d, h)))
        .max()
        .unwrap_or(0)
        .max(1);

    for (row, &day) in Weekday::ALL.iter().enumerate() {
        let y = TOP + row as f64 * CELL;
        doc.text(8.0, y + CELL / 2.0 + 4.0, 10.0, "#333333", day.abbrev());
        for hour in 0u8..24 {
            let count = profile.count(day, hour);
            let x = LEFT + f64::from(hour) * CELL;
            let color = if count == 0 {
                "#f0f3f6".to_owned()
            } else {
                sequential_color(count as f64 / max as f64).to_hex()
            };
            doc.rect(x, y, CELL - 1.0, CELL - 1.0, &color, None);
        }
    }
    for hour in (0u8..24).step_by(3) {
        doc.text_centered(
            LEFT + (f64::from(hour) + 0.5) * CELL,
            height - 10.0,
            9.0,
            "#333333",
            &format!("{hour:02}h"),
        );
    }
    doc.finish()
}

/// Renders the crowd-size-per-window timeline as a compact bar strip —
/// the scrubber view above the platform's animation slider.
pub fn render_crowd_timeline(frames: &[CrowdSnapshot]) -> String {
    const BAR: f64 = 22.0;
    const TOP: f64 = 34.0;
    const HEIGHT: f64 = 120.0;
    let width = 20.0 + frames.len() as f64 * BAR + 12.0;
    let mut doc = Document::new(width, HEIGHT);
    doc.rect(0.0, 0.0, width, HEIGHT, "#ffffff", None);
    doc.text(10.0, 20.0, 12.0, "#111111", "Crowd size per window");
    let max = frames
        .iter()
        .map(CrowdSnapshot::total_users)
        .max()
        .unwrap_or(0)
        .max(1);
    let plot_h = HEIGHT - TOP - 22.0;
    for (i, frame) in frames.iter().enumerate() {
        let users = frame.total_users();
        let h = users as f64 / max as f64 * plot_h;
        let x = 20.0 + i as f64 * BAR;
        doc.rect(
            x,
            TOP + plot_h - h,
            BAR - 2.0,
            h.max(0.5),
            &sequential_color(users as f64 / max as f64).to_hex(),
            None,
        );
        if i % 3 == 0 {
            doc.text_centered(
                x + BAR / 2.0,
                HEIGHT - 8.0,
                8.0,
                "#444444",
                &frame.window.start().to_string(),
            );
        }
    }
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_crowd::TimeWindow;
    use crowdweb_geo::CellId;
    use std::collections::BTreeMap;

    #[test]
    fn heatmap_has_168_cells() {
        let mut profile = ActivityProfile::new();
        profile.record(Weekday::Tue, 9);
        let svg = render_activity_heatmap(&profile, "T");
        // 168 heat cells + background.
        assert_eq!(svg.matches("<rect").count(), 169);
        // The hot cell gets the top color.
        assert!(svg.contains(&sequential_color(1.0).to_hex()));
    }

    #[test]
    fn heatmap_empty_profile_renders() {
        let svg = render_activity_heatmap(&ActivityProfile::new(), "Empty");
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("Sun"));
    }

    fn frame(hour: u8, users: usize) -> CrowdSnapshot {
        let mut cells = BTreeMap::new();
        if users > 0 {
            cells.insert(CellId(0), users);
        }
        CrowdSnapshot {
            window: TimeWindow::new(hour, hour + 1).unwrap(),
            cells,
            labels: BTreeMap::new(),
        }
    }

    #[test]
    fn timeline_renders_bars() {
        let frames: Vec<CrowdSnapshot> = (0..23).map(|h| frame(h, usize::from(h) * 2)).collect();
        let svg = render_crowd_timeline(&frames);
        assert!(svg.starts_with("<svg"));
        // One bar per frame plus background.
        assert_eq!(svg.matches("<rect").count(), frames.len() + 1);
    }

    #[test]
    fn timeline_handles_empty() {
        let svg = render_crowd_timeline(&[]);
        assert!(svg.starts_with("<svg"));
    }
}
