//! GeoJSON export for web clients.

use crowdweb_crowd::CrowdSnapshot;
use crowdweb_dataset::Dataset;
use crowdweb_geo::geojson::{Feature, FeatureCollection, Geometry};
use crowdweb_geo::MicrocellGrid;

/// Exports a crowd snapshot as a GeoJSON `FeatureCollection`: one
/// polygon feature per occupied microcell with `count` and `window`
/// properties.
///
/// # Examples
///
/// ```
/// use crowdweb_crowd::{CrowdSnapshot, TimeWindow};
/// use crowdweb_geo::{BoundingBox, CellId, MicrocellGrid};
/// use crowdweb_viz::snapshot_to_geojson;
/// use std::collections::BTreeMap;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let grid = MicrocellGrid::new(BoundingBox::NYC, 10, 10)?;
/// let mut cells = BTreeMap::new();
/// cells.insert(CellId(5), 3usize);
/// let snap = CrowdSnapshot { window: TimeWindow::new(9, 10)?, cells, labels: BTreeMap::new() };
/// let fc = snapshot_to_geojson(&snap, &grid);
/// assert_eq!(fc.features.len(), 1);
/// let json = serde_json::to_string(&fc)?;
/// assert!(json.contains("\"FeatureCollection\""));
/// # Ok(())
/// # }
/// ```
pub fn snapshot_to_geojson(snapshot: &CrowdSnapshot, grid: &MicrocellGrid) -> FeatureCollection {
    snapshot
        .cells
        .iter()
        .filter_map(|(&cell, &count)| {
            let bounds = grid.cell_bounds(cell)?;
            Some(
                Feature::new(Geometry::rect(bounds))
                    // Cell ids can exceed i64 on u32::MAX-per-side
                    // grids; saturate rather than wrap for GeoJSON.
                    .with_property("cell", i64::try_from(cell.0).unwrap_or(i64::MAX))
                    .with_property("count", count as i64)
                    .with_property("window", snapshot.window.label()),
            )
        })
        .collect()
}

/// Exports a dataset's venues as GeoJSON points with name and category
/// properties. `limit` caps the output size (venue order).
pub fn venues_to_geojson(dataset: &Dataset, limit: usize) -> FeatureCollection {
    dataset
        .venues()
        .iter()
        .take(limit)
        .map(|v| {
            let category = dataset
                .taxonomy()
                .name_of(v.category())
                .unwrap_or("Unknown")
                .to_owned();
            Feature::new(Geometry::point(v.location()))
                .with_property("venue", i64::from(v.id().raw()))
                .with_property("name", v.name())
                .with_property("category", category)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_crowd::TimeWindow;
    use crowdweb_geo::{BoundingBox, CellId};
    use crowdweb_synth::SynthConfig;
    use std::collections::BTreeMap;

    #[test]
    fn snapshot_export_produces_valid_geojson() {
        let grid = MicrocellGrid::new(BoundingBox::NYC, 5, 5).unwrap();
        let mut cells = BTreeMap::new();
        cells.insert(CellId(0), 2usize);
        cells.insert(CellId(24), 7usize);
        let snap = CrowdSnapshot {
            window: TimeWindow::new(9, 10).unwrap(),
            cells,
            labels: BTreeMap::new(),
        };
        let fc = snapshot_to_geojson(&snap, &grid);
        assert_eq!(fc.features.len(), 2);
        let json = serde_json::to_string(&fc).unwrap();
        assert!(json.contains("\"Polygon\""));
        assert!(json.contains("\"count\":7"));
        assert!(json.contains("9-10 am"));
    }

    #[test]
    fn out_of_range_cells_are_dropped() {
        let grid = MicrocellGrid::new(BoundingBox::NYC, 2, 2).unwrap();
        let mut cells = BTreeMap::new();
        cells.insert(CellId(99), 1usize);
        let snap = CrowdSnapshot {
            window: TimeWindow::new(9, 10).unwrap(),
            cells,
            labels: BTreeMap::new(),
        };
        assert!(snapshot_to_geojson(&snap, &grid).features.is_empty());
    }

    #[test]
    fn venue_export_respects_limit() {
        let d = SynthConfig::small(17).generate().unwrap();
        let fc = venues_to_geojson(&d, 10);
        assert_eq!(fc.features.len(), 10);
        let json = serde_json::to_string(&fc).unwrap();
        assert!(json.contains("\"Point\""));
        assert!(json.contains("\"category\""));
    }
}
