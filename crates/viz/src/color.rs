//! Color scales for heat maps and charts.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An sRGB color.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Rgb {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Rgb {
    /// Creates a color from channels.
    pub fn new(r: u8, g: u8, b: u8) -> Rgb {
        Rgb { r, g, b }
    }

    /// CSS hex string, e.g. `"#ff8800"`.
    pub fn to_hex(self) -> String {
        format!("#{:02x}{:02x}{:02x}", self.r, self.g, self.b)
    }
}

impl fmt::Display for Rgb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Linear interpolation between two colors; `t` is clamped to `[0, 1]`.
pub fn lerp_color(a: Rgb, b: Rgb, t: f64) -> Rgb {
    let t = t.clamp(0.0, 1.0);
    let mix = |x: u8, y: u8| (f64::from(x) + (f64::from(y) - f64::from(x)) * t).round() as u8;
    Rgb::new(mix(a.r, b.r), mix(a.g, b.g), mix(a.b, b.b))
}

/// A light-yellow → orange → deep-red sequential scale (heat-map style);
/// `t` is clamped to `[0, 1]`.
pub fn sequential_color(t: f64) -> Rgb {
    const STOPS: [Rgb; 3] = [
        Rgb {
            r: 0xff,
            g: 0xf3,
            b: 0xc0,
        },
        Rgb {
            r: 0xfd,
            g: 0x8d,
            b: 0x3c,
        },
        Rgb {
            r: 0xb1,
            g: 0x00,
            b: 0x26,
        },
    ];
    let t = t.clamp(0.0, 1.0);
    if t <= 0.5 {
        lerp_color(STOPS[0], STOPS[1], t * 2.0)
    } else {
        lerp_color(STOPS[1], STOPS[2], (t - 0.5) * 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_formatting() {
        assert_eq!(Rgb::new(255, 136, 0).to_hex(), "#ff8800");
        assert_eq!(Rgb::new(0, 0, 0).to_string(), "#000000");
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Rgb::new(0, 0, 0);
        let b = Rgb::new(200, 100, 50);
        assert_eq!(lerp_color(a, b, 0.0), a);
        assert_eq!(lerp_color(a, b, 1.0), b);
        assert_eq!(lerp_color(a, b, 0.5), Rgb::new(100, 50, 25));
        // Clamping.
        assert_eq!(lerp_color(a, b, -1.0), a);
        assert_eq!(lerp_color(a, b, 2.0), b);
    }

    #[test]
    fn sequential_scale_is_monotone_in_red_heat() {
        // The scale should get "hotter" (darker red, less green) as t
        // grows.
        let low = sequential_color(0.0);
        let mid = sequential_color(0.5);
        let high = sequential_color(1.0);
        assert!(low.g > mid.g && mid.g > high.g);
        assert_eq!(high, Rgb::new(0xb1, 0x00, 0x26));
    }

    #[test]
    fn sequential_clamps() {
        assert_eq!(sequential_color(-5.0), sequential_color(0.0));
        assert_eq!(sequential_color(7.0), sequential_color(1.0));
    }
}
