//! Line charts and histograms — the renderers behind the paper's
//! Figures 5–8.

use crate::svg::Document;
use crate::Rgb;

const MARGIN_LEFT: f64 = 64.0;
const MARGIN_RIGHT: f64 = 24.0;
const MARGIN_TOP: f64 = 40.0;
const MARGIN_BOTTOM: f64 = 56.0;

/// Default series palette (colorblind-safe-ish).
const PALETTE: [Rgb; 4] = [
    Rgb {
        r: 0x1f,
        g: 0x77,
        b: 0xb4,
    },
    Rgb {
        r: 0xd6,
        g: 0x27,
        b: 0x28,
    },
    Rgb {
        r: 0x2c,
        g: 0xa0,
        b: 0x2c,
    },
    Rgb {
        r: 0x94,
        g: 0x67,
        b: 0xbd,
    },
];

/// Computes "nice" axis ticks covering `[lo, hi]` (roughly `n` of them).
fn nice_ticks(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    if !(lo.is_finite() && hi.is_finite()) || hi <= lo || n == 0 {
        return vec![lo, hi];
    }
    let raw_step = (hi - lo) / n as f64;
    let mag = 10f64.powf(raw_step.log10().floor());
    let norm = raw_step / mag;
    let step = if norm < 1.5 {
        1.0
    } else if norm < 3.5 {
        2.0
    } else if norm < 7.5 {
        5.0
    } else {
        10.0
    } * mag;
    let start = (lo / step).floor() * step;
    let mut ticks = Vec::new();
    let mut t = start;
    while t <= hi + step * 0.501 {
        if t >= lo - step * 0.501 {
            ticks.push((t / step).round() * step);
        }
        t += step;
    }
    ticks
}

fn format_tick(v: f64) -> String {
    if v.abs() >= 1000.0 || v == 0.0 || v.fract() == 0.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// A multi-series XY line chart with markers (C-BUILDER;
/// [`LineChart::render`] is the terminal method).
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct LineChart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<(String, Vec<(f64, f64)>)>,
    width: f64,
    height: f64,
}

impl LineChart {
    /// Creates an empty chart with a title.
    pub fn new(title: &str) -> LineChart {
        LineChart {
            title: title.to_owned(),
            x_label: String::new(),
            y_label: String::new(),
            series: Vec::new(),
            width: 640.0,
            height: 420.0,
        }
    }

    /// Sets the x-axis label.
    pub fn x_label(mut self, label: &str) -> LineChart {
        self.x_label = label.to_owned();
        self
    }

    /// Sets the y-axis label.
    pub fn y_label(mut self, label: &str) -> LineChart {
        self.y_label = label.to_owned();
        self
    }

    /// Sets the pixel size (default 640 × 420).
    pub fn size(mut self, width: f64, height: f64) -> LineChart {
        self.width = width.max(160.0);
        self.height = height.max(120.0);
        self
    }

    /// Adds a named series of `(x, y)` points (sorted by x internally).
    pub fn series(mut self, name: &str, points: &[(f64, f64)]) -> LineChart {
        let mut pts = points.to_vec();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        self.series.push((name.to_owned(), pts));
        self
    }

    /// Renders the chart to an SVG string (terminal method).
    pub fn render(&self) -> String {
        let mut doc = Document::new(self.width, self.height);
        doc.rect(0.0, 0.0, self.width, self.height, "#ffffff", None);
        doc.text_centered(self.width / 2.0, 22.0, 15.0, "#111111", &self.title);

        let all: Vec<(f64, f64)> = self.series.iter().flat_map(|(_, p)| p.clone()).collect();
        if all.is_empty() {
            doc.text_centered(
                self.width / 2.0,
                self.height / 2.0,
                12.0,
                "#666666",
                "(no data)",
            );
            return doc.finish();
        }
        let (x_lo, x_hi) = span(all.iter().map(|p| p.0));
        let (y_lo_raw, y_hi) = span(all.iter().map(|p| p.1));
        let y_lo = y_lo_raw.min(0.0);

        let plot_w = self.width - MARGIN_LEFT - MARGIN_RIGHT;
        let plot_h = self.height - MARGIN_TOP - MARGIN_BOTTOM;
        let sx = |x: f64| MARGIN_LEFT + (x - x_lo) / (x_hi - x_lo).max(1e-12) * plot_w;
        let sy = |y: f64| MARGIN_TOP + plot_h - (y - y_lo) / (y_hi - y_lo).max(1e-12) * plot_h;

        // Gridlines + ticks.
        for t in nice_ticks(y_lo, y_hi, 5) {
            let y = sy(t);
            doc.line(MARGIN_LEFT, y, self.width - MARGIN_RIGHT, y, "#e0e0e0", 1.0);
            doc.text(8.0, y + 4.0, 10.0, "#444444", &format_tick(t));
        }
        for t in nice_ticks(x_lo, x_hi, 6) {
            let x = sx(t);
            doc.line(
                x,
                MARGIN_TOP,
                x,
                self.height - MARGIN_BOTTOM,
                "#eeeeee",
                1.0,
            );
            doc.text_centered(
                x,
                self.height - MARGIN_BOTTOM + 16.0,
                10.0,
                "#444444",
                &format_tick(t),
            );
        }
        // Axes.
        doc.line(
            MARGIN_LEFT,
            MARGIN_TOP,
            MARGIN_LEFT,
            self.height - MARGIN_BOTTOM,
            "#333333",
            1.5,
        );
        doc.line(
            MARGIN_LEFT,
            self.height - MARGIN_BOTTOM,
            self.width - MARGIN_RIGHT,
            self.height - MARGIN_BOTTOM,
            "#333333",
            1.5,
        );
        doc.text_centered(
            MARGIN_LEFT + plot_w / 2.0,
            self.height - 12.0,
            12.0,
            "#111111",
            &self.x_label,
        );
        doc.raw(&format!(
            r##"<text x="16" y="{:.2}" font-size="12.0" font-family="sans-serif" fill="#111111" text-anchor="middle" transform="rotate(-90 16 {:.2})">{}</text>"##,
            MARGIN_TOP + plot_h / 2.0,
            MARGIN_TOP + plot_h / 2.0,
            crate::svg::escape(&self.y_label),
        ));

        // Series.
        for (i, (name, pts)) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()].to_hex();
            let screen: Vec<(f64, f64)> = pts.iter().map(|&(x, y)| (sx(x), sy(y))).collect();
            doc.polyline(&screen, &color, 2.0);
            for &(x, y) in &screen {
                doc.circle(x, y, 3.0, &color);
            }
            // Legend.
            let ly = MARGIN_TOP + 14.0 * i as f64;
            doc.line(
                self.width - MARGIN_RIGHT - 110.0,
                ly,
                self.width - MARGIN_RIGHT - 90.0,
                ly,
                &color,
                2.0,
            );
            doc.text(
                self.width - MARGIN_RIGHT - 84.0,
                ly + 4.0,
                10.0,
                "#333333",
                name,
            );
        }
        doc.finish()
    }
}

/// A histogram over pre-binned or raw values — the renderer for the
/// paper's distribution plots (Figures 6 and 8).
///
/// # Examples
///
/// ```
/// use crowdweb_viz::Histogram;
///
/// let svg = Histogram::from_values("Sequence counts", &[1.0, 2.0, 2.0, 3.0], 3)
///     .x_label("sequences")
///     .render();
/// assert!(svg.contains("Sequence counts"));
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    title: String,
    x_label: String,
    bins: Vec<(f64, f64, usize)>,
    width: f64,
    height: f64,
}

impl Histogram {
    /// Bins `values` into `bin_count` equal-width bins over their range.
    pub fn from_values(title: &str, values: &[f64], bin_count: usize) -> Histogram {
        let bins = bin_values(values, bin_count);
        Histogram {
            title: title.to_owned(),
            x_label: String::new(),
            bins,
            width: 640.0,
            height: 420.0,
        }
    }

    /// Sets the x-axis label.
    pub fn x_label(mut self, label: &str) -> Histogram {
        self.x_label = label.to_owned();
        self
    }

    /// Sets the pixel size (default 640 × 420).
    pub fn size(mut self, width: f64, height: f64) -> Histogram {
        self.width = width.max(160.0);
        self.height = height.max(120.0);
        self
    }

    /// The computed bins as `(lo, hi, count)`.
    pub fn bins(&self) -> &[(f64, f64, usize)] {
        &self.bins
    }

    /// Renders the histogram to an SVG string (terminal method).
    pub fn render(&self) -> String {
        let mut doc = Document::new(self.width, self.height);
        doc.rect(0.0, 0.0, self.width, self.height, "#ffffff", None);
        doc.text_centered(self.width / 2.0, 22.0, 15.0, "#111111", &self.title);
        if self.bins.is_empty() {
            doc.text_centered(
                self.width / 2.0,
                self.height / 2.0,
                12.0,
                "#666666",
                "(no data)",
            );
            return doc.finish();
        }
        let plot_w = self.width - MARGIN_LEFT - MARGIN_RIGHT;
        let plot_h = self.height - MARGIN_TOP - MARGIN_BOTTOM;
        let max_count = self.bins.iter().map(|b| b.2).max().unwrap_or(1).max(1);
        let bar_w = plot_w / self.bins.len() as f64;

        for t in nice_ticks(0.0, max_count as f64, 5) {
            let y = MARGIN_TOP + plot_h - t / max_count as f64 * plot_h;
            doc.line(MARGIN_LEFT, y, self.width - MARGIN_RIGHT, y, "#e0e0e0", 1.0);
            doc.text(8.0, y + 4.0, 10.0, "#444444", &format_tick(t));
        }
        for (i, &(lo, hi, count)) in self.bins.iter().enumerate() {
            let h = count as f64 / max_count as f64 * plot_h;
            let x = MARGIN_LEFT + i as f64 * bar_w;
            doc.rect(
                x + 1.0,
                MARGIN_TOP + plot_h - h,
                bar_w - 2.0,
                h,
                "#1f77b4",
                Some(("#13486c", 1.0)),
            );
            doc.text_centered(
                x + bar_w / 2.0,
                self.height - MARGIN_BOTTOM + 16.0,
                9.0,
                "#444444",
                &format!("{}", (lo + hi) / 2.0 * 100.0 / 100.0),
            );
        }
        doc.line(
            MARGIN_LEFT,
            self.height - MARGIN_BOTTOM,
            self.width - MARGIN_RIGHT,
            self.height - MARGIN_BOTTOM,
            "#333333",
            1.5,
        );
        doc.text_centered(
            MARGIN_LEFT + plot_w / 2.0,
            self.height - 12.0,
            12.0,
            "#111111",
            &self.x_label,
        );
        doc.finish()
    }
}

/// Bins values into `bin_count` equal-width bins; returns
/// `(lo, hi, count)` per bin. Degenerate inputs give a single bin.
pub fn bin_values(values: &[f64], bin_count: usize) -> Vec<(f64, f64, usize)> {
    if values.is_empty() || bin_count == 0 {
        return Vec::new();
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !(lo.is_finite() && hi.is_finite()) {
        return Vec::new();
    }
    if hi <= lo {
        return vec![(lo, hi, values.len())];
    }
    let width = (hi - lo) / bin_count as f64;
    let mut bins: Vec<(f64, f64, usize)> = (0..bin_count)
        .map(|i| (lo + i as f64 * width, lo + (i + 1) as f64 * width, 0))
        .collect();
    for &v in values {
        let idx = (((v - lo) / width) as usize).min(bin_count - 1);
        bins[idx].2 += 1;
    }
    bins
}

fn span<I: Iterator<Item = f64>>(values: I) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo == hi {
        (lo - 0.5, hi + 0.5)
    } else {
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nice_ticks_are_round_and_cover() {
        let ticks = nice_ticks(0.0, 100.0, 5);
        assert!(ticks.contains(&0.0));
        assert!(ticks.contains(&100.0));
        for w in ticks.windows(2) {
            assert!(w[1] > w[0]);
        }
        // Degenerate.
        assert_eq!(nice_ticks(5.0, 5.0, 4), vec![5.0, 5.0]);
    }

    #[test]
    fn line_chart_renders_all_parts() {
        let svg = LineChart::new("T")
            .x_label("xs")
            .y_label("ys")
            .series("s1", &[(0.0, 1.0), (1.0, 2.0)])
            .series("s2", &[(0.0, 2.0), (1.0, 1.0)])
            .render();
        assert!(svg.contains("<polyline"));
        assert!(svg.contains("s1") && svg.contains("s2"));
        assert!(svg.contains("xs") && svg.contains("ys"));
        assert!(svg.contains("rotate(-90"));
    }

    #[test]
    fn empty_chart_says_no_data() {
        let svg = LineChart::new("T").render();
        assert!(svg.contains("(no data)"));
    }

    #[test]
    fn series_points_get_sorted() {
        let chart = LineChart::new("T").series("s", &[(2.0, 1.0), (0.0, 3.0)]);
        assert_eq!(chart.series[0].1[0].0, 0.0);
    }

    #[test]
    fn bin_values_counts_correctly() {
        let bins = bin_values(&[0.0, 0.1, 0.9, 1.0], 2);
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0].2, 2);
        assert_eq!(bins[1].2, 2);
        // Max value lands in the last bin.
        let total: usize = bins.iter().map(|b| b.2).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn bin_values_degenerate_cases() {
        assert!(bin_values(&[], 3).is_empty());
        assert!(bin_values(&[1.0], 0).is_empty());
        let one = bin_values(&[2.0, 2.0], 3);
        assert_eq!(one, vec![(2.0, 2.0, 2)]);
    }

    #[test]
    fn histogram_renders_bars() {
        let h = Histogram::from_values("H", &[1.0, 2.0, 2.0, 5.0], 4);
        assert_eq!(h.bins().len(), 4);
        let svg = h.render();
        // Background + 4 bars = at least 5 rects.
        assert!(svg.matches("<rect").count() >= 5);
    }

    #[test]
    fn histogram_empty() {
        let svg = Histogram::from_values("H", &[], 4).render();
        assert!(svg.contains("(no data)"));
    }
}
