//! The city view: crowd heat grid over the microcell map (Figures 3–4).

use crate::color::sequential_color;
use crate::svg::Document;
use crowdweb_crowd::CrowdSnapshot;
use crowdweb_geo::{LatLon, MicrocellGrid};

/// Renders crowd snapshots over a city grid (C-BUILDER;
/// [`CityMap::render`] is the terminal method).
///
/// # Examples
///
/// ```
/// use crowdweb_viz::CityMap;
/// use crowdweb_geo::{BoundingBox, MicrocellGrid};
///
/// # fn main() -> Result<(), crowdweb_geo::GeoError> {
/// let grid = MicrocellGrid::new(BoundingBox::NYC, 10, 10)?;
/// let svg = CityMap::new(&grid).render_empty();
/// assert!(svg.starts_with("<svg"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CityMap<'a> {
    grid: &'a MicrocellGrid,
    width: f64,
    show_grid_lines: bool,
    show_legend: bool,
    markers: Vec<(LatLon, String)>,
}

impl<'a> CityMap<'a> {
    /// Creates a map over a microcell grid.
    pub fn new(grid: &'a MicrocellGrid) -> CityMap<'a> {
        CityMap {
            grid,
            width: 720.0,
            show_grid_lines: true,
            show_legend: true,
            markers: Vec::new(),
        }
    }

    /// Sets the pixel width (height follows the grid's aspect ratio).
    pub fn width(mut self, width: f64) -> CityMap<'a> {
        self.width = width.max(100.0);
        self
    }

    /// Toggles cell border lines.
    pub fn grid_lines(mut self, show: bool) -> CityMap<'a> {
        self.show_grid_lines = show;
        self
    }

    /// Toggles the color legend (drawn on crowd renders).
    pub fn legend(mut self, show: bool) -> CityMap<'a> {
        self.show_legend = show;
        self
    }

    /// Adds a labelled point marker (e.g. a landmark venue).
    pub fn marker(mut self, location: LatLon, label: &str) -> CityMap<'a> {
        self.markers.push((location, label.to_owned()));
        self
    }

    fn pixel_height(&self) -> f64 {
        let b = self.grid.bounds();
        // Approximate aspect from metric extents.
        self.width * b.height_m() / b.width_m().max(1.0)
    }

    fn project(&self, p: LatLon) -> (f64, f64) {
        let b = self.grid.bounds();
        let x = (p.lon() - b.west()) / b.lon_span() * self.width;
        let y = (1.0 - (p.lat() - b.south()) / b.lat_span()) * self.pixel_height();
        (x, y)
    }

    /// Renders the base map with no crowd (terminal method).
    pub fn render_empty(&self) -> String {
        self.render_cells(&[])
    }

    /// Renders a crowd snapshot as a heat grid: each occupied cell is
    /// shaded by its user count relative to the busiest cell (terminal
    /// method).
    pub fn render(&self, snapshot: &CrowdSnapshot) -> String {
        let cells: Vec<(crowdweb_geo::CellId, usize)> =
            snapshot.cells.iter().map(|(&c, &n)| (c, n)).collect();
        let max = cells.iter().map(|(_, n)| *n).max().unwrap_or(0);
        let mut svg = self.render_cells(&cells);
        if self.show_legend && max > 0 {
            let legend = self.render_legend(max);
            let insert = svg.rfind("</svg>").expect("document always closes");
            svg.insert_str(insert, &legend);
        }
        // Title annotation with the window label.
        let title = format!(
            r##"<text x="10" y="20" font-size="14.0" font-family="sans-serif" fill="#111111">Crowd {} ({} users)</text>"##,
            crate::svg::escape(&snapshot.window.label()),
            snapshot.total_users()
        );
        // Inject before the closing tag.
        let insert = svg.rfind("</svg>").expect("document always closes");
        svg.insert_str(insert, &title);
        svg
    }

    /// A horizontal color ramp with min/max labels, bottom-left.
    fn render_legend(&self, max: usize) -> String {
        const STEPS: usize = 24;
        const W: f64 = 120.0;
        const H: f64 = 10.0;
        let y = self.pixel_height() - 26.0;
        let mut out = String::new();
        for i in 0..STEPS {
            let t = i as f64 / (STEPS - 1) as f64;
            let x = 10.0 + t * (W - W / STEPS as f64);
            out.push_str(&format!(
                r##"<rect x="{x:.1}" y="{y:.1}" width="{:.1}" height="{H}" fill="{}"/>"##,
                W / STEPS as f64 + 0.5,
                sequential_color(t).to_hex()
            ));
        }
        out.push_str(&format!(
            r##"<text x="10" y="{:.1}" font-size="9.0" font-family="sans-serif" fill="#333333">1</text>"##,
            y + H + 11.0
        ));
        out.push_str(&format!(
            r##"<text x="{:.1}" y="{:.1}" font-size="9.0" font-family="sans-serif" fill="#333333" text-anchor="end">peak {max}</text>"##,
            10.0 + W,
            y + H + 11.0
        ));
        out
    }

    fn render_cells(&self, cells: &[(crowdweb_geo::CellId, usize)]) -> String {
        let height = self.pixel_height();
        let mut doc = Document::new(self.width, height);
        doc.rect(0.0, 0.0, self.width, height, "#f4f6f8", None);

        let max = cells.iter().map(|(_, n)| *n).max().unwrap_or(0).max(1);
        let cell_w = self.width / f64::from(self.grid.cols());
        let cell_h = height / f64::from(self.grid.rows());

        if self.show_grid_lines {
            for r in 0..=self.grid.rows() {
                let y = f64::from(r) * cell_h;
                doc.line(0.0, y, self.width, y, "#dde3e8", 0.5);
            }
            for c in 0..=self.grid.cols() {
                let x = f64::from(c) * cell_w;
                doc.line(x, 0.0, x, height, "#dde3e8", 0.5);
            }
        }

        for &(cell, count) in cells {
            let Some((row, col)) = self.grid.position(cell) else {
                continue;
            };
            let x = f64::from(col) * cell_w;
            // Row 0 is the southern row; SVG y grows downward.
            let y = height - f64::from(row + 1) * cell_h;
            let t = count as f64 / max as f64;
            doc.rect(
                x,
                y,
                cell_w,
                cell_h,
                &sequential_color(t).to_hex(),
                Some(("#8899aa", 0.4)),
            );
            if cell_w >= 24.0 {
                doc.text_centered(
                    x + cell_w / 2.0,
                    y + cell_h / 2.0 + 3.0,
                    9.0,
                    "#222222",
                    &count.to_string(),
                );
            }
        }

        for (loc, label) in &self.markers {
            let (x, y) = self.project(*loc);
            doc.circle(x, y, 4.0, "#0a4b78");
            doc.text(x + 6.0, y + 3.0, 9.0, "#0a4b78", label);
        }
        doc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_crowd::TimeWindow;
    use crowdweb_geo::{BoundingBox, CellId};
    use std::collections::BTreeMap;

    fn grid() -> MicrocellGrid {
        MicrocellGrid::new(BoundingBox::NYC, 8, 8).unwrap()
    }

    fn snapshot(counts: &[(u64, usize)]) -> CrowdSnapshot {
        CrowdSnapshot {
            window: TimeWindow::new(9, 10).unwrap(),
            cells: counts.iter().map(|&(c, n)| (CellId(c), n)).collect(),
            labels: BTreeMap::new(),
        }
    }

    #[test]
    fn empty_map_renders() {
        let g = grid();
        let svg = CityMap::new(&g).render_empty();
        assert!(svg.starts_with("<svg"));
        // Grid lines present.
        assert!(svg.matches("<line").count() >= 16);
    }

    #[test]
    fn snapshot_shades_occupied_cells() {
        let g = grid();
        let svg = CityMap::new(&g).render(&snapshot(&[(0, 3), (9, 1)]));
        assert!(svg.contains("Crowd 9-10 am (4 users)"));
        // Two heat cells + background = >= 3 rects.
        assert!(svg.matches("<rect").count() >= 3);
        // The busiest cell gets the hottest color.
        assert!(svg.contains(&sequential_color(1.0).to_hex()));
    }

    #[test]
    fn legend_shows_scale_on_crowd_renders() {
        let g = grid();
        let svg = CityMap::new(&g).render(&snapshot(&[(0, 7)]));
        assert!(svg.contains("peak 7"));
        let no_legend = CityMap::new(&g).legend(false).render(&snapshot(&[(0, 7)]));
        assert!(!no_legend.contains("peak 7"));
        // Empty crowd: no legend either.
        let empty = CityMap::new(&g).render(&snapshot(&[]));
        assert!(!empty.contains("peak"));
    }

    #[test]
    fn out_of_range_cells_are_skipped() {
        let g = grid();
        let svg = CityMap::new(&g).render(&snapshot(&[(9999, 5)]));
        // Renders without panicking, only background rect + title.
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    fn markers_are_drawn() {
        let g = grid();
        let svg = CityMap::new(&g)
            .marker(BoundingBox::NYC.center(), "center")
            .render_empty();
        assert!(svg.contains("<circle"));
        assert!(svg.contains("center"));
    }

    #[test]
    fn grid_lines_can_be_disabled() {
        let g = grid();
        let svg = CityMap::new(&g).grid_lines(false).render_empty();
        assert_eq!(svg.matches("<line").count(), 0);
    }

    #[test]
    fn aspect_follows_bounds() {
        let g = grid();
        let map = CityMap::new(&g).width(500.0);
        let h = map.pixel_height();
        // NYC is roughly as tall as wide; allow broad bounds.
        assert!(h > 200.0 && h < 1000.0, "height {h}");
    }
}
